"""repro -- a reproduction of "On Optimal Neighbor Discovery"
(Kindt & Chakraborty, SIGCOMM 2019, arXiv:1905.05220).

The package has four layers:

* :mod:`repro.core` -- the paper's theory: sequence model, coverage maps,
  every fundamental bound (Theorems 5.1-5.7, C.1, the Appendix-A
  relaxations and the Appendix-B collision trade-off), and synthesis of
  schedules that *attain* the bounds.
* :mod:`repro.protocols` -- reference implementations of the protocols the
  paper compares against (Disco, U-Connect, Searchlight, difference-set /
  Diffcode schedules, Birthday, BLE-like periodic-interval protocols) plus
  the paper-optimal slotless protocol.
* :mod:`repro.simulation` -- a deterministic discrete-event simulator
  (integer-microsecond time base) with half-duplex radios, turnaround
  times, a collision-aware broadcast channel and clock drift, used to
  validate every bound empirically.
* :mod:`repro.analysis` / :mod:`repro.workloads` -- exact worst-case
  latency extraction, Pareto fronts, optimality-gap tables and scenario
  generators backing the benchmark harness.
* :mod:`repro.api` -- the unified experiment surface: declarative
  :class:`~repro.api.RunSpec` / :class:`~repro.api.RuntimeProfile`
  configs and the lifecycle-managed :class:`~repro.api.Session` facade
  every experiment (and the CLI) runs through.

Quickstart::

    from repro import core

    # What is the best possible worst-case latency at a 1% duty-cycle?
    bound_us = core.symmetric_bound(omega=32, eta=0.01)   # Theorem 5.5

    # Build a schedule that attains it and verify by coverage map:
    protocol, design = core.synthesize_symmetric(omega=32, eta=0.01)
    assert design.deterministic and design.disjoint

    # Validate it end-to-end through the experiment facade:
    from repro.api import RunSpec, Session
    with Session() as session:
        report = session.sweep(
            RunSpec(pair={"kind": "symmetric", "eta": 0.01})
        ).raw
"""

from . import analysis, api, core, protocols, simulation, workloads

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "api",
    "core",
    "protocols",
    "simulation",
    "workloads",
    "__version__",
]
