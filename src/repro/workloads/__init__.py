"""Workload / scenario generators for examples and benchmarks."""

from .scenarios import (
    gradual_join,
    dense_network,
    drifting_pair,
    gateway_and_peripherals,
    Scenario,
    scenario_grid,
    symmetric_pair,
)

__all__ = [
    "Scenario",
    "dense_network",
    "drifting_pair",
    "gateway_and_peripherals",
    "gradual_join",
    "scenario_grid",
    "symmetric_pair",
]
