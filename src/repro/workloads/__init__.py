"""Workload / scenario generators for examples and benchmarks."""

from .scenarios import (
    gradual_join,
    dense_network,
    drifting_pair,
    gateway_and_peripherals,
    register_scenario_factory,
    Scenario,
    SCENARIO_FACTORIES,
    scenario_grid,
    symmetric_pair,
)

__all__ = [
    "Scenario",
    "SCENARIO_FACTORIES",
    "dense_network",
    "drifting_pair",
    "gateway_and_peripherals",
    "gradual_join",
    "register_scenario_factory",
    "scenario_grid",
    "symmetric_pair",
]
