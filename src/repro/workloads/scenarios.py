"""Scenario generators: the deployment patterns the paper motivates.

Each scenario bundles protocols, phases and simulation knobs into a
ready-to-run description consumed by the examples and benchmarks:

* :func:`symmetric_pair` -- two peers with equal budgets (Section 5.2).
* :func:`gateway_and_peripherals` -- one mains-powered master with a
  generous duty-cycle, several battery peripherals (Section 5.3's
  asymmetric case; the "devices join gradually" network of Section 6).
* :func:`dense_network` -- ``S`` devices discovering simultaneously, the
  collision-bound regime of Section 5.2.2 / Appendix B.
* :func:`drifting_pair` -- a pair with ppm clock errors for robustness
  studies (the decorrelation discussion of Section 8).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.optimal import synthesize_asymmetric, synthesize_symmetric
from ..core.sequences import NDProtocol

__all__ = [
    "Scenario",
    "SCENARIO_FACTORIES",
    "register_scenario_factory",
    "scenario_grid",
    "symmetric_pair",
    "gateway_and_peripherals",
    "dense_network",
    "drifting_pair",
]


@dataclass
class Scenario:
    """A ready-to-simulate deployment."""

    name: str
    protocols: list[NDProtocol]
    phases: list[int]
    horizon: int
    drift_ppm: list[int] = field(default_factory=list)
    start_times: list[int] = field(default_factory=list)
    """Per-device boot times for gradual-join scenarios (empty: all at 0)."""
    description: str = ""
    backend: str | None = None
    """Preferred sweep-kernel backend (:mod:`repro.backends` name) for
    drivers evaluating this scenario -- e.g. ``"pooled"`` marks members
    of many-small-sweep batches that should amortize one persistent
    worker pool.  ``None`` defers to the driver (auto-detection);
    :func:`repro.simulation.runner.sweep_network_grid` honours a
    unanimous preference across a grid."""

    def __post_init__(self) -> None:
        if len(self.protocols) != len(self.phases):
            raise ValueError("protocols and phases must align")
        if self.drift_ppm and len(self.drift_ppm) != len(self.protocols):
            raise ValueError("drift_ppm must align with protocols")
        if self.start_times and len(self.start_times) != len(self.protocols):
            raise ValueError("start_times must align with protocols")
        if self.backend is not None and not isinstance(self.backend, str):
            raise ValueError(
                f"backend must be a backend name or None, got {self.backend!r}"
            )

    def cost_hint(self) -> float:
        """Deterministic relative simulation cost for grid scheduling.

        Consumed by :func:`repro.parallel.estimate_scenario_cost` to
        order work-stealing submissions longest-first; subclasses with
        extra knobs can override it.  Delegates to the one event-rate
        cost model in :mod:`repro.parallel.schedule` -- including any
        measured weights installed via
        :func:`repro.parallel.use_cost_weights` after a
        :func:`repro.parallel.fit_cost_weights` calibration.  Staggered
        boots shorten each device's active span, which the estimate
        ignores -- an upper bound is exactly what longest-first
        scheduling wants.
        """
        from ..parallel.schedule import default_simulation_cost

        return default_simulation_cost(self.protocols, self.horizon)


def _random_phases(
    protocols: list[NDProtocol], seed: int
) -> list[int]:
    rng = random.Random(seed)
    phases = []
    for proto in protocols:
        period = 1
        if proto.beacons is not None:
            period = max(period, int(proto.beacons.period))
        if proto.reception is not None:
            period = max(period, int(proto.reception.period))
        phases.append(rng.randrange(period))
    return phases


def scenario_grid(
    factory: Callable[..., Scenario], **axes: Sequence
) -> list[Scenario]:
    """Expand a parameter grid into concrete scenarios.

    Each keyword names a ``factory`` parameter and supplies the values
    of one grid axis; the cross product is expanded in row-major order
    (last axis fastest, axes in keyword order), so the flattened list --
    and therefore the per-index seeds the grid drivers derive -- is
    deterministic.  Example::

        grid = scenario_grid(dense_network, n_devices=[5, 10], eta=[0.01, 0.02])
        results = sweep_network_grid(grid, jobs=4)

    expands to ``(5, 0.01), (5, 0.02), (10, 0.01), (10, 0.02)``.
    """
    if not axes:
        raise ValueError("scenario_grid needs at least one axis")
    names = list(axes)
    for name, values in axes.items():
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
            raise TypeError(
                f"axis {name!r} must be a sequence of values, got {values!r}"
            )
        if not values:
            raise ValueError(f"axis {name!r} is empty")
    return [
        factory(**dict(zip(names, point)))
        for point in itertools.product(*(axes[name] for name in names))
    ]


def symmetric_pair(
    eta: float = 0.01, omega: int = 32, alpha: float = 1.0, seed: int = 0
) -> Scenario:
    """Two peers running the bound-attaining symmetric protocol."""
    protocol, design = synthesize_symmetric(omega, eta, alpha)
    protocols = [protocol, protocol]
    return Scenario(
        name=f"symmetric-pair(eta={eta:g})",
        protocols=protocols,
        phases=_random_phases(protocols, seed),
        horizon=design.worst_case_latency * 4,
        description=(
            f"Two peers at eta={eta:g}; guaranteed one-way discovery within "
            f"{design.worst_case_latency} us"
        ),
    )


def gateway_and_peripherals(
    n_peripherals: int = 4,
    eta_gateway: float = 0.10,
    eta_peripheral: float = 0.005,
    omega: int = 32,
    alpha: float = 1.0,
    seed: int = 0,
) -> Scenario:
    """A mains-powered gateway plus battery peripherals (Theorem 5.7).

    The gateway spends a rich duty-cycle so the peripherals can stay
    frugal -- Figure 6's point is that only the *sum* matters.
    """
    gateway, peripheral, design_gp, design_pg = synthesize_asymmetric(
        omega, eta_gateway, eta_peripheral, alpha
    )
    protocols = [gateway] + [peripheral] * n_peripherals
    horizon = 4 * max(design_gp.worst_case_latency, design_pg.worst_case_latency)
    return Scenario(
        name=f"gateway+{n_peripherals}p",
        protocols=protocols,
        phases=_random_phases(protocols, seed),
        horizon=horizon,
        description=(
            f"Gateway at eta={eta_gateway:g}, {n_peripherals} peripherals at "
            f"eta={eta_peripheral:g}"
        ),
    )


def dense_network(
    n_devices: int = 10,
    eta: float = 0.02,
    omega: int = 32,
    alpha: float = 1.0,
    seed: int = 0,
    horizon_multiple: int = 8,
) -> Scenario:
    """``S`` identical devices discovering simultaneously -- the regime
    where channel utilization must be constrained (Section 5.2.2)."""
    protocol, design = synthesize_symmetric(omega, eta, alpha)
    protocols = [protocol] * n_devices
    return Scenario(
        name=f"dense-{n_devices}(eta={eta:g})",
        protocols=protocols,
        phases=_random_phases(protocols, seed),
        horizon=design.worst_case_latency * horizon_multiple,
        description=(
            f"{n_devices} devices at eta={eta:g} on one collision-prone "
            f"channel"
        ),
    )


def gradual_join(
    n_devices: int = 6,
    eta: float = 0.02,
    join_spacing_multiple: float = 0.5,
    omega: int = 32,
    alpha: float = 1.0,
    seed: int = 0,
) -> Scenario:
    """Devices booting one after another -- the "new devices join
    gradually" network of Section 6, where at any moment essentially one
    master and one joiner run ND and the *unconstrained* bound is the
    relevant one (the regime slotted protocols cannot win).

    Each device joins ``join_spacing_multiple`` worst-case latencies
    after the previous one.
    """
    protocol, design = synthesize_symmetric(omega, eta, alpha)
    protocols = [protocol] * n_devices
    spacing = max(1, int(design.worst_case_latency * join_spacing_multiple))
    start_times = [i * spacing for i in range(n_devices)]
    return Scenario(
        name=f"gradual-join-{n_devices}(eta={eta:g})",
        protocols=protocols,
        phases=_random_phases(protocols, seed),
        horizon=start_times[-1] + design.worst_case_latency * 4,
        start_times=start_times,
        description=(
            f"{n_devices} devices at eta={eta:g}, one joining every "
            f"{spacing} us"
        ),
    )


def drifting_pair(
    eta: float = 0.01,
    drift_ppm: int = 40,
    omega: int = 32,
    alpha: float = 1.0,
    seed: int = 0,
) -> Scenario:
    """A symmetric pair whose crystals disagree by ``2 x drift_ppm``."""
    base = symmetric_pair(eta, omega, alpha, seed)
    return Scenario(
        name=f"drifting-pair(eta={eta:g}, {drift_ppm}ppm)",
        protocols=base.protocols,
        phases=base.phases,
        horizon=base.horizon,
        drift_ppm=[drift_ppm, -drift_ppm],
        description=base.description + f"; +-{drift_ppm} ppm clock drift",
    )


#: Named scenario factories resolvable from declarative
#: :class:`repro.api.RunSpec` descriptions (``{"factory": "...",
#: "params"/"axes": {...}}``) -- the registry that lets a scenario or a
#: whole grid live in a JSON spec file instead of python code.
SCENARIO_FACTORIES: dict[str, Callable[..., Scenario]] = {
    "symmetric_pair": symmetric_pair,
    "gateway_and_peripherals": gateway_and_peripherals,
    "dense_network": dense_network,
    "gradual_join": gradual_join,
    "drifting_pair": drifting_pair,
}


def register_scenario_factory(
    name: str, factory: Callable[..., Scenario]
) -> None:
    """Register a custom scenario factory for declarative specs
    (replacing any previous entry under ``name``)."""
    SCENARIO_FACTORIES[name] = factory
