"""Fundamental worst-case-latency bounds (Section 5 and Appendices A, C).

Every theorem of the paper is exposed as a documented function.  All
functions use SI-consistent units: pass ``omega`` (the beacon transmission
duration) in seconds and you get latencies in seconds; pass microseconds
and you get microseconds.  Duty-cycles are dimensionless fractions in
``(0, 1]``.

Summary of the bound landscape (lower is better, none are beatable):

====================  =====================================  ==========
Scenario              Bound                                  Reference
====================  =====================================  ==========
Unidirectional        ``L = omega / (beta_E * gamma_F)``     Thm 5.4
Symmetric two-way     ``L = 4 alpha omega / eta^2``          Thm 5.5
Channel-constrained   piecewise, see below                   Thm 5.6
Asymmetric two-way    ``L = 4 alpha omega / (eta_E eta_F)``  Thm 5.7
One-way (either dir)  ``L = 2 alpha omega / eta^2``          Thm C.1
====================  =====================================  ==========
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "coverage_bound",
    "unidirectional_bound",
    "symmetric_bound",
    "constrained_bound",
    "asymmetric_bound",
    "one_way_bound",
    "optimal_beta_symmetric",
    "optimal_split",
    "DutyCycleSplit",
    "eta_for_latency_symmetric",
    "eta_for_latency_one_way",
    "duty_cycles_for_latency_unidirectional",
    "nonideal_unidirectional_bound",
    "last_beacon_corrected_bound",
    "finite_window_bound",
]


def _check_fraction(name: str, value: float) -> None:
    if not 0 < value <= 1:
        raise ValueError(f"{name} must be in (0, 1], got {value!r}")


def _check_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


# ----------------------------------------------------------------------
# Section 5.1 -- unidirectional beaconing
# ----------------------------------------------------------------------
def coverage_bound(
    reception_period: float,
    listen_time_per_period: float,
    omega: float,
    beta: float,
) -> float:
    """Theorem 5.1 (Coverage Bound), Equation 6.

    Lowest worst-case latency of any ``(B_inf, C_inf)`` with reception
    period ``T_C``, total listen time ``sum(d_i)`` per period, beacon
    duration ``omega`` and transmission duty-cycle ``beta``:

    ``L = ceil(T_C / sum(d_i)) * omega / beta``.
    """
    _check_positive("reception_period", reception_period)
    _check_positive("listen_time_per_period", listen_time_per_period)
    _check_positive("omega", omega)
    _check_fraction("beta", beta)
    m = math.ceil(reception_period / listen_time_per_period)
    return m * omega / beta


def unidirectional_bound(omega: float, beta_tx: float, gamma_rx: float) -> float:
    """Theorem 5.4 (Fundamental Bound for Unidirectional Beaconing), Eq. 9.

    Device E beacons with transmission duty-cycle ``beta_tx``; device F
    listens with reception duty-cycle ``gamma_rx``.  No protocol lets F
    discover E faster than ``L = omega / (beta_tx * gamma_rx)``.
    """
    _check_positive("omega", omega)
    _check_fraction("beta_tx", beta_tx)
    _check_fraction("gamma_rx", gamma_rx)
    return omega / (beta_tx * gamma_rx)


# ----------------------------------------------------------------------
# Section 5.2 -- symmetric bidirectional discovery
# ----------------------------------------------------------------------
def optimal_beta_symmetric(eta: float, alpha: float = 1.0) -> float:
    """The latency-minimizing channel utilization ``beta = eta / (2 alpha)``
    (proof of Theorem 5.5): spend half the weighted duty-cycle budget on
    transmission, half on reception.

    For cheap transmitters (``alpha < 1/2``) and near-saturated budgets
    the interior optimum can exceed full channel occupancy; it is clamped
    to ``beta = 1``, the best feasible point (the leftover budget
    ``eta - alpha`` then goes to reception).
    """
    _check_fraction("eta", eta)
    _check_positive("alpha", alpha)
    return min(eta / (2 * alpha), 1.0)


@dataclass(frozen=True)
class DutyCycleSplit:
    """An (eta -> beta, gamma) partition of a duty-cycle budget."""

    eta: float
    beta: float
    gamma: float
    alpha: float

    def __post_init__(self) -> None:
        recombined = self.alpha * self.beta + self.gamma
        if not math.isclose(recombined, self.eta, rel_tol=1e-9, abs_tol=1e-12):
            raise ValueError(
                f"inconsistent split: alpha*beta+gamma={recombined} != eta={self.eta}"
            )


def optimal_split(eta: float, alpha: float = 1.0) -> DutyCycleSplit:
    """Split a total duty-cycle ``eta`` into the latency-optimal
    transmission/reception shares (Theorem 5.5's interior optimum)."""
    beta = optimal_beta_symmetric(eta, alpha)
    gamma = eta - alpha * beta
    return DutyCycleSplit(eta=eta, beta=beta, gamma=gamma, alpha=alpha)


def symmetric_bound(omega: float, eta: float, alpha: float = 1.0) -> float:
    """Theorem 5.5 (Symmetric Bound for Bi-Directional ND), Equation 11.

    Both devices run the same schedules with total duty-cycle ``eta``;
    no protocol guarantees mutual discovery faster than
    ``L = 4 alpha omega / eta^2``.
    """
    _check_positive("omega", omega)
    _check_fraction("eta", eta)
    _check_positive("alpha", alpha)
    return 4 * alpha * omega / (eta * eta)


def constrained_bound(
    omega: float, eta: float, beta_max: float, alpha: float = 1.0
) -> float:
    """Theorem 5.6 (Symmetric ND with Constrained Channel Utilization),
    Equation 13.

    With the channel utilization capped at ``beta_max`` (to control the
    collision rate, Eq. 12) the bound is piecewise: below the kink
    ``eta <= 2 alpha beta_max`` the cap is not binding and Theorem 5.5
    applies; above it each device is forced to over-invest in reception::

        L = 4 alpha omega / eta^2                 if eta <= 2 alpha beta_max
        L = omega / (eta beta_max - alpha beta_max^2)   otherwise
    """
    _check_positive("omega", omega)
    _check_fraction("eta", eta)
    _check_fraction("beta_max", beta_max)
    _check_positive("alpha", alpha)
    if eta <= 2 * alpha * beta_max:
        return symmetric_bound(omega, eta, alpha)
    denominator = eta * beta_max - alpha * beta_max * beta_max
    if denominator <= 0:
        raise ValueError(
            f"infeasible: eta={eta} <= alpha*beta_max={alpha * beta_max}"
        )
    return omega / denominator


# ----------------------------------------------------------------------
# Section 5.3 -- asymmetric discovery
# ----------------------------------------------------------------------
def asymmetric_bound(
    omega: float, eta_e: float, eta_f: float, alpha: float = 1.0
) -> float:
    """Theorem 5.7 (Bound for Asymmetric ND), Equation 14.

    Devices E and F run different duty-cycles ``eta_e`` and ``eta_f`` and
    know each other's configuration.  No protocol guarantees two-way
    discovery faster than ``L = 4 alpha omega / (eta_e * eta_f)``.
    Reduces to Theorem 5.5 when ``eta_e == eta_f``.
    """
    _check_positive("omega", omega)
    _check_fraction("eta_e", eta_e)
    _check_fraction("eta_f", eta_f)
    _check_positive("alpha", alpha)
    return 4 * alpha * omega / (eta_e * eta_f)


# ----------------------------------------------------------------------
# Appendix C -- mutual-exclusive one-way discovery
# ----------------------------------------------------------------------
def one_way_bound(omega: float, eta: float, alpha: float = 1.0) -> float:
    """Theorem C.1, Equation 35.

    When it suffices that *either* device discovers the other (one-way
    discovery exploiting the temporal correlation of Appendix C), each
    device only needs to cover half the offsets and the bound halves:
    ``L = 2 alpha omega / eta^2``.  This is the tightest bound for all
    pairwise deterministic ND protocols.
    """
    _check_positive("omega", omega)
    _check_fraction("eta", eta)
    _check_positive("alpha", alpha)
    return 2 * alpha * omega / (eta * eta)


# ----------------------------------------------------------------------
# Inverse forms: duty-cycle required for a target latency
# ----------------------------------------------------------------------
def eta_for_latency_symmetric(
    omega: float, latency: float, alpha: float = 1.0
) -> float:
    """Smallest symmetric duty-cycle that *could* achieve worst-case
    ``latency`` (inverting Theorem 5.5): ``eta = sqrt(4 alpha omega / L)``."""
    _check_positive("omega", omega)
    _check_positive("latency", latency)
    _check_positive("alpha", alpha)
    eta = math.sqrt(4 * alpha * omega / latency)
    if eta > 1:
        raise ValueError(
            f"latency {latency} unreachable even at 100% duty-cycle "
            f"(needs eta={eta:.4f})"
        )
    return eta


def eta_for_latency_one_way(
    omega: float, latency: float, alpha: float = 1.0
) -> float:
    """Inverse of Theorem C.1: ``eta = sqrt(2 alpha omega / L)``."""
    _check_positive("omega", omega)
    _check_positive("latency", latency)
    _check_positive("alpha", alpha)
    eta = math.sqrt(2 * alpha * omega / latency)
    if eta > 1:
        raise ValueError(
            f"latency {latency} unreachable even at 100% duty-cycle "
            f"(needs eta={eta:.4f})"
        )
    return eta


def duty_cycles_for_latency_unidirectional(
    omega: float, latency: float, joint_eta: float, alpha: float = 1.0
) -> DutyCycleSplit:
    """Feasibility check for unidirectional discovery: given a joint budget
    ``joint_eta = alpha beta_E + gamma_F`` split optimally (Theorem 5.5
    also governs this case, see the remark after its proof), verify the
    target latency is achievable and return the optimal split."""
    split = optimal_split(joint_eta, alpha)
    achievable = unidirectional_bound(omega, split.beta, split.gamma)
    if achievable > latency:
        raise ValueError(
            f"target latency {latency} below the fundamental bound "
            f"{achievable} for joint eta {joint_eta}"
        )
    return split


# ----------------------------------------------------------------------
# Appendix A -- relaxed assumptions
# ----------------------------------------------------------------------
def nonideal_unidirectional_bound(
    omega: float,
    beta: float,
    gamma: float,
    overhead_tx: float = 0.0,
    overhead_rx: float = 0.0,
    window_duration: float | None = None,
) -> float:
    """Appendix A.2 (Equation 27): unidirectional bound for radios with
    switching overheads.

    ``overhead_tx`` (``d_oTx``) is the effective extra active time to
    switch sleep->TX->sleep per beacon; ``overhead_rx`` (``d_oRx``) the
    extra time per reception window.  The tightest bound uses a single
    window of ``window_duration = d_1`` per period:

    ``L = (1/gamma) * (1 + d_oRx / d_1) * (omega + d_oTx) / beta``.

    With zero overheads this degenerates to Theorem 5.4.
    """
    _check_positive("omega", omega)
    _check_fraction("beta", beta)
    _check_fraction("gamma", gamma)
    if overhead_tx < 0 or overhead_rx < 0:
        raise ValueError("overheads must be non-negative")
    if overhead_rx > 0:
        if window_duration is None:
            raise ValueError("window_duration is required when overhead_rx > 0")
        _check_positive("window_duration", window_duration)
        rx_factor = 1 + overhead_rx / window_duration
    else:
        rx_factor = 1.0
    return (1 / gamma) * rx_factor * (omega + overhead_tx) / beta


def last_beacon_corrected_bound(bound: float, omega: float) -> float:
    """Appendix A.4: account for the transmission duration of the final,
    successful beacon by adding ``omega`` to any bound.  The optimal
    duty-cycle split is unaffected; in practice ``omega << L`` and the
    correction is negligible (e.g. 32 us vs. seconds)."""
    _check_positive("omega", omega)
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound!r}")
    return bound + omega


def finite_window_bound(
    reception_period: float,
    window_duration: float,
    omega: float,
    beta: float,
) -> float:
    """Appendix A.3 (Equation 29): bound when a packet must start at least
    ``omega`` before the end of the (single) reception window to be
    received in full.

    ``L = T_C * omega / (T_C * beta * gamma - beta * omega)`` with
    ``gamma = d_1 / T_C``.  As ``T_C -> inf`` this converges to the ideal
    ``omega / (beta gamma)`` (Equation 30), so the idealized bounds stand.
    """
    _check_positive("reception_period", reception_period)
    _check_positive("window_duration", window_duration)
    _check_positive("omega", omega)
    _check_fraction("beta", beta)
    if window_duration <= omega:
        raise ValueError(
            f"window_duration ({window_duration}) must exceed omega ({omega})"
        )
    gamma = window_duration / reception_period
    denominator = reception_period * beta * gamma - beta * omega
    if denominator <= 0:
        raise ValueError("infeasible configuration: effective coverage is zero")
    return reception_period * omega / denominator
