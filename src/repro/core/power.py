"""Radio power model and energy accounting (Definition 3.5, Appendix A.2).

The paper folds the radio's power profile into a single weighting factor
``alpha = Ptx / Prx`` so the total duty-cycle ``eta = alpha beta + gamma``
is proportional to average power.  :class:`PowerModel` carries the full
profile (TX, RX, sleep, switching overheads) and converts between
schedules, duty-cycles, average power and energy-per-discovery, which the
examples and the non-ideal-radio ablation use.

Representative values ship as :data:`TYPICAL_RADIOS` (order-of-magnitude
datasheet numbers for a BLE SoC and an IEEE 802.15.4 sensor-node radio;
absolute values only matter for the examples, the bounds depend on
``alpha`` alone).
"""

from __future__ import annotations

from dataclasses import dataclass

from .sequences import BeaconSchedule, NDProtocol, ReceptionSchedule

__all__ = [
    "PowerModel",
    "TYPICAL_RADIOS",
    "effective_duty_cycles",
]


@dataclass(frozen=True)
class PowerModel:
    """A radio power/timing profile.

    All powers in milliwatts, all durations in the package time unit
    (microseconds by convention).  ``switch_*`` are the *effective
    additional active times* of Appendix A.2: actual switching durations
    weighted by their average power over ``rx_power``.
    """

    tx_power: float
    rx_power: float
    sleep_power: float = 0.0
    switch_tx: float = 0.0
    """``d_oTx``: extra effective active time per beacon (sleep->TX->sleep)."""
    switch_rx: float = 0.0
    """``d_oRx``: extra effective active time per window (sleep->RX->sleep)."""
    turnaround_tx_rx: float = 0.0
    """``d_oTxRx``: TX->RX turnaround (blocks reception, Appendix A.5)."""
    turnaround_rx_tx: float = 0.0
    """``d_oRxTx``: RX->TX turnaround."""
    name: str = "radio"

    def __post_init__(self) -> None:
        if self.tx_power <= 0 or self.rx_power <= 0:
            raise ValueError("tx_power and rx_power must be positive")
        if self.sleep_power < 0:
            raise ValueError("sleep_power must be non-negative")
        for field_name in ("switch_tx", "switch_rx", "turnaround_tx_rx", "turnaround_rx_tx"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")

    @property
    def alpha(self) -> float:
        """The paper's weighting factor ``alpha = Ptx / Prx``."""
        return self.tx_power / self.rx_power

    @property
    def is_ideal(self) -> bool:
        """True if the radio has no switching or turnaround overheads."""
        return (
            self.switch_tx == 0
            and self.switch_rx == 0
            and self.turnaround_tx_rx == 0
            and self.turnaround_rx_tx == 0
        )

    # ------------------------------------------------------------------
    def average_power(self, beta: float, gamma: float) -> float:
        """Long-run average power (mW) of a radio transmitting a fraction
        ``beta`` and receiving a fraction ``gamma`` of the time."""
        if beta < 0 or gamma < 0 or beta + gamma > 1:
            raise ValueError(f"invalid duty-cycles beta={beta}, gamma={gamma}")
        sleep_fraction = 1.0 - beta - gamma
        return (
            self.tx_power * beta
            + self.rx_power * gamma
            + self.sleep_power * sleep_fraction
        )

    def protocol_average_power(self, protocol: NDProtocol) -> float:
        """Average power of a device running ``protocol``, including the
        effective switching overheads (Appendix A.2, Equations 24-25)."""
        beta, gamma = effective_duty_cycles(self, protocol.beacons, protocol.reception)
        return self.average_power(beta, gamma)

    def energy_per_discovery(self, beta: float, gamma: float, latency: float) -> float:
        """Energy (mW x time-unit) spent until a discovery completing after
        ``latency`` time-units."""
        if latency <= 0:
            raise ValueError(f"latency must be positive, got {latency!r}")
        return self.average_power(beta, gamma) * latency

    def weighted_duty_cycle(self, beta: float, gamma: float) -> float:
        """The paper's ``eta = alpha beta + gamma``."""
        return self.alpha * beta + gamma


def effective_duty_cycles(
    power: PowerModel,
    beacons: BeaconSchedule | None,
    reception: ReceptionSchedule | None,
) -> tuple[float, float]:
    """Appendix A.2 (Equations 24-25): duty-cycles including switching
    overheads.

    Each beacon costs ``omega + d_oTx`` effective active time, each window
    ``d + d_oRx``.  Returns ``(beta_eff, gamma_eff)``.
    """
    beta_eff = 0.0
    if beacons is not None:
        active = beacons.airtime_per_period + power.switch_tx * beacons.n_beacons
        beta_eff = active / beacons.period
    gamma_eff = 0.0
    if reception is not None:
        active = (
            reception.listen_time_per_period
            + power.switch_rx * reception.n_windows
        )
        gamma_eff = active / reception.period
    return beta_eff, gamma_eff


TYPICAL_RADIOS: dict[str, PowerModel] = {
    "ideal": PowerModel(tx_power=1.0, rx_power=1.0, name="ideal"),
    "ble-soc": PowerModel(
        tx_power=17.7,
        rx_power=16.5,
        sleep_power=0.003,
        switch_tx=130.0,
        switch_rx=130.0,
        turnaround_tx_rx=150.0,
        turnaround_rx_tx=150.0,
        name="ble-soc",
    ),
    "sensor-node": PowerModel(
        tx_power=52.2,
        rx_power=59.1,
        sleep_power=0.06,
        switch_tx=192.0,
        switch_rx=192.0,
        turnaround_tx_rx=192.0,
        turnaround_rx_tx=192.0,
        name="sensor-node",
    ),
}
"""Datasheet-flavoured radio profiles for the examples (mW / us)."""
