"""Exact interval calculus on the real line and on the circle ``[0, T)``.

Coverage maps (Section 4.1 of the paper) reason about *sets of offsets*
``Phi_1`` for which some beacon of a sequence ``B'`` overlaps a reception
window of ``C_inf``.  Those sets are finite unions of intervals, shifted
around and wrapped modulo the reception period ``T_C``.  This module
provides the small amount of computational geometry needed to do that
exactly:

* :class:`Interval` -- a half-open interval ``[start, end)``.
* :class:`IntervalSet` -- a normalized (sorted, disjoint, merged) union of
  intervals with measure, union, intersection, difference and complement.
* :func:`wrap_interval` / :meth:`IntervalSet.wrapped` -- reduction of
  intervals into the fundamental domain ``[0, T)`` of the circle.

Half-open semantics are used throughout: an offset ``phi`` is *covered* by
a window ``(t, d)`` iff ``t <= phi < t + d``.  With half-open intervals,
"every offset covered exactly once" (the disjointness condition of
Definition 4.2) corresponds precisely to a partition of ``[0, T)``, with no
double counting at interval boundaries.

All arithmetic works for both ``int`` and ``float`` endpoints.  The
simulator and the schedule synthesizers use integer microseconds, for which
every operation in this module is exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

Number = Union[int, float]

__all__ = [
    "Interval",
    "IntervalSet",
    "wrap_interval",
]


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open interval ``[start, end)`` on the real line.

    Empty intervals (``end <= start``) are permitted as values but are
    dropped when normalized into an :class:`IntervalSet`.
    """

    start: Number
    end: Number

    @property
    def length(self) -> Number:
        """Measure of the interval; zero for empty intervals."""
        return max(self.end - self.start, 0)

    @property
    def is_empty(self) -> bool:
        """True if the interval contains no point."""
        return self.end <= self.start

    def contains(self, point: Number) -> bool:
        """Return True iff ``start <= point < end``."""
        return self.start <= point < self.end

    def shifted(self, delta: Number) -> "Interval":
        """Return a copy translated by ``delta`` time-units."""
        return Interval(self.start + delta, self.end + delta)

    def intersects(self, other: "Interval") -> bool:
        """Return True iff the two intervals share at least one point."""
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "Interval") -> "Interval":
        """Return the overlapping part (possibly empty)."""
        return Interval(max(self.start, other.start), min(self.end, other.end))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}, {self.end})"


def wrap_interval(interval: Interval, period: Number) -> list[Interval]:
    """Reduce ``interval`` into the fundamental domain ``[0, period)``.

    The interval is interpreted on the circle of circumference ``period``
    (the coverage map lives on ``[0, T_C)`` by Lemma 4.1).  An interval that
    straddles the origin is split into two pieces.  Intervals at least as
    long as the period cover the whole circle.

    Returns a list of one or two non-empty intervals inside ``[0, period)``.
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period!r}")
    if interval.is_empty:
        return []
    if interval.length >= period:
        return [Interval(0, period)]
    start = interval.start % period
    end = start + interval.length
    if end <= period:
        return [Interval(start, end)]
    return [Interval(start, period), Interval(0, end - period)]


class IntervalSet:
    """A normalized finite union of half-open intervals.

    The internal representation is a sorted tuple of pairwise-disjoint,
    non-adjacent, non-empty :class:`Interval` objects.  All operations
    return new sets; instances are immutable.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: tuple[Interval, ...] = self._normalize(intervals)

    @staticmethod
    def _normalize(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
        items = sorted(
            (iv for iv in intervals if not iv.is_empty),
            key=lambda iv: (iv.start, iv.end),
        )
        merged: list[Interval] = []
        for iv in items:
            if merged and iv.start <= merged[-1].end:
                last = merged[-1]
                if iv.end > last.end:
                    merged[-1] = Interval(last.start, iv.end)
            else:
                merged.append(iv)
        return tuple(merged)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Number, Number]]) -> "IntervalSet":
        """Build from ``(start, end)`` tuples."""
        return cls(Interval(s, e) for s, e in pairs)

    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set."""
        return cls(())

    @classmethod
    def full(cls, period: Number) -> "IntervalSet":
        """The full fundamental domain ``[0, period)``."""
        return cls((Interval(0, period),))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The normalized intervals, sorted by start."""
        return self._intervals

    @property
    def measure(self) -> Number:
        """Total length of the set (the Lebesgue measure)."""
        return sum((iv.length for iv in self._intervals), 0)

    @property
    def is_empty(self) -> bool:
        """True if the set contains no point."""
        return not self._intervals

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(repr(iv) for iv in self._intervals)
        return f"IntervalSet({body})"

    def contains(self, point: Number) -> bool:
        """Membership test via binary search."""
        lo, hi = 0, len(self._intervals)
        while lo < hi:
            mid = (lo + hi) // 2
            iv = self._intervals[mid]
            if point < iv.start:
                hi = mid
            elif point >= iv.end:
                lo = mid + 1
            else:
                return True
        return False

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union."""
        return IntervalSet(self._intervals + other._intervals)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection via a linear merge of the two sorted lists."""
        result: list[Interval] = []
        i = j = 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            overlap = a[i].intersection(b[j])
            if not overlap.is_empty:
                result.append(overlap)
            if a[i].end <= b[j].end:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Points in ``self`` that are not in ``other``."""
        result: list[Interval] = []
        for iv in self._intervals:
            pieces = [iv]
            for cut in other._intervals:
                if cut.start >= iv.end:
                    break
                next_pieces: list[Interval] = []
                for piece in pieces:
                    if not piece.intersects(cut):
                        next_pieces.append(piece)
                        continue
                    left = Interval(piece.start, min(piece.end, cut.start))
                    right = Interval(max(piece.start, cut.end), piece.end)
                    if not left.is_empty:
                        next_pieces.append(left)
                    if not right.is_empty:
                        next_pieces.append(right)
                pieces = next_pieces
            result.extend(pieces)
        return IntervalSet(result)

    def complement(self, period: Number) -> "IntervalSet":
        """Complement within the fundamental domain ``[0, period)``."""
        return IntervalSet.full(period).difference(self)

    def covers(self, period: Number, tolerance: Number = 0) -> bool:
        """True iff the set covers all of ``[0, period)``.

        ``tolerance`` allows gaps of at most that total measure, which is
        useful for floating-point schedules; with integer endpoints use the
        default of zero.
        """
        gap = self.complement(period).measure
        return gap <= tolerance

    def shifted(self, delta: Number) -> "IntervalSet":
        """Translate every interval by ``delta``."""
        return IntervalSet(iv.shifted(delta) for iv in self._intervals)

    def wrapped(self, period: Number) -> "IntervalSet":
        """Reduce every interval into ``[0, period)`` (circle semantics)."""
        pieces: list[Interval] = []
        for iv in self._intervals:
            pieces.extend(wrap_interval(iv, period))
        return IntervalSet(pieces)

    def boundaries(self) -> list[Number]:
        """All interval endpoints, sorted ascending (duplicates removed)."""
        points: set[Number] = set()
        for iv in self._intervals:
            points.add(iv.start)
            points.add(iv.end)
        return sorted(points)

    def sample_points(self, period: Number, per_interval: int = 3) -> list[Number]:
        """Representative points inside each interval, clipped to ``[0, period)``.

        Used by tests to probe coverage at interval interiors as well as at
        boundaries.
        """
        points: list[Number] = []
        for iv in self._intervals:
            lo = max(iv.start, 0)
            hi = min(iv.end, period)
            if hi <= lo:
                continue
            span = hi - lo
            for k in range(per_interval):
                points.append(lo + span * (2 * k + 1) / (2 * per_interval))
        return points


def multiset_coverage(
    interval_sets: Sequence[IntervalSet], period: Number
) -> list[tuple[Interval, int]]:
    """Compute the coverage multiplicity function ``Lambda*(phi)``.

    Given the per-beacon coverage sets (each already wrapped into
    ``[0, period)``), return a sorted list of ``(interval, count)`` pieces
    that partition ``[0, period)``.  ``count`` is the number of beacons
    covering each offset in the piece -- Definition 4.3's auxiliary
    variable ``Lambda*``.
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period!r}")
    events: list[tuple[Number, int]] = [(0, 0), (period, 0)]
    for iset in interval_sets:
        for iv in iset:
            lo = max(iv.start, 0)
            hi = min(iv.end, period)
            if hi <= lo:
                continue
            events.append((lo, +1))
            events.append((hi, -1))
    events.sort()
    pieces: list[tuple[Interval, int]] = []
    depth = 0
    prev: Number = 0
    for point, delta in events:
        if point > prev:
            pieces.append((Interval(prev, point), depth))
            prev = point
        depth += delta
    # Merge adjacent pieces with equal depth for a canonical result.
    merged: list[tuple[Interval, int]] = []
    for piece, count in pieces:
        if merged and merged[-1][1] == count and merged[-1][0].end == piece.start:
            merged[-1] = (Interval(merged[-1][0].start, piece.end), count)
        else:
            merged.append((piece, count))
    return merged


def integral_of_counts(pieces: Sequence[tuple[Interval, int]]) -> Number:
    """Integrate a multiplicity function: ``sum(length * count)``.

    Applied to the output of :func:`multiset_coverage` this yields the
    coverage ``Lambda`` of Definition 4.3 (Equation 4).
    """
    return sum((piece.length * count for piece, count in pieces), 0)


def lcm(a: int, b: int) -> int:
    """Least common multiple of two positive integers."""
    if a <= 0 or b <= 0:
        raise ValueError("lcm requires positive integers")
    return a * b // math.gcd(a, b)
