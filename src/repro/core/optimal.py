"""Synthesis of bound-attaining ("optimal") ND schedules (Section 5).

The bounds of Section 5 are *constructive*: schedules that attain them
exist, and this module builds them.  The recipe follows the proofs:

* **Reception side** (Theorem 5.3): one window of duration ``d`` per
  period ``T_C = k * d``, giving ``gamma = 1/k`` -- single-window periods
  are also what the non-ideal-radio analysis (Appendix A.2/A.3) favours.
  Equation 22 shows only ``gamma = 1/k`` values are optimal, so the
  reception duty-cycle is inherently quantized.

* **Beacon side** (Theorem 5.1 / Lemma 5.2): equally spaced beacons with
  gap ``lambda = n * d`` where the stride ``n mod k`` is coprime to ``k``.
  Successive beacons then shift the window's coverage image by ``n * d``
  (mod ``T_C``), visiting every one of the ``k`` residues ``{0, d, ...,
  (k-1) d}`` exactly once: the coverage map tiles ``[0, T_C)`` disjointly,
  every ``M = k`` consecutive beacons are deterministic, and the
  worst-case latency equals ``M * lambda = omega / (beta * gamma)`` --
  precisely Theorem 5.4.

Every synthesized design carries its own :class:`~repro.core.coverage.
CoverageMap` verdict, so optimality is verified *by construction* rather
than assumed.

All times are integer microseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from . import bounds
from .coverage import beacon_coverage_set, CoverageMap, minimum_beacons
from .sequences import BeaconSchedule, NDProtocol, ReceptionSchedule

__all__ = [
    "OptimalDesign",
    "synthesize_unidirectional",
    "plan_unidirectional",
    "synthesize_symmetric",
    "synthesize_asymmetric",
    "synthesize_constrained",
    "synthesize_redundant",
    "coprime_stride_near",
    "greedy_cover_shifts",
]


def _check_positive_int(name: str, value: int) -> None:
    if not isinstance(value, int) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")


def coprime_stride_near(target: int, k: int) -> int:
    """Find the multiplier ``n`` closest to ``target`` whose residue is a
    valid coverage stride modulo ``k``: ``gcd(n mod k, k) == 1`` (and
    ``n mod k != 0`` unless ``k == 1``).

    A beacon gap of ``n * d`` then steps the coverage image through all
    ``k`` window-sized residues of ``[0, T_C)``.
    """
    _check_positive_int("k", k)
    if target < 1:
        target = 1
    if k == 1:
        return target

    def valid(n: int) -> bool:
        r = n % k
        return r != 0 and math.gcd(r, k) == 1

    for delta in range(k + 1):
        for candidate in (target + delta, target - delta):
            if candidate >= 1 and valid(candidate):
                return candidate
    raise AssertionError("unreachable: residue 1 is always coprime")  # pragma: no cover


@dataclass(frozen=True)
class OptimalDesign:
    """A synthesized schedule pair together with its verified properties."""

    beacons: BeaconSchedule
    """The beacon train (uniform gap ``lambda = stride * window``)."""
    reception: ReceptionSchedule
    """Single-window reception schedule (``T_C = k * window``)."""
    stride: int
    """``n = lambda / d``; ``n mod k`` is coprime to ``k``."""
    k: int
    """Windows per coverage cycle: ``gamma = 1/k``, ``M = k`` beacons."""
    omega: int
    """Beacon transmission duration (us)."""
    deterministic: bool
    """Coverage-map verdict: every initial offset is covered."""
    disjoint: bool
    """Coverage-map verdict: no offset covered twice (latency-optimal)."""
    worst_case_latency: int
    """``M * lambda`` -- the guaranteed discovery latency (us)."""

    @property
    def beta(self) -> float:
        """Achieved transmission duty-cycle."""
        return self.beacons.duty_cycle

    @property
    def gamma(self) -> float:
        """Achieved reception duty-cycle (= ``1/k``)."""
        return self.reception.duty_cycle

    def predicted_bound(self) -> float:
        """Theorem 5.4 evaluated at the achieved duty-cycles; equals
        :attr:`worst_case_latency` for a verified design."""
        return bounds.unidirectional_bound(self.omega, self.beta, self.gamma)


def synthesize_unidirectional(
    omega: int,
    window: int,
    k: int,
    stride: int | None = None,
    redundancy: int = 1,
) -> OptimalDesign:
    """Build a verified optimal unidirectional design from exact integers.

    Parameters
    ----------
    omega:
        Beacon duration in us.
    window:
        Reception-window duration ``d`` in us (must be >= ``omega`` for the
        point-beacon idealization to be meaningful; enforced loosely).
    k:
        Reception periods per coverage cycle: ``T_C = k * window`` and
        ``gamma = 1/k``.
    stride:
        Beacon gap in units of ``window``; defaults to ``k + 1`` (the
        smallest stride > k with residue 1).  Larger strides lower
        ``beta`` and raise the latency proportionally.
    redundancy:
        Cover every offset this many times (Appendix B schedules); the
        beacon train is extended to ``redundancy * k`` beacons per cycle.

    Returns a design whose coverage map has been checked for determinism
    and (for ``redundancy == 1``) disjointness.
    """
    _check_positive_int("omega", omega)
    _check_positive_int("window", window)
    _check_positive_int("k", k)
    _check_positive_int("redundancy", redundancy)
    if stride is None:
        stride = k + 1
    _check_positive_int("stride", stride)
    if k > 1 and math.gcd(stride % k, k) != 1:
        raise ValueError(
            f"stride {stride} is not a coverage stride mod {k}: "
            f"gcd({stride % k}, {k}) != 1"
        )
    gap = stride * window
    if gap < omega:
        raise ValueError(
            f"beacon gap {gap} shorter than the beacon itself ({omega})"
        )
    reception = ReceptionSchedule.single_window(duration=window, period=k * window)
    beacons = BeaconSchedule.uniform(n_beacons=1, gap=gap, duration=omega)

    m_needed = redundancy * minimum_beacons(reception)
    shifts = [i * gap for i in range(m_needed)]
    cover = CoverageMap(shifts, reception)
    deterministic = cover.is_deterministic()
    disjoint = cover.is_disjoint()
    return OptimalDesign(
        beacons=beacons,
        reception=reception,
        stride=stride,
        k=k,
        omega=omega,
        deterministic=deterministic,
        disjoint=disjoint,
        worst_case_latency=k * gap,
    )


def plan_unidirectional(
    omega: int,
    target_beta: float,
    target_gamma: float,
    window: int | None = None,
) -> OptimalDesign:
    """Approximate continuous duty-cycle targets with an exact design.

    ``gamma`` quantizes to ``1/k`` with ``k = round(1/target_gamma)`` and
    ``beta`` to ``omega / (n * d)`` with a coprime stride ``n``; the
    achieved values are reported on the returned design.  ``window``
    defaults to a value that keeps the ``beta`` quantization error small
    (gap resolution of ~1/32 of the target gap).
    """
    bounds._check_positive("omega", float(omega))
    bounds._check_fraction("target_beta", target_beta)
    bounds._check_fraction("target_gamma", target_gamma)
    k = max(1, round(1.0 / target_gamma))
    gap_target = omega / target_beta
    if window is None:
        window = max(omega, round(gap_target / 32))
    _check_positive_int("window", window)
    stride = coprime_stride_near(max(1, round(gap_target / window)), k)
    return synthesize_unidirectional(omega, window, k, stride)


def synthesize_symmetric(
    omega: int,
    eta: float,
    alpha: float = 1.0,
    window: int | None = None,
) -> tuple[NDProtocol, OptimalDesign]:
    """Build the symmetric bidirectional protocol attaining Theorem 5.5.

    Splits ``eta`` optimally (``beta = eta / 2 alpha``, ``gamma = eta/2``)
    and runs the same optimal unidirectional design in both directions on
    both devices.  Returns the per-device protocol and the underlying
    design (whose ``worst_case_latency`` bounds both partial discoveries).
    """
    split = bounds.optimal_split(eta, alpha)
    design = plan_unidirectional(omega, split.beta, split.gamma, window)
    protocol = NDProtocol(
        beacons=design.beacons,
        reception=design.reception,
        alpha=alpha,
        name=f"optimal-symmetric(eta={eta:g})",
    )
    return protocol, design


def synthesize_asymmetric(
    omega: int,
    eta_e: float,
    eta_f: float,
    alpha: float = 1.0,
    window_e: int | None = None,
    window_f: int | None = None,
) -> tuple[NDProtocol, NDProtocol, OptimalDesign, OptimalDesign]:
    """Build the asymmetric pair attaining Theorem 5.7.

    Each device splits its own budget optimally (``beta_i = eta_i / 2
    alpha``, proof of Theorem 5.7); device E's beacon train must tile
    device F's reception schedule and vice versa, so each direction is an
    independently synthesized unidirectional design:

    * design EF: E's beacons (``beta_E``) against F's windows (``gamma_F``)
    * design FE: F's beacons (``beta_F``) against E's windows (``gamma_E``)

    Returns ``(protocol_e, protocol_f, design_ef, design_fe)``; the
    two-way worst-case latency is ``max`` of the two design latencies.
    """
    split_e = bounds.optimal_split(eta_e, alpha)
    split_f = bounds.optimal_split(eta_f, alpha)
    # E's beacons tile F's reception; F's beacons tile E's reception.
    design_ef = plan_unidirectional(omega, split_e.beta, split_f.gamma, window_f)
    design_fe = plan_unidirectional(omega, split_f.beta, split_e.gamma, window_e)
    protocol_e = NDProtocol(
        beacons=design_ef.beacons,
        reception=design_fe.reception,
        alpha=alpha,
        name=f"optimal-asymmetric-E(eta={eta_e:g})",
    )
    protocol_f = NDProtocol(
        beacons=design_fe.beacons,
        reception=design_ef.reception,
        alpha=alpha,
        name=f"optimal-asymmetric-F(eta={eta_f:g})",
    )
    return protocol_e, protocol_f, design_ef, design_fe


def synthesize_constrained(
    omega: int,
    eta: float,
    beta_max: float,
    alpha: float = 1.0,
    window: int | None = None,
) -> tuple[NDProtocol, OptimalDesign]:
    """Build the channel-utilization-constrained protocol of Theorem 5.6.

    Uses ``beta = min(beta_max, eta / 2 alpha)``: below the kink this is
    the unconstrained optimum; above it the cap binds and the leftover
    budget goes to reception, reproducing Equation 13's second branch.
    """
    bounds._check_fraction("beta_max", beta_max)
    beta = min(beta_max, bounds.optimal_beta_symmetric(eta, alpha))
    gamma = eta - alpha * beta
    if gamma <= 0:
        raise ValueError(f"infeasible: eta={eta} <= alpha*beta={alpha * beta}")
    design = plan_unidirectional(omega, beta, gamma, window)
    protocol = NDProtocol(
        beacons=design.beacons,
        reception=design.reception,
        alpha=alpha,
        name=f"optimal-constrained(eta={eta:g}, beta_max={beta_max:g})",
    )
    return protocol, design


def greedy_cover_shifts(
    reception: ReceptionSchedule,
    min_gap: int,
    gap_step: int = 1,
    max_beacons: int | None = None,
) -> tuple[list[int], CoverageMap]:
    """Deterministic beacon shifts for an *arbitrary* reception schedule.

    Appendix A.1 extends the bounds to reception sequences that are not
    single equal windows: a beacon sequence is deterministic iff its
    shifted coverage images jointly cover ``[0, T_C)``.  For irregular
    windows an exact disjoint tiling generally does not exist; this
    greedy synthesizer emits beacons one by one, each at least
    ``min_gap`` after the previous (the duty-cycle constraint), choosing
    at every step the shift (scanned at ``gap_step`` resolution) that
    covers the most still-uncovered offsets.

    Returns the shifts and the verifying coverage map.  For a
    single-window schedule the greedy recovers the exact optimum of
    ``M = T_C / d`` beacons; for irregular schedules it may need more
    than the Theorem-4.3 lower bound -- the theorem is necessary, not
    sufficient.  Raises ``ValueError`` if ``max_beacons`` (default
    ``4 * M``) is exhausted before determinism.
    """
    _check_positive_int("min_gap", min_gap)
    _check_positive_int("gap_step", gap_step)
    lower_bound = minimum_beacons(reception)
    if max_beacons is None:
        max_beacons = 4 * lower_bound
    period = int(reception.period)

    from .coverage import beacon_coverage_set

    shifts = [0]
    covered = beacon_coverage_set(0, reception)
    while not covered.covers(period):
        if len(shifts) >= max_beacons:
            raise ValueError(
                f"greedy cover needs more than {max_beacons} beacons "
                f"(Theorem 4.3 lower bound: {lower_bound})"
            )
        uncovered = covered.complement(period)
        base = shifts[-1] + min_gap
        best_shift = base
        best_gain = -1
        # Candidate shifts: one period's worth beyond the earliest legal
        # send time covers every distinct residue alignment.
        for offset in range(0, period, gap_step):
            candidate = base + offset
            gain = (
                beacon_coverage_set(candidate, reception)
                .intersection(uncovered)
                .measure
            )
            if gain > best_gain:
                best_gain = gain
                best_shift = candidate
            if gain == uncovered.measure:
                break  # cannot do better than covering everything left
        shifts.append(best_shift)
        covered = covered.union(beacon_coverage_set(best_shift, reception))
    return shifts, CoverageMap(shifts, reception)


def synthesize_redundant(
    omega: int,
    eta: float,
    redundancy: int,
    target_pf: float,
    n_senders: int,
    alpha: float = 1.0,
    window: int | None = None,
) -> tuple[NDProtocol, OptimalDesign]:
    """Build an Appendix-B redundant schedule: every offset covered
    ``redundancy`` times, sized for a failure-rate target in a network of
    ``n_senders`` simultaneous discoverers.

    The channel utilization follows from the failure constraint
    (Equation 32 with ``q = 0``); remaining budget goes to reception.  The
    first-coverage latency of the design matches Theorem 5.4 for the
    chosen ``(beta, gamma)``; the redundant tail provides the collision
    backup that Equation 33 prices at ``Q x``.
    """
    from .collisions import beta_for_failure_rate  # avoid import cycle at load

    beta_cap = beta_for_failure_rate(target_pf, redundancy, n_senders)
    beta = min(beta_cap, bounds.optimal_beta_symmetric(eta, alpha))
    gamma = eta - alpha * beta
    k = max(1, round(1.0 / gamma))
    gap_target = omega / beta
    if window is None:
        window = max(omega, round(gap_target / 32))
    stride = coprime_stride_near(max(1, round(gap_target / window)), k)
    design = synthesize_unidirectional(omega, window, k, stride, redundancy=redundancy)
    protocol = NDProtocol(
        beacons=design.beacons,
        reception=design.reception,
        alpha=alpha,
        name=f"optimal-redundant(Q={redundancy}, eta={eta:g})",
    )
    return protocol, design
