"""Coverage maps (Section 4.1): determinism, redundancy and latency.

A beacon sequence ``B' = b_1 ... b_m`` facing an infinite reception-window
sequence ``C_inf`` is analyzed through the *sets of initial offsets*
``Omega_i`` for which beacon ``b_i`` lands inside a reception window
(Equation 3).  The union of the ``Omega_i`` over one reception period
``[0, T_C)`` is the coverage map:

* ``B'`` is **deterministic** iff the union covers all of ``[0, T_C)``
  (Definition 4.1, using Lemma 4.1 to restrict to one period);
* the tuple is **disjoint** iff no offset is covered twice
  (Definition 4.2), the signature of latency-optimal schedules;
* the **coverage** ``Lambda`` integrates the multiplicity function
  ``Lambda*`` (Definition 4.3, Equation 4);
* the **packet-to-packet latency** ``l*`` for an offset is the send time
  of the first successful beacon relative to the first beacon in range.

Everything here is exact for integer-microsecond schedules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

from .intervals import (
    Interval,
    IntervalSet,
    integral_of_counts,
    lcm,
    multiset_coverage,
)
from .sequences import BeaconSchedule, ReceptionSchedule

Number = Union[int, float]

__all__ = [
    "beacon_coverage_set",
    "CoverageMap",
    "minimum_beacons",
]


def minimum_beacons(reception: ReceptionSchedule) -> int:
    """Theorem 4.3 (Beaconing Theorem): minimum number of beacons
    ``M = ceil(T_C / sum(d_k))`` any deterministic sequence needs against
    ``reception``.
    """
    return math.ceil(reception.period / reception.listen_time_per_period)


def beacon_coverage_set(
    shift: Number, reception: ReceptionSchedule
) -> IntervalSet:
    """The offsets ``Phi_1`` for which a beacon sent ``shift`` time-units
    after the first beacon overlaps a reception window, wrapped into
    ``[0, T_C)``.

    This is ``Omega_i`` of Equation 3 with ``shift = sum of the first i-1
    beacon gaps``: every window interval is translated ``shift`` units to
    the left and reduced modulo the reception period (Lemma 4.1).
    """
    period = reception.period
    shifted = reception.window_intervals().shifted(-shift)
    return shifted.wrapped(period)


@dataclass(frozen=True)
class _Row:
    """One row of a coverage map: beacon index, its send time relative to
    the first beacon, and the offsets it covers."""

    index: int
    shift: Number
    offsets: IntervalSet


class CoverageMap:
    """The coverage map of a finite beacon train against ``C_inf``.

    Parameters
    ----------
    beacon_shifts:
        Send times of the beacons relative to the first one
        (``beacon_shifts[0]`` must be 0); these are the cumulative beacon
        gaps ``sum(lambda_k)``.
    reception:
        The periodic reception schedule ``C`` (defining ``C_inf``).
    """

    def __init__(
        self, beacon_shifts: Sequence[Number], reception: ReceptionSchedule
    ) -> None:
        shifts = list(beacon_shifts)
        if not shifts:
            raise ValueError("need at least one beacon")
        if shifts[0] != 0:
            raise ValueError("the first beacon must have shift 0")
        if any(b < a for a, b in zip(shifts, shifts[1:])):
            raise ValueError("beacon shifts must be non-decreasing")
        self._reception = reception
        self._rows = tuple(
            _Row(i, shift, beacon_coverage_set(shift, reception))
            for i, shift in enumerate(shifts)
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_schedules(
        cls,
        beacons: BeaconSchedule,
        reception: ReceptionSchedule,
        max_beacons: int | None = None,
    ) -> "CoverageMap":
        """Unroll a periodic beacon schedule against a reception schedule.

        The relative alignment of the two periodic sequences repeats after
        the hyperperiod ``lcm(T_B, T_C)``; a beacon train spanning one
        hyperperiod therefore decides determinism conclusively.  For
        integer periods that exact horizon is used unless ``max_beacons``
        caps it; for float periods ``max_beacons`` is required.
        """
        tb, tc = beacons.period, reception.period
        if isinstance(tb, int) and isinstance(tc, int):
            horizon_beacons = beacons.n_beacons * (lcm(tb, tc) // tb)
        elif max_beacons is None:
            raise ValueError("max_beacons is required for non-integer periods")
        else:
            horizon_beacons = max_beacons
        count = (
            min(horizon_beacons, max_beacons)
            if max_beacons is not None
            else horizon_beacons
        )
        times = beacons.beacon_times(count)
        first = times[0]
        return cls([t - first for t in times], reception)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def reception(self) -> ReceptionSchedule:
        """The reception schedule the map was built against."""
        return self._reception

    @property
    def n_beacons(self) -> int:
        """Number of rows (beacons) in the map."""
        return len(self._rows)

    @property
    def beacon_shifts(self) -> tuple[Number, ...]:
        """Send times of the beacons relative to the first one."""
        return tuple(row.shift for row in self._rows)

    def row(self, index: int) -> IntervalSet:
        """``Omega_{index+1}``: offsets covered by beacon ``index``."""
        return self._rows[index].offsets

    # ------------------------------------------------------------------
    # Coverage quantities (Definitions 4.1-4.3)
    # ------------------------------------------------------------------
    def covered_set(self) -> IntervalSet:
        """Union of all rows: every offset covered by at least one beacon."""
        combined = IntervalSet.empty()
        for r in self._rows:
            combined = combined.union(r.offsets)
        return combined

    def uncovered_set(self) -> IntervalSet:
        """Offsets in ``[0, T_C)`` not covered by any beacon."""
        return self.covered_set().complement(self._reception.period)

    def is_deterministic(self) -> bool:
        """Definition 4.1: every initial offset leads to a discovery."""
        return self.uncovered_set().is_empty

    def multiplicity(self) -> list[tuple[Interval, int]]:
        """The multiplicity function ``Lambda*`` as ``(interval, count)``
        pieces partitioning ``[0, T_C)``."""
        return multiset_coverage(
            [r.offsets for r in self._rows], self._reception.period
        )

    def coverage(self) -> Number:
        """The coverage ``Lambda`` (Equation 4): integral of ``Lambda*``."""
        return integral_of_counts(self.multiplicity())

    def is_disjoint(self) -> bool:
        """Definition 4.2: no offset covered by more than one beacon."""
        return all(count <= 1 for _, count in self.multiplicity())

    def is_redundant(self) -> bool:
        """Definition 4.2: at least one offset covered more than once."""
        return not self.is_disjoint()

    def redundancy(self) -> Number:
        """Total over-coverage: ``Lambda - measure(covered set)``.

        Zero iff disjoint; for an exact ``Q``-redundant schedule this is
        ``(Q - 1) * T_C``.
        """
        return self.coverage() - self.covered_set().measure

    def min_multiplicity(self) -> int:
        """Smallest number of beacons covering any offset (0 if gaps exist)."""
        return min(count for _, count in self.multiplicity())

    def max_multiplicity(self) -> int:
        """Largest number of beacons covering any offset."""
        return max(count for _, count in self.multiplicity())

    # ------------------------------------------------------------------
    # Latency (Section 4.1.1, "packet-to-packet discovery latency")
    # ------------------------------------------------------------------
    def first_covering_beacon(self, offset: Number) -> int | None:
        """Index of the first beacon received for an initial offset, or
        ``None`` if no beacon in the train covers the offset."""
        phi = offset % self._reception.period
        for r in self._rows:
            if r.offsets.contains(phi):
                return r.index
        return None

    def packet_latency(self, offset: Number) -> Number | None:
        """``l*(Phi_1)``: delay from the first beacon to the first
        successful one, or ``None`` if the offset is uncovered."""
        index = self.first_covering_beacon(offset)
        if index is None:
            return None
        return self._rows[index].shift

    def latency_pieces(self) -> list[tuple[Interval, Number]]:
        """Piecewise-constant ``l*`` over ``[0, T_C)``.

        Returns ``(interval, latency)`` pieces for every covered region,
        assigning to each offset the shift of its *first* covering beacon.
        Uncovered regions are omitted.
        """
        period = self._reception.period
        claimed = IntervalSet.empty()
        pieces: list[tuple[Interval, Number]] = []
        for r in self._rows:
            fresh = r.offsets.difference(claimed)
            for iv in fresh:
                clipped = iv.intersection(Interval(0, period))
                if not clipped.is_empty:
                    pieces.append((clipped, r.shift))
            claimed = claimed.union(r.offsets)
        pieces.sort(key=lambda item: (item[0].start, item[0].end))
        return pieces

    def worst_packet_latency(self) -> Number | None:
        """``max_phi l*(phi)``; ``None`` if the map is not deterministic."""
        if not self.is_deterministic():
            return None
        return max((latency for _, latency in self.latency_pieces()), default=0)

    def mean_packet_latency(self) -> float | None:
        """Offset-averaged ``l*`` (uniform random initial offset);
        ``None`` if the map is not deterministic."""
        if not self.is_deterministic():
            return None
        total = sum(iv.length * latency for iv, latency in self.latency_pieces())
        return total / self._reception.period

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CoverageMap(beacons={self.n_beacons}, "
            f"T_C={self._reception.period}, "
            f"deterministic={self.is_deterministic()})"
        )
