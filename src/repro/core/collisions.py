"""Collision theory: ALOHA collision rates and the Appendix-B trade-off.

Two ingredients of the paper live here:

1. **Equation 12** -- the slotted-ALOHA-style collision probability a
   freshly arriving beacon faces when ``S`` senders each occupy the channel
   for a fraction ``beta`` of the time: ``Pc = 1 - exp(-2 (S-1) beta)``.
   Inverting it yields the channel-utilization cap ``beta_max`` that keeps
   ``Pc`` below a target, which feeds Theorem 5.6 (Figure 7).

2. **Appendix B** -- the redundancy trade-off for busy networks.  A
   protocol covers every offset ``Q`` times (a fraction ``q`` of offsets
   ``Q+1`` times) so that a collided beacon is backed up by later ones.
   Under the idealized assumption of fully decorrelated collisions the
   failure rate is Equation 32 and the latency achieved with failure rate
   ``Pf`` is Equation 33.  :func:`optimize_redundancy` finds the optimal
   integer redundancy degree ``Q`` for a budget ``(eta, Pf, S)``.

Note on the exponent
--------------------
Equation 32 of the paper writes the per-beacon collision probability with
``S - 2`` interfering senders (the partner's beacons cannot collide with
the partner's own reception), while Equation 12 and the worked numeric
example in Appendix B use ``S - 1``.  Reproducing the worked example
(``omega = 32 us``, ``alpha = 1``, ``eta = 5%``, ``Pf = 0.05%``, ``S = 3``
giving ``Q = 3``, ``beta = 2.07%``, ``L' = 0.1583 s``) requires the
``S - 1`` form, which is therefore the default here; pass
``interferers="s-2"`` for the Equation-32 variant.  (The example also
states ``omega = 36 us`` but its numbers are only consistent with the
32 us used elsewhere in the paper; see EXPERIMENTS.md.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

from . import bounds

__all__ = [
    "collision_probability",
    "beta_max_for_collision_probability",
    "RedundancyPlan",
    "failure_rate",
    "beta_for_failure_rate",
    "optimize_redundancy",
]

InterfererRule = Literal["s-1", "s-2"]


def _interferer_count(n_senders: int, rule: InterfererRule) -> int:
    if n_senders < 2:
        raise ValueError(f"need at least two senders, got {n_senders}")
    if rule == "s-1":
        return n_senders - 1
    if rule == "s-2":
        return n_senders - 2
    raise ValueError(f"unknown interferer rule {rule!r}")


def collision_probability(
    n_senders: int, beta: float, interferers: InterfererRule = "s-1"
) -> float:
    """Equation 12: probability that a beacon from a newly arriving sender
    collides, with ``n_senders`` total senders each at channel utilization
    ``beta``: ``Pc = 1 - exp(-2 * k * beta)`` with ``k`` interferers.
    """
    if beta < 0:
        raise ValueError(f"beta must be non-negative, got {beta!r}")
    k = _interferer_count(n_senders, interferers)
    return 1.0 - math.exp(-2.0 * k * beta)


def beta_max_for_collision_probability(
    collision_prob: float, n_senders: int, interferers: InterfererRule = "s-1"
) -> float:
    """Invert Equation 12: the largest channel utilization each of
    ``n_senders`` senders may use so an arriving beacon collides with
    probability at most ``collision_prob``.

    This is the ``beta_max`` fed into Theorem 5.6 for Figure 7.
    """
    if not 0 < collision_prob < 1:
        raise ValueError(
            f"collision_prob must be in (0, 1), got {collision_prob!r}"
        )
    k = _interferer_count(n_senders, interferers)
    if k == 0:
        return 1.0  # a lone pair never collides under this model
    return -math.log(1.0 - collision_prob) / (2.0 * k)


# ----------------------------------------------------------------------
# Appendix B -- failure-rate-constrained redundancy
# ----------------------------------------------------------------------
def failure_rate(
    beta: float,
    redundancy: int,
    extra_fraction: float,
    n_senders: int,
    interferers: InterfererRule = "s-1",
) -> float:
    """Equation 32: discovery-failure probability of a ``Q``-redundant
    schedule under fully decorrelated collisions.

    A fraction ``extra_fraction`` (``q``) of offsets is covered
    ``redundancy + 1`` times, the rest ``redundancy`` times; discovery
    fails only if every covering beacon collides::

        Pf = (1-q) Pc^Q + q Pc^(Q+1)
    """
    if redundancy < 1:
        raise ValueError(f"redundancy must be >= 1, got {redundancy}")
    if not 0 <= extra_fraction <= 1:
        raise ValueError(f"extra_fraction must be in [0, 1], got {extra_fraction!r}")
    pc = collision_probability(n_senders, beta, interferers)
    return (1 - extra_fraction) * pc**redundancy + extra_fraction * pc ** (
        redundancy + 1
    )


def beta_for_failure_rate(
    target_pf: float,
    redundancy: int,
    n_senders: int,
    interferers: InterfererRule = "s-1",
) -> float:
    """Solve Equation 32 for ``beta`` with ``q = 0`` (closed form).

    The per-beacon collision probability may be ``Pf ** (1/Q)``, so
    ``beta = -ln(1 - Pf^(1/Q)) / (2 k)``.
    """
    if not 0 < target_pf < 1:
        raise ValueError(f"target_pf must be in (0, 1), got {target_pf!r}")
    if redundancy < 1:
        raise ValueError(f"redundancy must be >= 1, got {redundancy}")
    per_beacon = target_pf ** (1.0 / redundancy)
    return beta_max_for_collision_probability(per_beacon, n_senders, interferers)


@dataclass(frozen=True)
class RedundancyPlan:
    """Result of the Appendix-B optimization for one redundancy degree."""

    redundancy: int
    """``Q`` -- how many beacons cover each offset."""
    beta: float
    """Channel utilization solving the failure-rate constraint."""
    gamma: float
    """Remaining reception duty-cycle ``eta - alpha * beta``."""
    latency: float
    """``L'(Pf)`` per Equation 33: ``Q * omega / (beta * gamma)``."""
    pair_latency: float
    """Worst-case latency for an isolated pair (no collisions), Thm 5.4."""
    per_beacon_collision_prob: float
    """``Pc`` each individual beacon faces at this ``beta``."""
    failure_rate: float
    """The achieved ``Pf`` (at most the target; below it when the
    constraint is slack at the latency-optimal split)."""
    constraint_binding: bool
    """Whether the failure-rate cap actually limited ``beta``."""


def optimize_redundancy(
    eta: float,
    target_pf: float,
    n_senders: int,
    omega: float,
    alpha: float = 1.0,
    max_redundancy: int = 64,
    interferers: InterfererRule = "s-1",
) -> RedundancyPlan:
    """Appendix B: the best integer redundancy degree ``Q`` for a budget.

    For each candidate ``Q``, the failure-rate requirement (Equation 32
    with ``q = 0``) caps the channel utilization at
    ``beta_cap(Q) = -ln(1 - Pf^(1/Q)) / (2 k)``; the latency-optimal
    feasible choice is ``beta = min(beta_cap, eta / 2 alpha)`` (when the
    cap is slack, the plain Theorem-5.5 split already satisfies the
    failure target).  The reception share is what remains of ``eta`` and
    the latency achieved with probability ``1 - Pf`` is Equation 33.
    Returns the plan minimizing that latency; every budget has a feasible
    plan since ``beta <= eta / 2 alpha`` always leaves ``gamma > 0``.
    """
    bounds._check_fraction("eta", eta)
    bounds._check_positive("omega", omega)
    bounds._check_positive("alpha", alpha)
    beta_optimal = bounds.optimal_beta_symmetric(eta, alpha)
    best: RedundancyPlan | None = None
    for q_degree in range(1, max_redundancy + 1):
        beta_cap = beta_for_failure_rate(
            target_pf, q_degree, n_senders, interferers
        )
        binding = beta_cap < beta_optimal
        beta = min(beta_cap, beta_optimal)
        gamma = eta - alpha * beta
        latency = q_degree * omega / (beta * gamma)
        if best is None or latency < best.latency:
            best = RedundancyPlan(
                redundancy=q_degree,
                beta=beta,
                gamma=gamma,
                latency=latency,
                pair_latency=omega / (beta * gamma),
                per_beacon_collision_prob=collision_probability(
                    n_senders, beta, interferers
                ),
                failure_rate=failure_rate(
                    beta, q_degree, 0.0, n_senders, interferers
                ),
                constraint_binding=binding,
            )
        if not binding:
            # Larger Q only raises the cap further while multiplying the
            # latency by Q: once the cap is slack, stop.
            break
    assert best is not None
    return best


def _golden_section_minimize(fn, lo: float, hi: float, tol: float = 1e-12) -> float:
    """Bounded scalar minimization without scipy.

    A coarse deterministic grid scan first brackets the best sample --
    ``inf`` plateaus (infeasible ``q`` slivers at the band edges) can
    cover most of the band, and a blind golden-section tie-break could
    collapse into the plateau and miss the finite minimum entirely --
    then golden-section search refines inside that bracket, where the
    fractional-redundancy objective is unimodal and finite.  Matches
    ``minimize_scalar(method="bounded")`` closely enough for the
    callers' tolerance; deterministic, derivative-free and
    dependency-free -- the fallback the no-scipy environment uses.
    """
    n_seed = 33
    span = hi - lo
    xs = [lo + span * i / (n_seed - 1) for i in range(n_seed)]
    fs = [fn(x) for x in xs]
    k = min(range(n_seed), key=lambda i: fs[i])
    a = xs[max(0, k - 1)]
    b = xs[min(n_seed - 1, k + 1)]
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = fn(c), fn(d)
    while (b - a) > tol * max(1.0, abs(a) + abs(b)):
        if fc <= fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = fn(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = fn(d)
    return (a + b) / 2.0


def solve_fractional_redundancy(
    eta: float,
    target_pf: float,
    n_senders: int,
    omega: float,
    alpha: float = 1.0,
    max_redundancy: int = 64,
    interferers: InterfererRule = "s-1",
) -> tuple[RedundancyPlan, float]:
    """Appendix B with ``q > 0``: fractional redundancy degrees.

    The paper notes Equation 32 "is only easily possible for q = 0 - for
    other values, numeric solutions are feasible".  This solves the
    general problem: a fraction ``q`` of offsets is covered ``Q+1``
    times, the rest ``Q`` times, so the *effective* redundancy is
    ``Q + q`` and the latency generalizes Equation 33 to
    ``L' = (Q + q) * omega / (beta * gamma)``.  For each integer ``Q``
    the inner problem -- find ``(beta, q)`` with
    ``(1-q) Pc^Q + q Pc^(Q+1) = Pf`` minimizing ``L'`` -- is solved by a
    bounded scalar minimization over ``beta`` (``q`` then follows in
    closed form), using scipy when the environment happens to provide
    it and a pure-python golden-section search otherwise (no declared
    extra pulls scipy in -- the base install has zero dependencies, so
    the fallback is the path most installs run).

    Returns ``(plan, q)`` with the best plan found; ``q == 0`` recovers
    :func:`optimize_redundancy`'s answer.
    """
    try:  # deferred: keep import cheap
        from scipy.optimize import minimize_scalar
    except ImportError:  # no scipy/numpy: dependency-free fallback
        minimize_scalar = None

    bounds._check_fraction("eta", eta)
    bounds._check_positive("omega", omega)
    beta_optimal = bounds.optimal_beta_symmetric(eta, alpha)
    best: tuple[RedundancyPlan, float] | None = None
    for q_degree in range(1, max_redundancy + 1):
        # beta range for which a valid q in [0, 1] exists:
        # Pc^(Q+1) <= Pf <= Pc^Q.
        beta_hi = beta_for_failure_rate(
            target_pf, q_degree, n_senders, interferers
        )
        beta_lo = beta_for_failure_rate(
            target_pf, q_degree + 1, n_senders, interferers
        )
        beta_hi = min(beta_hi, beta_optimal)
        if beta_hi <= beta_lo:
            continue  # this Q's feasible band is outside the useful range

        def latency_at(beta: float, q_deg: int = q_degree) -> float:
            pc = collision_probability(n_senders, beta, interferers)
            pq = pc**q_deg
            pq1 = pq * pc
            if pq == pq1:  # pc == 0 or 1: degenerate
                return math.inf
            q_frac = (pq - target_pf) / (pq - pq1)
            if not 0 <= q_frac <= 1:
                return math.inf
            gamma = eta - alpha * beta
            if gamma <= 0:
                return math.inf
            return (q_deg + q_frac) * omega / (beta * gamma)

        if minimize_scalar is not None:
            result = minimize_scalar(
                latency_at, bounds=(beta_lo, beta_hi), method="bounded"
            )
            beta = float(result.x)
        else:
            beta = _golden_section_minimize(latency_at, beta_lo, beta_hi)
        latency = latency_at(beta)
        if not math.isfinite(latency):
            continue
        pc = collision_probability(n_senders, beta, interferers)
        q_frac = (pc**q_degree - target_pf) / (
            pc**q_degree - pc ** (q_degree + 1)
        )
        gamma = eta - alpha * beta
        plan = RedundancyPlan(
            redundancy=q_degree,
            beta=beta,
            gamma=gamma,
            latency=latency,
            pair_latency=omega / (beta * gamma),
            per_beacon_collision_prob=pc,
            failure_rate=failure_rate(
                beta, q_degree, q_frac, n_senders, interferers
            ),
            constraint_binding=True,
        )
        if best is None or latency < best[0].latency:
            best = (plan, q_frac)
    if best is None:
        # No fractional band beats the plain optimum: fall back to q = 0.
        return (
            optimize_redundancy(
                eta, target_pf, n_senders, omega, alpha,
                max_redundancy, interferers,
            ),
            0.0,
        )
    # The q = 0 answer may still win (e.g. slack constraint).
    integer_plan = optimize_redundancy(
        eta, target_pf, n_senders, omega, alpha, max_redundancy, interferers
    )
    if integer_plan.latency < best[0].latency:
        return integer_plan, 0.0
    return best


def self_blocking_failure_probability(
    turnaround_tx_rx: float,
    turnaround_rx_tx: float,
    extra_blocked: float,
    beacons_per_cycle: int,
    listen_time_per_period: float,
) -> float:
    """Equation 31 (Appendix A.5): probability that a discovery attempt
    fails because the receiver's *own* beacon blanks the reception window
    the remote beacon lands in.

    In an optimal (disjoint) tuple, exactly one own beacon overlaps a
    reception window per worst-case latency ``L = M`` beacon gaps; the
    blocked time per overlap is ``d_oTxRx + d_oRxTx + d_a`` out of the
    ``M * sum(d_i)`` of scanning time per ``L``:

    ``Pfail = (d_oTxRx + d_oRxTx + d_a) / (M * sum(d_i))``.
    """
    if beacons_per_cycle <= 0 or listen_time_per_period <= 0:
        raise ValueError("beacons_per_cycle and listen time must be positive")
    blocked = turnaround_tx_rx + turnaround_rx_tx + extra_blocked
    if blocked < 0:
        raise ValueError("blocked time must be non-negative")
    return blocked / (beacons_per_cycle * listen_time_per_period)


def constrained_latency_curve(
    etas: list[float],
    collision_prob: float,
    n_senders: int,
    omega: float,
    alpha: float = 1.0,
    interferers: InterfererRule = "s-1",
) -> list[tuple[float, float, bool]]:
    """The Figure-7 series: for each duty-cycle, the Theorem-5.6 bound under
    the channel-utilization cap derived from a collision-probability limit.

    Returns ``(eta, bound, cap_binding)`` triples, where ``cap_binding``
    marks duty-cycles beyond the kink ``eta > 2 alpha beta_max`` (the
    circles in Figure 7 sit at the kink).
    """
    beta_max = beta_max_for_collision_probability(
        collision_prob, n_senders, interferers
    )
    beta_cap = min(beta_max, 1.0)
    curve: list[tuple[float, float, bool]] = []
    for eta in etas:
        binding = eta > 2 * alpha * beta_cap
        curve.append(
            (eta, bounds.constrained_bound(omega, eta, beta_cap, alpha), binding)
        )
    return curve
