"""Reception-window and beacon sequences (Section 3 of the paper).

A neighbor-discovery protocol is a tuple ``(B_inf, C_inf)`` of an infinite
beacon sequence and an infinite reception-window sequence (Definition 3.3).
Following the paper, the infinite sequences used here are concatenations of
finite periodic *schedules*:

* :class:`ReceptionSchedule` -- a finite sequence ``C`` of reception
  windows ``(t_i, d_i)`` repeated with period ``T_C`` (Definition 3.1).
* :class:`BeaconSchedule` -- a finite sequence ``B`` of beacons at times
  ``tau_i`` with transmission durations ``omega_i`` repeated with period
  ``T_B`` (Definition 3.2; Lemma 5.2 shows optimal infinite beacon
  sequences are repetitive, so this is without loss of optimality).

Both classes compute their duty-cycles per Lemma 3.1 (Equation 2) and can
enumerate their elements over absolute time for the simulator.  Times are
plain numbers; the package convention is **integer microseconds**, under
which all schedule arithmetic is exact.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Sequence, Union

from .intervals import Interval, IntervalSet

Number = Union[int, float]

__all__ = [
    "ReceptionWindow",
    "Beacon",
    "ReceptionSchedule",
    "BeaconSchedule",
    "NDProtocol",
]


@dataclass(frozen=True)
class ReceptionWindow:
    """One reception window ``c_i = (t_i, d_i)``: starts at ``start`` and
    listens for ``duration`` time-units (Definition 3.1)."""

    start: Number
    duration: Number

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"window duration must be positive, got {self.duration!r}")
        if self.start < 0:
            raise ValueError(f"window start must be non-negative, got {self.start!r}")

    @property
    def end(self) -> Number:
        """First instant after the window closes."""
        return self.start + self.duration

    @property
    def interval(self) -> Interval:
        """Half-open interval ``[start, end)`` of listening time."""
        return Interval(self.start, self.end)


@dataclass(frozen=True)
class Beacon:
    """One beacon ``b_i`` transmitted at ``time`` for ``duration`` time-units
    (Definition 3.2: ``tau_i`` and ``omega_i``)."""

    time: Number
    duration: Number

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"beacon duration must be positive, got {self.duration!r}")
        if self.time < 0:
            raise ValueError(f"beacon time must be non-negative, got {self.time!r}")

    @property
    def end(self) -> Number:
        """First instant after the transmission finishes."""
        return self.time + self.duration

    @property
    def interval(self) -> Interval:
        """Half-open interval ``[time, end)`` of air time."""
        return Interval(self.time, self.end)


class ReceptionSchedule:
    """A finite reception-window sequence ``C`` with period ``T_C``.

    The infinite sequence ``C_inf`` is the concatenation ``C C C ...``; the
    time origin of each instance sits at the end of the last window of the
    previous instance (Figure 1a).  Windows must be sorted, pairwise
    non-overlapping, and contained in ``[0, period)``.

    Parameters
    ----------
    windows:
        The reception windows of one period, each with a start offset
        relative to the instance origin.
    period:
        ``T_C``, the time between the ends of two consecutive instances.
    """

    __slots__ = ("_windows", "_period")

    def __init__(self, windows: Sequence[ReceptionWindow], period: Number) -> None:
        windows = tuple(windows)
        if not windows:
            raise ValueError("a reception schedule needs at least one window")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        for earlier, later in zip(windows, windows[1:]):
            if later.start < earlier.end:
                raise ValueError(
                    f"windows overlap or are unsorted: {earlier} then {later}"
                )
        if windows[-1].end > period:
            raise ValueError(
                f"last window ends at {windows[-1].end} after the period {period}"
            )
        self._windows = windows
        self._period = period

    # ------------------------------------------------------------------
    @classmethod
    def single_window(cls, duration: Number, period: Number, start: Number = 0) -> "ReceptionSchedule":
        """The workhorse schedule: one window of ``duration`` per ``period``.

        Theorem 5.3 plus the non-ideal-radio analysis (Appendix A.2/A.3)
        show single-window periods are the most efficient shape, so most
        synthesized optimal schedules use this constructor.
        """
        return cls((ReceptionWindow(start, duration),), period)

    @classmethod
    def from_pairs(
        cls, pairs: Sequence[tuple[Number, Number]], period: Number
    ) -> "ReceptionSchedule":
        """Build from ``(start, duration)`` pairs."""
        return cls(tuple(ReceptionWindow(s, d) for s, d in pairs), period)

    # ------------------------------------------------------------------
    @property
    def windows(self) -> tuple[ReceptionWindow, ...]:
        """The windows of one period, sorted by start time."""
        return self._windows

    @property
    def period(self) -> Number:
        """``T_C`` -- the repetition period."""
        return self._period

    @property
    def n_windows(self) -> int:
        """``n_C = |C|`` -- windows per period."""
        return len(self._windows)

    @property
    def listen_time_per_period(self) -> Number:
        """``sum(d_i)`` -- total listening time in one period."""
        return sum((w.duration for w in self._windows), 0)

    @property
    def duty_cycle(self) -> float:
        """Reception duty-cycle ``gamma = sum(d_i) / T_C`` (Equation 2)."""
        return self.listen_time_per_period / self._period

    def duty_cycle_exact(self) -> Fraction:
        """``gamma`` as an exact fraction (requires integer times)."""
        return Fraction(self.listen_time_per_period) / Fraction(self._period)

    # ------------------------------------------------------------------
    def window_intervals(self) -> IntervalSet:
        """All listening intervals of one period as an :class:`IntervalSet`."""
        return IntervalSet(w.interval for w in self._windows)

    def iter_windows(self, until: Number, phase: Number = 0) -> Iterator[ReceptionWindow]:
        """Enumerate windows on the absolute time axis.

        Yields every window whose start lies in ``[0, until)``; the whole
        schedule is shifted by ``phase`` (the random initial offset between
        two unsynchronized devices).
        """
        for instance in itertools.count():
            base = phase + instance * self._period
            if base >= until:
                return
            emitted = False
            for w in self._windows:
                start = base + w.start
                if start >= until:
                    break
                emitted = True
                yield ReceptionWindow(start, w.duration)
            if not emitted and base + self._period >= until:
                return

    def is_listening(self, time: Number, phase: Number = 0) -> bool:
        """True iff the radio is in a reception window at ``time``."""
        local = (time - phase) % self._period
        for w in self._windows:
            if w.start <= local < w.end:
                return True
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReceptionSchedule):
            return NotImplemented
        return self._windows == other._windows and self._period == other._period

    def __hash__(self) -> int:
        return hash((self._windows, self._period))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReceptionSchedule(n={self.n_windows}, period={self._period}, "
            f"gamma={self.duty_cycle:.6f})"
        )


class BeaconSchedule:
    """A finite beacon sequence ``B`` repeated with period ``T_B``.

    Beacon times are offsets inside one period; the gap from the last
    beacon of one instance wraps around to the first beacon of the next.
    Lemma 5.2: every beacon sequence achieving an optimal latency/duty-cycle
    trade-off is repetitive, so periodic schedules lose no generality for
    bound-attaining protocols.
    """

    __slots__ = ("_beacons", "_period")

    def __init__(self, beacons: Sequence[Beacon], period: Number) -> None:
        beacons = tuple(beacons)
        if not beacons:
            raise ValueError("a beacon schedule needs at least one beacon")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        for earlier, later in zip(beacons, beacons[1:]):
            if later.time < earlier.end:
                raise ValueError(
                    f"beacons overlap or are unsorted: {earlier} then {later}"
                )
        if beacons[-1].time >= period:
            raise ValueError(
                f"last beacon starts at {beacons[-1].time}, beyond the period "
                f"{period}"
            )
        # The last beacon may straddle the period boundary (needed by the
        # Appendix-C construction) but must not run into the next instance's
        # first beacon.
        straddle = beacons[-1].end - period
        if straddle > beacons[0].time:
            raise ValueError(
                f"last beacon wraps {straddle} time-units into the next "
                f"instance and collides with the first beacon at "
                f"{beacons[0].time}"
            )
        self._beacons = beacons
        self._period = period

    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls, n_beacons: int, gap: Number, duration: Number, first_time: Number = 0
    ) -> "BeaconSchedule":
        """``n_beacons`` equally spaced beacons with the given ``gap``.

        The period is ``n_beacons * gap`` so the wrap-around gap equals the
        in-period gaps -- i.e. a perfectly regular beacon train.
        """
        if n_beacons <= 0:
            raise ValueError("need at least one beacon")
        beacons = tuple(
            Beacon(first_time + i * gap, duration) for i in range(n_beacons)
        )
        return cls(beacons, n_beacons * gap)

    @classmethod
    def from_times(
        cls, times: Sequence[Number], period: Number, duration: Number
    ) -> "BeaconSchedule":
        """Build from transmission instants with a common ``duration``."""
        return cls(tuple(Beacon(t, duration) for t in times), period)

    # ------------------------------------------------------------------
    @property
    def beacons(self) -> tuple[Beacon, ...]:
        """The beacons of one period, sorted by time."""
        return self._beacons

    @property
    def period(self) -> Number:
        """``T_B`` -- the repetition period."""
        return self._period

    @property
    def n_beacons(self) -> int:
        """``m_B = |B|`` -- beacons per period."""
        return len(self._beacons)

    @property
    def airtime_per_period(self) -> Number:
        """``sum(omega_i)`` -- total transmission time in one period."""
        return sum((b.duration for b in self._beacons), 0)

    @property
    def duty_cycle(self) -> float:
        """Transmission duty-cycle ``beta = sum(omega_i) / T_B`` (Equation 2).

        ``beta`` equals the channel utilization (Definition 3.5).
        """
        return self.airtime_per_period / self._period

    def duty_cycle_exact(self) -> Fraction:
        """``beta`` as an exact fraction (requires integer times)."""
        return Fraction(self.airtime_per_period) / Fraction(self._period)

    @property
    def gaps(self) -> tuple[Number, ...]:
        """Beacon gaps ``lambda_i = tau_{i+1} - tau_i`` including wrap-around.

        The last entry is the gap from the final beacon of one instance to
        the first beacon of the next, so ``sum(gaps) == period``.
        """
        times = [b.time for b in self._beacons]
        inner = tuple(b - a for a, b in zip(times, times[1:]))
        wrap = self._period - times[-1] + times[0]
        return inner + (wrap,)

    @property
    def mean_gap(self) -> float:
        """Average beacon gap ``lambda = T_B / m_B``."""
        return self._period / self.n_beacons

    @property
    def max_gap(self) -> Number:
        """Largest beacon gap (drives the worst case for one-beacon covers)."""
        return max(self.gaps)

    def max_gap_sum(self, run_length: int) -> Number:
        """Largest sum of ``run_length`` consecutive gaps (cyclically).

        Theorem 5.1: the worst-case latency of a deterministic sequence is
        the largest sum of ``M`` consecutive beacon gaps, so this is the
        quantity an optimal schedule must equalize.
        """
        if run_length <= 0:
            raise ValueError("run_length must be positive")
        gaps = self.gaps
        n = len(gaps)
        if run_length >= n:
            full, rem = divmod(run_length, n)
            base = full * sum(gaps)
            if rem == 0:
                return base
            extended = gaps + gaps
            return base + max(
                sum(extended[i : i + rem]) for i in range(n)
            )
        extended = gaps + gaps
        return max(sum(extended[i : i + run_length]) for i in range(n))

    # ------------------------------------------------------------------
    def iter_beacons(self, until: Number, phase: Number = 0) -> Iterator[Beacon]:
        """Enumerate beacons on the absolute time axis up to ``until``."""
        for instance in itertools.count():
            base = phase + instance * self._period
            if base >= until:
                return
            emitted = False
            for b in self._beacons:
                time = base + b.time
                if time >= until:
                    break
                emitted = True
                yield Beacon(time, b.duration)
            if not emitted and base + self._period >= until:
                return

    def iter_beacons_infinite(
        self, until: Number, phase: Number = 0
    ) -> Iterator[Beacon]:
        """Enumerate the *doubly-infinite* periodic extension on
        ``[0, until)``.

        Unlike :meth:`iter_beacons` (which starts instance 0 at ``phase``),
        this treats ``phase`` as a pure alignment of an always-running
        schedule: beacons exist at ``phase + n * period + tau_i`` for all
        integers ``n``, and those with send time in ``[0, until)`` are
        yielded.  This matches Definition 3.4's model, where both devices
        have been running their sequences since before coming into range.
        """
        reduced = phase % self._period
        instance = -1
        while True:
            base = reduced + instance * self._period
            if base >= until:
                return
            for b in self._beacons:
                time = base + b.time
                if 0 <= time < until:
                    yield Beacon(time, b.duration)
            instance += 1

    def beacon_times(self, count: int, phase: Number = 0) -> list[Number]:
        """The first ``count`` absolute transmission instants."""
        times: list[Number] = []
        for instance in itertools.count():
            base = phase + instance * self._period
            for b in self._beacons:
                times.append(base + b.time)
                if len(times) == count:
                    return times
        raise AssertionError("unreachable")  # pragma: no cover

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BeaconSchedule):
            return NotImplemented
        return self._beacons == other._beacons and self._period == other._period

    def __hash__(self) -> int:
        return hash((self._beacons, self._period))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BeaconSchedule(m={self.n_beacons}, period={self._period}, "
            f"beta={self.duty_cycle:.6f})"
        )


@dataclass(frozen=True)
class NDProtocol:
    """A neighbor-discovery protocol ``(B_inf, C_inf)`` on one device
    (Definition 3.3), together with the power-weighting factor ``alpha``.

    Either sequence may be ``None`` for one-directional roles: a pure
    advertiser has no reception schedule, a pure scanner no beacon
    schedule.
    """

    beacons: BeaconSchedule | None
    reception: ReceptionSchedule | None
    alpha: float = 1.0
    name: str = "nd-protocol"

    def __post_init__(self) -> None:
        if self.beacons is None and self.reception is None:
            raise ValueError("a protocol needs at least one sequence")
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha!r}")

    @property
    def beta(self) -> float:
        """Transmission duty-cycle / channel utilization."""
        return self.beacons.duty_cycle if self.beacons is not None else 0.0

    @property
    def gamma(self) -> float:
        """Reception duty-cycle."""
        return self.reception.duty_cycle if self.reception is not None else 0.0

    @property
    def eta(self) -> float:
        """Total duty-cycle ``eta = alpha * beta + gamma`` (Definition 3.5)."""
        return self.alpha * self.beta + self.gamma

    def hyperperiod(self) -> int:
        """``lcm`` of the device's schedule periods on the integer grid.

        The period after which the device's whole TX+RX pattern repeats
        -- the quantity every sweep/cache layer needs.  Periods are
        coerced with ``int()`` exactly as the historical call sites did;
        use only for integer-microsecond schedules.
        """
        hyper = 1
        if self.beacons is not None:
            hyper = math.lcm(hyper, int(self.beacons.period))
        if self.reception is not None:
            hyper = math.lcm(hyper, int(self.reception.period))
        return hyper

    def sequences_overlap(self, horizon_periods: int = 4) -> bool:
        """Check whether the device's own TX and RX schedules ever collide.

        The paper assumes (Section 5.2, relaxed in Appendix A.5) that
        ``B_inf`` and ``C_inf`` on the same device can be designed to never
        overlap.  This verifies the assumption over the hyperperiod (or a
        truncated horizon for incommensurable periods).
        """
        if self.beacons is None or self.reception is None:
            return False
        from .intervals import lcm  # local import to avoid cycle at module load

        tb, tc = self.beacons.period, self.reception.period
        if isinstance(tb, int) and isinstance(tc, int):
            horizon = lcm(tb, tc)
        else:
            horizon = max(tb, tc) * horizon_periods
        rx = IntervalSet(
            w.interval for w in self.reception.iter_windows(until=horizon)
        )
        for beacon in self.beacons.iter_beacons(until=horizon):
            if not rx.intersection(IntervalSet((beacon.interval,))).is_empty:
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NDProtocol({self.name!r}, beta={self.beta:.6f}, "
            f"gamma={self.gamma:.6f}, eta={self.eta:.6f})"
        )
