"""Slotted-protocol bounds and Table 1 (Section 6 of the paper).

Slotted protocols couple transmission and reception into *slots* of length
``I``: an active slot sends beacons at its boundaries and listens in
between.  The classic result of Zheng et al. [17, 16] says guaranteeing
discovery within ``T`` slots requires ``k >= sqrt(T)`` active slots.  That
is a bound *in slots*; Section 6 converts it into a bound *in time* by
deriving the theoretical lower limit on the slot length, and compares
popular slotted protocols against the fundamental (slotless) bounds.

Implemented here:

* Equation 17/18 -- the slots-to-time transformation and the resulting
  latency/duty-cycle bound for one-beacon slots (full-duplex idealization,
  ``I = omega``).
* Equation 19 -- the same for the two-beacons-per-slot designs of Meng et
  al. [6, 7]: lower in slots, *not* lower in time.
* Equations 20/21 -- the latency/duty-cycle/channel-utilization bound for
  large slots, which *matches* the fundamental Theorem 5.6 whenever the
  channel-utilization cap is binding (``beta_max <= eta / 2 alpha``).
* Table 1 -- worst-case latencies of Diffcodes, Disco, Searchlight-Striped
  and U-Connect as functions of ``(beta, eta)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from .bounds import symmetric_bound

__all__ = [
    "slotted_duty_cycle",
    "slotted_bound_one_beacon",
    "slotted_bound_two_beacons",
    "slotted_channel_utilization_bound",
    "optimal_alpha_two_beacons",
    "table1_diffcodes",
    "table1_disco",
    "table1_searchlight_striped",
    "table1_uconnect",
    "TABLE1_PROTOCOLS",
    "optimality_ratio",
]


def _check_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def slotted_duty_cycle(
    active_slots: int, total_slots: int, slot_length: float, omega: float, alpha: float = 1.0
) -> float:
    """Equation 17: duty-cycle of a slotted protocol with ``k`` active slots
    out of ``T``, slot length ``I`` and one beacon per active slot:

    ``eta = k (I + alpha omega) / (T I)``.
    """
    _check_positive("slot_length", slot_length)
    _check_positive("omega", omega)
    if not 0 < active_slots <= total_slots:
        raise ValueError("need 0 < active_slots <= total_slots")
    return active_slots * (slot_length + alpha * omega) / (total_slots * slot_length)


def slotted_bound_one_beacon(omega: float, eta: float, alpha: float = 1.0) -> float:
    """Equation 18: latency/duty-cycle limit of one-beacon slotted designs.

    Combining ``k >= sqrt(T)`` with the theoretical minimum slot length
    ``I = omega`` (full-duplex radio) gives
    ``L >= omega (1 + 2 alpha + alpha^2) / eta^2``.
    For ``alpha = 1`` this equals the fundamental ``4 omega / eta^2``
    (Theorem 5.5); for any other ``alpha`` it is strictly larger.
    """
    _check_positive("omega", omega)
    _check_positive("eta", eta)
    _check_positive("alpha", alpha)
    return omega * (1 + 2 * alpha + alpha * alpha) / (eta * eta)


def slotted_bound_two_beacons(omega: float, eta: float, alpha: float = 1.0) -> float:
    """Equation 19: the two-beacons-per-slot designs of [6, 7].

    ``L >= omega (1/2 + 2 alpha + 2 alpha^2) / eta^2`` -- lower than
    Equation 18 *in slots* but minimized only at ``alpha = 1/2`` where it
    ties the fundamental bound; elsewhere it is larger in time.
    """
    _check_positive("omega", omega)
    _check_positive("eta", eta)
    _check_positive("alpha", alpha)
    return omega * (0.5 + 2 * alpha + 2 * alpha * alpha) / (eta * eta)


def optimal_alpha_two_beacons() -> float:
    """The TX/RX power ratio minimizing the Equation-19 bound relative to
    the fundamental bound (``alpha = 1/2``), at which both coincide."""
    return 0.5


def slotted_channel_utilization_bound(omega: float, eta: float, beta: float, alpha: float = 1.0) -> float:
    """Equation 21: latency/duty-cycle/channel-utilization bound of slotted
    protocols in the large-slot regime (``I >> omega``):

    ``L >= omega / (eta beta - alpha beta^2)``.

    Identical to Theorem 5.6 whenever the utilization cap binds
    (``beta <= eta / 2 alpha``): slotted protocols can be optimal in busy
    networks, but can never reach the unconstrained optimum.
    """
    _check_positive("omega", omega)
    _check_positive("eta", eta)
    _check_positive("beta", beta)
    _check_positive("alpha", alpha)
    denominator = eta * beta - alpha * beta * beta
    if denominator <= 0:
        raise ValueError(f"infeasible: eta={eta} <= alpha*beta={alpha * beta}")
    return omega / denominator


# ----------------------------------------------------------------------
# Table 1 -- worst-case latencies of popular slotted protocols
# ----------------------------------------------------------------------
def table1_diffcodes(omega: float, eta: float, beta: float, alpha: float = 1.0) -> float:
    """Table 1, Diffcodes [17]: ``L = omega / (eta beta - alpha beta^2)``
    -- difference-set schedules meet the slotted bound exactly."""
    return slotted_channel_utilization_bound(omega, eta, beta, alpha)


def table1_disco(omega: float, eta: float, beta: float, alpha: float = 1.0) -> float:
    """Table 1, Disco [3]: ``L = 8 omega / (eta beta - alpha beta^2)`` --
    the two-prime construction pays an 8x factor over the slotted optimum."""
    return 8 * slotted_channel_utilization_bound(omega, eta, beta, alpha)


def table1_searchlight_striped(
    omega: float, eta: float, beta: float, alpha: float = 1.0
) -> float:
    """Table 1, Searchlight-Striped [5]:
    ``L = 2 omega / (eta beta - alpha beta^2)`` -- anchor/probe slots with
    striping halve Disco's constant twice over but remain 2x off."""
    return 2 * slotted_channel_utilization_bound(omega, eta, beta, alpha)


def table1_uconnect(omega: float, eta: float, beta: float, alpha: float = 1.0) -> float:
    """Table 1, U-Connect [4]:

    ``L = (3 omega + sqrt(omega^2 (8 eta - 8 alpha beta + 9)))^2
    / (8 omega beta eta - 8 omega alpha beta^2)``.
    """
    _check_positive("omega", omega)
    _check_positive("eta", eta)
    _check_positive("beta", beta)
    denominator = 8 * omega * beta * eta - 8 * omega * alpha * beta * beta
    if denominator <= 0:
        raise ValueError(f"infeasible: eta={eta} <= alpha*beta={alpha * beta}")
    radicand = omega * omega * (8 * eta - 8 * alpha * beta + 9)
    numerator = (3 * omega + math.sqrt(radicand)) ** 2
    return numerator / denominator


TABLE1_PROTOCOLS: dict[str, Callable[..., float]] = {
    "Diffcodes": table1_diffcodes,
    "Disco": table1_disco,
    "Searchlight-S": table1_searchlight_striped,
    "U-Connect": table1_uconnect,
}
"""Name -> formula mapping for Table 1, in the paper's row order."""


@dataclass(frozen=True)
class SlotLengthAnalysis:
    """Outcome of the Figure-5 slot-length ablation for one ``I/omega``."""

    slot_length_ratio: float
    """``I / omega``."""
    overlap_success_fraction: float
    """Fraction of overlapping-active-slot alignments in which a packet is
    actually received (Figure 5: 0.5 at ``I = 2 omega`` for half-duplex)."""
    latency_penalty: float
    """Multiplier on the worst-case latency vs. the ``I = omega``
    full-duplex ideal at equal duty-cycle."""


def slot_length_analysis(slot_length_ratio: float) -> SlotLengthAnalysis:
    """Quantify the Figure-5 effect: with a half-duplex radio and slot
    length ``I = r * omega``, two overlapping active slots only yield a
    reception for part of the alignment range.

    The transmitting device sends at the slot start; a beacon is received
    iff it falls entirely inside the part of the remote active slot during
    which the remote radio listens (``I - omega`` of airtime once its own
    leading beacon is done).  The success fraction is
    ``max(I - 2 omega, 0) / I`` -- 0.5 at ``r = 4``, 0 at ``r <= 2`` --
    and at fixed duty-cycle ``eta = k I' / (T I) ~ k / T`` the worst-case
    latency ``T I`` scales linearly with ``I``.
    """
    _check_positive("slot_length_ratio", slot_length_ratio)
    r = slot_length_ratio
    success = max(r - 2.0, 0.0) / r
    return SlotLengthAnalysis(
        slot_length_ratio=r,
        overlap_success_fraction=success,
        latency_penalty=r,
    )


def optimality_ratio(protocol_latency: float, omega: float, eta: float, alpha: float = 1.0) -> float:
    """How far a protocol's worst-case latency sits above the fundamental
    symmetric bound (Theorem 5.5); 1.0 means optimal."""
    return protocol_latency / symmetric_bound(omega, eta, alpha)
