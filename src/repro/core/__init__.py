"""Core theory of the paper: sequences, coverage maps, fundamental bounds,
optimal-schedule synthesis, collision theory and slotted-protocol bounds.
"""

from .bounds import (
    asymmetric_bound,
    constrained_bound,
    coverage_bound,
    DutyCycleSplit,
    duty_cycles_for_latency_unidirectional,
    eta_for_latency_one_way,
    eta_for_latency_symmetric,
    finite_window_bound,
    last_beacon_corrected_bound,
    nonideal_unidirectional_bound,
    one_way_bound,
    optimal_beta_symmetric,
    optimal_split,
    symmetric_bound,
    unidirectional_bound,
)
from .collisions import (
    beta_for_failure_rate,
    self_blocking_failure_probability,
    solve_fractional_redundancy,
    beta_max_for_collision_probability,
    collision_probability,
    constrained_latency_curve,
    failure_rate,
    optimize_redundancy,
    RedundancyPlan,
)
from .coverage import beacon_coverage_set, CoverageMap, minimum_beacons
from .intervals import Interval, IntervalSet, wrap_interval
from .optimal import (
    coprime_stride_near,
    greedy_cover_shifts,
    OptimalDesign,
    plan_unidirectional,
    synthesize_asymmetric,
    synthesize_constrained,
    synthesize_redundant,
    synthesize_symmetric,
    synthesize_unidirectional,
)
from .power import effective_duty_cycles, PowerModel, TYPICAL_RADIOS
from .sequences import (
    Beacon,
    BeaconSchedule,
    NDProtocol,
    ReceptionSchedule,
    ReceptionWindow,
)
from .slotted_bounds import (
    optimality_ratio,
    slot_length_analysis,
    slotted_bound_one_beacon,
    slotted_bound_two_beacons,
    slotted_channel_utilization_bound,
    slotted_duty_cycle,
    TABLE1_PROTOCOLS,
    table1_diffcodes,
    table1_disco,
    table1_searchlight_striped,
    table1_uconnect,
)

__all__ = [
    # sequences
    "Beacon",
    "BeaconSchedule",
    "NDProtocol",
    "ReceptionSchedule",
    "ReceptionWindow",
    # intervals
    "Interval",
    "IntervalSet",
    "wrap_interval",
    # coverage
    "CoverageMap",
    "beacon_coverage_set",
    "minimum_beacons",
    # bounds
    "DutyCycleSplit",
    "asymmetric_bound",
    "constrained_bound",
    "coverage_bound",
    "duty_cycles_for_latency_unidirectional",
    "eta_for_latency_one_way",
    "eta_for_latency_symmetric",
    "finite_window_bound",
    "last_beacon_corrected_bound",
    "nonideal_unidirectional_bound",
    "one_way_bound",
    "optimal_beta_symmetric",
    "optimal_split",
    "symmetric_bound",
    "unidirectional_bound",
    # collisions
    "RedundancyPlan",
    "beta_for_failure_rate",
    "beta_max_for_collision_probability",
    "collision_probability",
    "constrained_latency_curve",
    "failure_rate",
    "optimize_redundancy",
    "self_blocking_failure_probability",
    "solve_fractional_redundancy",
    # optimal synthesis
    "OptimalDesign",
    "coprime_stride_near",
    "greedy_cover_shifts",
    "plan_unidirectional",
    "synthesize_asymmetric",
    "synthesize_constrained",
    "synthesize_redundant",
    "synthesize_symmetric",
    "synthesize_unidirectional",
    # power
    "PowerModel",
    "TYPICAL_RADIOS",
    "effective_duty_cycles",
    # slotted bounds
    "TABLE1_PROTOCOLS",
    "optimality_ratio",
    "slot_length_analysis",
    "slotted_bound_one_beacon",
    "slotted_bound_two_beacons",
    "slotted_channel_utilization_bound",
    "slotted_duty_cycle",
    "table1_diffcodes",
    "table1_disco",
    "table1_searchlight_striped",
    "table1_uconnect",
]
