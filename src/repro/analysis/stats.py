"""Summary statistics for Monte-Carlo discovery experiments.

Deterministic sweeps need no statistics (they are exact), but the
collision and jitter experiments are stochastic: these helpers compute
quantiles, Wilson confidence intervals for discovery/failure rates, and
compact latency summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["LatencySummary", "summarize_latencies", "wilson_interval"]


@dataclass(frozen=True)
class LatencySummary:
    """Five-number-plus summary of a latency sample (microseconds)."""

    count: int
    minimum: float
    median: float
    p90: float
    p99: float
    maximum: float
    mean: float

    def row(self) -> list:
        """As a table row: count, min, median, p90, p99, max, mean."""
        return [
            self.count,
            self.minimum,
            self.median,
            self.p90,
            self.p99,
            self.maximum,
            self.mean,
        ]


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank quantile on a pre-sorted sample."""
    if not ordered:
        raise ValueError("empty sample")
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def summarize_latencies(latencies: Sequence[float]) -> LatencySummary:
    """Summarize a non-empty latency sample."""
    if not latencies:
        raise ValueError("empty latency sample")
    ordered = sorted(latencies)
    return LatencySummary(
        count=len(ordered),
        minimum=ordered[0],
        median=_quantile(ordered, 0.5),
        p90=_quantile(ordered, 0.9),
        p99=_quantile(ordered, 0.99),
        maximum=ordered[-1],
        mean=sum(ordered) / len(ordered),
    )


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Robust for small samples and extreme rates -- exactly the regime of
    failure-rate measurements like Appendix B's ``Pf = 0.05%``.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    # Normal quantile for the given two-sided confidence.
    z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}.get(confidence)
    if z is None:
        raise ValueError("supported confidence levels: 0.90, 0.95, 0.99")
    p_hat = successes / trials
    denom = 1 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, center - margin), min(1.0, center + margin))
