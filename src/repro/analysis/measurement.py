"""Measured worst-case latencies of configured protocols.

One tested entry point for what the benchmarks and examples otherwise
re-implement: sweep a protocol pair over phase offsets (uniform grid by
default; slot-aligned deadlock slivers optionally excluded, see
EXPERIMENTS.md on the Figure-5 effect) and report the measured worst
case together with the protocol's own claim and the range-entry-adjusted
value the bounds speak about.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..protocols.base import PairProtocol, Role
from ..simulation.analytic import ReceptionModel, sweep_offsets, SweepReport

__all__ = ["ProtocolMeasurement", "measure_pair_worst_case"]


@dataclass(frozen=True)
class ProtocolMeasurement:
    """Outcome of measuring one protocol configuration."""

    name: str
    eta: float
    beta: float
    claimed_worst_case: float | None
    """The protocol's own analytic guarantee (us), if any."""
    measured_worst_packet: int | None
    """Worst first-beacon-in-range -> first-success latency (us)."""
    measured_full_worst_case: float | None
    """Measured worst plus one maximum beacon gap: the Definition-3.4
    range-entry convention the bounds use (us)."""
    failures: int
    offsets_evaluated: int
    report: SweepReport

    @property
    def meets_claim(self) -> bool | None:
        """Whether the measurement stayed within the protocol's claim
        (``None`` when the protocol makes no deterministic claim)."""
        if self.claimed_worst_case is None:
            return None
        if self.measured_worst_packet is None:
            return False
        return self.measured_worst_packet <= self.claimed_worst_case


def measure_pair_worst_case(
    protocol: PairProtocol,
    n_offsets: int = 512,
    horizon_multiple: int = 3,
    model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    exclude_aligned: int = 0,
    horizon: int | None = None,
) -> ProtocolMeasurement:
    """Uniform phase-offset sweep of a configured pair protocol.

    ``exclude_aligned`` drops offsets within that many microseconds of a
    slot/schedule boundary for protocols exposing a ``slot_length``
    attribute -- the measure-``2 omega/I`` self-jamming sliver of
    identical half-duplex schedules.  ``horizon`` defaults to
    ``horizon_multiple`` times the protocol's claim (or the schedule
    period when the protocol makes no claim).
    """
    device_e = protocol.device(Role.E)
    device_f = protocol.device(Role.F)
    period = 1
    if device_e.beacons is not None:
        period = max(period, int(device_e.beacons.period))
    if device_f.reception is not None:
        period = max(period, int(device_f.reception.period))
    claim = protocol.predicted_worst_case_latency()
    if horizon is None:
        base = claim if claim is not None else period
        horizon = int(base * horizon_multiple)
    step = max(1, period // n_offsets)
    offsets = range(0, period, step)
    if exclude_aligned and hasattr(protocol, "slot_length"):
        slot = protocol.slot_length
        offsets = [
            off
            for off in offsets
            if exclude_aligned <= off % slot <= slot - exclude_aligned
        ]
    report = sweep_offsets(
        device_e, device_f, offsets, horizon, model, turnaround
    )
    max_gap = (
        int(device_e.beacons.max_gap) if device_e.beacons is not None else 0
    )
    return ProtocolMeasurement(
        name=protocol.info().name,
        eta=device_e.eta,
        beta=device_e.beta,
        claimed_worst_case=claim,
        measured_worst_packet=report.worst_one_way,
        measured_full_worst_case=(
            None
            if report.worst_one_way is None
            else report.worst_one_way + max_gap
        ),
        failures=report.failures,
        offsets_evaluated=report.offsets_evaluated,
        report=report,
    )
