"""Analysis layer: optimality gaps, Pareto fronts, statistics and table
rendering for the benchmark harness."""

from .energy import energy_per_discovery_curve, EnergyPoint, protocol_energy_table, ProtocolEnergy
from .measurement import measure_pair_worst_case, ProtocolMeasurement
from .optimality import gap_for_protocol, gap_table_rows, OptimalityGap
from .pareto import front_distance, pareto_front, ParetoPoint
from .stats import LatencySummary, summarize_latencies, wilson_interval
from .tables import format_seconds, format_table, format_value, rows_from_store, write_csv
from .visualize import render_campaign_status, render_coverage_map, render_schedule

__all__ = [
    "LatencySummary",
    "OptimalityGap",
    "ParetoPoint",
    "format_seconds",
    "format_table",
    "format_value",
    "front_distance",
    "gap_for_protocol",
    "gap_table_rows",
    "measure_pair_worst_case",
    "EnergyPoint",
    "ProtocolEnergy",
    "energy_per_discovery_curve",
    "protocol_energy_table",
    "ProtocolMeasurement",
    "pareto_front",
    "render_campaign_status",
    "render_coverage_map",
    "render_schedule",
    "summarize_latencies",
    "wilson_interval",
    "rows_from_store",
    "write_csv",
]
