"""Energy-to-discovery analysis.

The paper's motivation is energy: duty-cycle is a proxy for average
power, and the latency bounds translate into *energy per guaranteed
discovery* -- the metric a battery budget actually cares about.  For an
ideal radio, ``E = P_avg * L`` is minimized exactly on the paper's
Pareto front; for real radios the Appendix-A.2 overheads shift the
optimum toward fewer, longer reception windows.

:func:`energy_per_discovery_curve` maps a duty-cycle sweep to worst-case
energy per discovery (note it *decreases* with duty-cycle: spending
power faster shortens the wait more than it raises the rate -- the
reason ND budgets are latency-driven, not energy-driven), and
:func:`protocol_energy_table` compares configured protocols on one
radio profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bounds import symmetric_bound
from ..core.power import effective_duty_cycles, PowerModel
from ..protocols.base import PairProtocol, Role

__all__ = [
    "EnergyPoint",
    "energy_per_discovery_curve",
    "ProtocolEnergy",
    "protocol_energy_table",
]


@dataclass(frozen=True)
class EnergyPoint:
    """Worst-case energy accounting at one duty-cycle."""

    eta: float
    latency_us: float
    average_power_mw: float
    energy_uj: float
    """Worst-case energy per discovery in microjoules (mW x us = nJ/1000)."""


def energy_per_discovery_curve(
    etas: list[float],
    radio: PowerModel,
    omega: float = 32,
    alpha: float | None = None,
) -> list[EnergyPoint]:
    """Worst-case energy per discovery along the fundamental Pareto front.

    Uses Theorem 5.5 at each duty-cycle with the radio's own
    ``alpha = Ptx/Prx`` (overridable) and the optimal split for the
    power mix.
    """
    if alpha is None:
        alpha = radio.alpha
    points = []
    for eta in etas:
        latency = symmetric_bound(omega, eta, alpha)
        beta = eta / (2 * alpha)
        gamma = eta / 2
        power = radio.average_power(min(beta, 1.0), min(gamma, 1.0))
        points.append(
            EnergyPoint(
                eta=eta,
                latency_us=latency,
                average_power_mw=power,
                energy_uj=power * latency / 1_000,
            )
        )
    return points


@dataclass(frozen=True)
class ProtocolEnergy:
    """Energy accounting of one configured protocol on one radio."""

    name: str
    eta_nominal: float
    beta_effective: float
    gamma_effective: float
    average_power_mw: float
    worst_case_latency_us: float | None
    energy_uj: float | None
    """Worst-case energy per guaranteed discovery (``None`` if the
    protocol offers no guarantee)."""


def protocol_energy_table(
    protocols: list[PairProtocol],
    radio: PowerModel,
    role: Role = Role.E,
) -> list[ProtocolEnergy]:
    """Compare protocols by worst-case energy per discovery on ``radio``.

    Uses the Appendix-A.2 *effective* duty-cycles (switching overheads
    included), so protocols with many short windows or many beacons pay
    their real price -- the comparison the nominal duty-cycle hides.
    """
    rows = []
    for protocol in protocols:
        device = protocol.device(role)
        beta_eff, gamma_eff = effective_duty_cycles(
            radio, device.beacons, device.reception
        )
        power = radio.average_power(min(beta_eff, 1.0), min(gamma_eff, 1.0))
        latency = protocol.predicted_worst_case_latency()
        rows.append(
            ProtocolEnergy(
                name=protocol.info().name,
                eta_nominal=device.eta,
                beta_effective=beta_eff,
                gamma_effective=gamma_eff,
                average_power_mw=power,
                worst_case_latency_us=latency,
                energy_uj=None if latency is None else power * latency / 1_000,
            )
        )
    rows.sort(key=lambda r: (r.energy_uj is None, r.energy_uj))
    return rows
