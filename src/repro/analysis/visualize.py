"""ASCII visualization of coverage maps and schedules.

The paper's Figures 3, 8, 9 and 11 are coverage-map drawings; this module
renders the same pictures in monospace text so schedules can be inspected
in a terminal or embedded in docs/tests.  Each row ``Omega_i`` shows which
initial offsets beacon ``i`` covers; the footer aggregates coverage
multiplicity (``.`` = uncovered, digits = covered n times, ``+`` = >9).
"""

from __future__ import annotations

from ..core.coverage import CoverageMap
from ..core.sequences import BeaconSchedule, ReceptionSchedule

__all__ = ["render_campaign_status", "render_coverage_map", "render_schedule"]


def render_coverage_map(
    cover: CoverageMap, width: int = 72, max_rows: int = 24
) -> str:
    """Render a coverage map as Figure-3-style text.

    Each column is one ``T_C / width`` bucket of initial offsets; a
    bucket is marked covered in a row if any of its offsets is covered by
    that beacon (so narrow images never disappear).
    """
    if width < 8:
        raise ValueError(f"width must be >= 8, got {width}")
    period = cover.reception.period
    bucket = period / width

    def row_line(offsets) -> str:
        cells = []
        for i in range(width):
            lo, hi = i * bucket, (i + 1) * bucket
            covered = any(
                iv.start < hi and iv.end > lo for iv in offsets.intervals
            )
            cells.append("#" if covered else " ")
        return "".join(cells)

    lines = [
        f"coverage map: {cover.n_beacons} beacons vs T_C = {period} "
        f"({'deterministic' if cover.is_deterministic() else 'NOT deterministic'}, "
        f"{'disjoint' if cover.is_disjoint() else 'redundant'})",
        f"offset 0 {'-' * (width - 16)} T_C",
    ]
    shown = min(cover.n_beacons, max_rows)
    for index in range(shown):
        shift = cover.beacon_shifts[index]
        lines.append(f"{row_line(cover.row(index))}  O{index + 1} (+{shift})")
    if shown < cover.n_beacons:
        lines.append(f"... {cover.n_beacons - shown} more rows elided ...")

    # Multiplicity footer.
    pieces = cover.multiplicity()
    footer = []
    for i in range(width):
        lo, hi = i * bucket, (i + 1) * bucket
        depth = 0
        for interval, count in pieces:
            if interval.start < hi and interval.end > lo:
                depth = max(depth, count)
        footer.append("." if depth == 0 else (str(depth) if depth <= 9 else "+"))
    lines.append("".join(footer) + "  Lambda*")
    return "\n".join(lines)


def render_schedule(
    beacons: BeaconSchedule | None,
    reception: ReceptionSchedule | None,
    span: int | None = None,
    width: int = 72,
) -> str:
    """Render one device's schedules on a shared time axis.

    ``!`` marks beacon transmissions, ``=`` reception windows, ``X``
    instants where both overlap (the Appendix-A.5 self-blocking).
    """
    if beacons is None and reception is None:
        raise ValueError("nothing to render")
    if span is None:
        span = max(
            int(beacons.period) if beacons is not None else 0,
            int(reception.period) if reception is not None else 0,
        )
    bucket = span / width
    cells = []
    for i in range(width):
        lo, hi = i * bucket, (i + 1) * bucket
        has_tx = beacons is not None and any(
            b.time < hi and b.end > lo for b in beacons.iter_beacons(until=span + 1)
        )
        has_rx = reception is not None and any(
            w.start < hi and w.end > lo
            for w in reception.iter_windows(until=span + 1)
        )
        if has_tx and has_rx:
            cells.append("X")
        elif has_tx:
            cells.append("!")
        elif has_rx:
            cells.append("=")
        else:
            cells.append(".")
    header = f"0 {'-' * (width - 12)} {span} us"
    return header + "\n" + "".join(cells)


def render_campaign_status(manifest: dict, width: int = 64) -> str:
    """Render a campaign manifest (see
    :class:`repro.campaign.CampaignRunner`) as an ASCII progress view.

    One character per lattice entry, in expansion order: ``=`` store
    hit, ``#`` executed, ``X`` failed, ``.`` pending/skipped; long
    campaigns wrap at ``width`` columns.
    """
    entries = manifest.get("entries", [])
    marks = []
    for record in entries:
        status = record.get("status")
        if status == "failed":
            marks.append("X")
        elif status != "done":
            marks.append(".")
        elif record.get("source") == "hit":
            marks.append("=")
        else:
            marks.append("#")
    bar = "".join(marks)
    lines = [
        f"campaign {manifest.get('campaign', '?')!r}: "
        f"{sum(1 for m in marks if m in '#=')}/{len(entries)} done "
        f"({marks.count('#')} executed, {marks.count('=')} hits, "
        f"{marks.count('X')} failed)"
        + ("" if manifest.get("complete") else "  [incomplete]"),
    ]
    for start in range(0, len(bar), max(8, width)):
        lines.append(bar[start:start + max(8, width)])
    return "\n".join(lines)
