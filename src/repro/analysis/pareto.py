"""Pareto-front utilities over the (duty-cycle, latency) plane.

The paper's central object is the Pareto front of achievable
``(eta, L)`` points -- the fundamental bounds *are* that front.  These
helpers extract empirical fronts from measured protocol configurations
and quantify their distance to the theoretical front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.bounds import symmetric_bound

__all__ = ["ParetoPoint", "pareto_front", "front_distance"]


@dataclass(frozen=True)
class ParetoPoint:
    """One achievable operating point of some protocol configuration."""

    eta: float
    latency: float
    label: str = ""

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weak Pareto dominance: no worse in both metrics, better in one."""
        return (
            self.eta <= other.eta
            and self.latency <= other.latency
            and (self.eta < other.eta or self.latency < other.latency)
        )


def pareto_front(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """Non-dominated subset, sorted by increasing duty-cycle.

    Ties on both coordinates keep the first occurrence.
    """
    candidates = sorted(points, key=lambda p: (p.eta, p.latency))
    front: list[ParetoPoint] = []
    best_latency = float("inf")
    for point in candidates:
        if point.latency < best_latency:
            front.append(point)
            best_latency = point.latency
    return front


def front_distance(
    points: Iterable[ParetoPoint], omega: float, alpha: float = 1.0
) -> list[tuple[ParetoPoint, float]]:
    """For each point, its latency ratio to the fundamental symmetric
    bound at the same duty-cycle (Theorem 5.5): the vertical distance to
    the theoretical Pareto front.  1.0 means the point *is* on the front.
    """
    return [
        (p, p.latency / symmetric_bound(omega, p.eta, alpha)) for p in points
    ]
