"""Plain-text table rendering and CSV emission for the benchmark harness.

The paper's figures are line plots and its tables are latency formulas;
without a plotting stack in the offline environment, every benchmark
prints the underlying series as an aligned text table (the same rows a
plot would show) and optionally writes a CSV next to it for external
plotting.  Numbers are formatted with engineering-friendly precision.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Any, Iterable, Sequence

__all__ = ["format_table", "write_csv", "format_value", "format_seconds"]


def format_value(value: Any, precision: int = 4) -> str:
    """Human-friendly scalar formatting: significant digits for floats,
    plain text for the rest."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if math.isinf(value) or math.isnan(value):
            return str(value)
        magnitude = abs(value)
        if 1e-3 <= magnitude < 1e7:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}e}"
    return str(value)


def format_seconds(us: float | None) -> str:
    """Format a microsecond quantity with an adaptive unit."""
    if us is None:
        return "-"
    if us < 1_000:
        return f"{us:.0f} us"
    if us < 1_000_000:
        return f"{us / 1_000:.3g} ms"
    return f"{us / 1_000_000:.4g} s"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render an aligned monospace table."""
    rendered_rows = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
) -> Path:
    """Write rows to a CSV file, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(["" if cell is None else cell for cell in row])
    return path


def _payload_path(payload: Any, path: str) -> Any:
    """Resolve a dotted path (mapping keys, integer list indices) inside
    a result payload; missing segments resolve to ``None``."""
    node = payload
    for key in path.split("."):
        if isinstance(node, dict) and key in node:
            node = node[key]
        elif (
            isinstance(node, (list, tuple))
            and key.lstrip("-").isdigit()
            and -len(node) <= int(key) < len(node)
        ):
            node = node[int(key)]
        else:
            return None
    return node


def rows_from_store(store, runs, columns: Sequence[str]) -> list[list[Any]]:
    """Build table rows straight from a content-addressed result store.

    ``runs`` is an iterable of ``(verb, spec)`` pairs (a
    :class:`~repro.api.RunSpec` or its mapping form); ``columns`` are
    dotted paths into the stored result payload (list indices allowed:
    ``"eta.0"``).  Each run becomes one row; runs missing from the
    store yield all-``None`` rows, so a partially-populated campaign
    still renders.  No sweep ever executes here -- this is the
    store-fed path behind table regeneration.
    """
    rows = []
    for verb, spec in runs:
        result = store.get(store.fingerprint(verb, spec))
        if result is None:
            rows.append([None] * len(columns))
        else:
            rows.append(
                [_payload_path(result.payload, column) for column in columns]
            )
    return rows
