"""Optimality-gap analysis: how far protocols sit above the bounds.

Section 6 of the paper classifies existing protocols by comparing their
worst-case latency against the fundamental bounds at equal duty-cycle
(and, where relevant, equal channel utilization).  This module computes
those gap ratios for arbitrary configured protocols -- both from their
analytic latency claims and from measured (simulated) worst cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bounds import constrained_bound, symmetric_bound
from ..core.sequences import NDProtocol
from ..protocols.base import PairProtocol, Role

__all__ = ["OptimalityGap", "gap_for_protocol", "gap_table_rows"]


@dataclass(frozen=True)
class OptimalityGap:
    """A protocol's standing relative to the fundamental bounds."""

    name: str
    eta: float
    beta: float
    omega: float
    latency: float
    """Worst-case latency used for the comparison (us)."""
    bound_unconstrained: float
    """Theorem 5.5 at this protocol's ``eta`` (us)."""
    bound_constrained: float
    """Theorem 5.6 at this protocol's ``(eta, beta)`` -- treating the
    protocol's own channel utilization as the cap (us)."""

    @property
    def ratio_unconstrained(self) -> float:
        """Latency over the unconstrained bound; 1.0 is optimal."""
        return self.latency / self.bound_unconstrained

    @property
    def ratio_constrained(self) -> float:
        """Latency over the utilization-matched bound; the metric in which
        Diffcodes are optimal (Table 1)."""
        return self.latency / self.bound_constrained


def gap_for_protocol(
    protocol: PairProtocol,
    omega: float,
    alpha: float = 1.0,
    measured_latency: float | None = None,
    role: Role = Role.E,
) -> OptimalityGap:
    """Gap ratios for a configured protocol.

    Uses ``measured_latency`` when provided (e.g. from a simulation
    sweep), otherwise the protocol's own analytic worst-case claim.
    Raises ``ValueError`` for protocols without any deterministic bound.
    """
    device: NDProtocol = protocol.device(role)
    latency = (
        measured_latency
        if measured_latency is not None
        else protocol.predicted_worst_case_latency()
    )
    if latency is None:
        raise ValueError(
            f"{protocol.info().name} offers no deterministic latency"
        )
    eta = device.eta
    beta = device.beta
    return OptimalityGap(
        name=protocol.info().name,
        eta=eta,
        beta=beta,
        omega=omega,
        latency=latency,
        bound_unconstrained=symmetric_bound(omega, eta, alpha),
        bound_constrained=constrained_bound(
            omega, eta, beta_max=max(beta, 1e-12), alpha=alpha
        ),
    )


def gap_table_rows(gaps: list[OptimalityGap]) -> list[list]:
    """Rows for :func:`repro.analysis.tables.format_table`, Table-1 style."""
    return [
        [
            g.name,
            g.eta,
            g.beta,
            g.latency / 1e6,
            g.bound_unconstrained / 1e6,
            g.ratio_unconstrained,
            g.ratio_constrained,
        ]
        for g in sorted(gaps, key=lambda g: g.ratio_constrained)
    ]
