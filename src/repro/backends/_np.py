"""Import-guard shim for the *optional* NumPy dependency.

NumPy is an extra (``pip install repro-nd[fast]``), never a hard
requirement: every module that can vectorize imports ``np`` from here
and degrades gracefully when it is ``None``.  Consumers must read
``_np.np`` **at call time** (not bind it at import time) so tests can
simulate NumPy-less environments by monkeypatching this module -- the
same discipline keeps the pure-python fallback path honest on machines
that do have NumPy installed.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised via both CI legs
    import numpy as np
except ImportError:  # pragma: no cover - the no-numpy CI leg
    np = None  # type: ignore[assignment]


def have_numpy() -> bool:
    """Is NumPy importable right now (honours monkeypatched ``np``)?"""
    return np is not None


def numpy_version() -> str | None:
    """The installed NumPy version, or ``None`` without NumPy."""
    return None if np is None else str(np.__version__)
