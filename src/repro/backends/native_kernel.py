"""Native compiled sweep kernel: Numba-jitted per-lane discovery loops.

The fourth kernel tier (``auto`` resolution order: ``native`` ->
``numpy`` -> ``python``).  Where the numpy kernel batches one beacon
candidate across all unresolved offsets per step -- paying vector
dispatch on arrays that shrink as offsets resolve -- this backend
compiles the whole per-lane discovery loop with ``numba.njit
(cache=True)`` over the *same* int64 pattern/schedule arrays the
shared-memory wire format already provides, so each lane runs the
reference enumeration at C speed with zero per-candidate dispatch.

Bit-identity to the ``python`` reference is preserved by splitting each
lane at its *boot-safe instance*: the smallest beacon instance from
which every candidate satisfies ``t >= threshold`` (the boot threshold
below which the periodic pattern is not translation-invariant).
Candidates before it -- a handful of instances at most, since the
threshold is one beacon length plus the turnaround -- run through the
exact :meth:`repro.parallel.cache.ListeningCache.packet_heard` scalar
path in the driver, exactly like the reference; everything at or after
it is pattern-decidable and runs inside the compiled kernel.  The
kernel replicates the reference's candidate order, the ``0 <= t <
horizon`` validity window, the ``base >= horizon`` termination test and
the three reception-model predicates verbatim.

Inside the compiled loop the kernel applies the incremental
cross-offset formulation of :mod:`repro.backends.incremental` serially
per lane: the decode residue advances by the candidate delta shared
across the pattern, the segment index walks forward past crossed
boundaries (amortized O(1) per candidate), and only residues that wrap
the hyperperiod re-bisect.  ``NativeBackend(use_incremental=False)`` is
the escape hatch that re-bisects every candidate instead, for benching
the incremental formulation against plain binary search.

Batches that miss the vectorization preconditions delegate to the
``python`` reference wholesale (same gate as the numpy kernel);
directions the compiled kernel cannot take (empty pattern, packets
longer than the hyperperiod) fall back to the numpy batch kernel,
which handles them per element.  Without Numba the module still
imports -- :func:`repro.backends._numba.jit_or_pyfunc` leaves the
kernels as plain Python functions, so the equivalence tests can pin the
exact arithmetic anywhere -- but :class:`NativeBackend` itself reports
unavailable and ``auto`` resolves to ``numpy``.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.sequences import NDProtocol
from ..parallel.cache import get_listening_cache, ListeningCache
from ..simulation.analytic import DiscoveryOutcome, ReceptionModel
from . import _np, _numba
from .base import (
    BackendUnavailable,
    CriticalSetTooLarge,
    get_backend,
    SweepBackend,
    SweepParams,
)
from .numpy_kernel import (
    _BITMAP_MAX_HYPER,
    _direction_vectorizable,
    _INT_BOUND,
    NumpyBackend,
)

__all__ = ["NativeBackend", "first_discovery_native"]

_MODEL_CODES = {
    ReceptionModel.POINT: 0,
    ReceptionModel.ANY_OVERLAP: 1,
    ReceptionModel.CONTAINMENT: 2,
}


@_numba.jit_or_pyfunc
def _first_discovery_lanes(
    reduced,
    rx_phases,
    start_instance,
    taus,
    durations,
    period,
    starts,
    ends,
    hyper,
    horizon,
    model_code,
    use_incremental,
    result,
):
    """Per-lane discovery from each lane's boot-safe instance onward.

    Lanes already resolved by the driver's exact boot scan (``result !=
    -2``) are skipped.  Every candidate seen here satisfies ``t >=
    threshold`` by construction of ``start_instance``, so the periodic
    pattern answers every decode query.
    """
    n_segments = starts.shape[0]
    n_taus = taus.shape[0]
    for k in range(reduced.shape[0]):
        if result[k] != -2:
            continue
        reduced_k = reduced[k]
        delta_k = reduced_k - rx_phases[k]
        instance = start_instance[k]
        res = -2
        have_state = False
        lo = 0
        idx = -1
        c_last = 0
        while res == -2:
            base = reduced_k + instance * period
            if base >= horizon:
                res = -1
                break
            for j in range(n_taus):
                t = base + taus[j]
                if t < 0 or t >= horizon:
                    continue
                c = instance * period + taus[j]
                if use_incremental and have_state:
                    d_c = (c - c_last) % hyper
                    lo += d_c
                    if lo >= hyper:
                        # Wrapped past the hyperperiod: re-bisect.
                        lo -= hyper
                        a = 0
                        b = n_segments
                        while a < b:
                            m = (a + b) // 2
                            if starts[m] <= lo:
                                a = m + 1
                            else:
                                b = m
                        idx = a - 1
                    else:
                        # Walk past the boundaries the delta crossed --
                        # usually none or one.
                        while idx + 1 < n_segments and starts[idx + 1] <= lo:
                            idx += 1
                else:
                    lo = (c + delta_k) % hyper
                    a = 0
                    b = n_segments
                    while a < b:
                        m = (a + b) // 2
                        if starts[m] <= lo:
                            a = m + 1
                        else:
                            b = m
                    idx = a - 1
                    have_state = True
                c_last = c
                duration = durations[j]
                covers_lo = idx >= 0 and ends[idx] > lo
                if model_code == 0:  # POINT
                    heard = covers_lo
                elif model_code == 1:  # ANY_OVERLAP
                    heard = covers_lo or (
                        idx + 1 < n_segments and starts[idx + 1] < lo + duration
                    )
                else:  # CONTAINMENT: one segment spans the packet
                    heard = idx >= 0 and ends[idx] >= lo + duration
                if heard:
                    res = t
                    break
            instance += 1
        result[k] = res


@_numba.jit_or_pyfunc
def _scatter_critical(mask, taus, bounds, sign, hyper):
    """Scatter every breakpoint and its one-sided-limit neighbours onto
    the hyperperiod dedup mask (the reference's double loop, compiled)."""
    n_taus = taus.shape[0]
    for bi in range(bounds.shape[0]):
        bound = bounds[bi]
        for ti in range(n_taus):
            base = (sign * (bound - taus[ti])) % hyper
            mask[base] = True
            prev = base - 1
            if prev < 0:
                prev += hyper
            mask[prev] = True
            nxt = base + 1
            if nxt >= hyper:
                nxt -= hyper
            mask[nxt] = True


def first_discovery_native(
    transmitter: NDProtocol,
    cache: ListeningCache,
    tx_phases,
    rx_phases,
    horizon: int,
    model: ReceptionModel,
    use_incremental: bool = True,
):
    """First-discovery times for every phase pair (``-1``: none), or
    ``None`` when the compiled kernel cannot take this direction (empty
    pattern, or packets longer than the hyperperiod).

    Drop-in for the numpy kernel's ``_first_discovery_batch``: same
    int64 inputs, same candidate order, bit-identical output array.
    Runs un-jitted (plain Python) when Numba is absent, so equivalence
    tests can exercise the exact kernel arithmetic anywhere.
    """
    np = _np.np
    schedule = transmitter.beacons
    period = schedule.period
    pattern = [(int(b.time), int(b.duration)) for b in schedule.beacons]
    starts, ends = cache.pattern_arrays()
    n_segments = int(starts.size)
    hyper = cache.hyper
    if n_segments == 0 or any(d > hyper for _, d in pattern):
        return None
    threshold = cache.threshold
    taus = np.asarray([t for t, _ in pattern], dtype=np.int64)
    durations = np.asarray([d for _, d in pattern], dtype=np.int64)
    min_tau = int(taus.min())
    max_tau = int(taus.max())

    result = np.full(int(tx_phases.size), -2, dtype=np.int64)
    reduced = tx_phases % period
    # Boot-safe instance per lane: smallest i with
    # reduced + i*period + min_tau >= threshold (ceil division), never
    # below the reference's starting instance -1.  From there on every
    # candidate is pattern-decidable.
    start_instance = np.maximum(
        -((reduced - (threshold - min_tau)) // period), -1
    )
    # Lanes whose pre-boot instances contain at least one candidate in
    # [0, horizon) need the exact scalar scan first; the rest start the
    # compiled loop directly (instance -1 is all-negative for them).
    needs_exact = (start_instance > 0) | (
        (start_instance == 0) & (reduced - period + max_tau >= 0)
    )
    if bool(needs_exact.any()):
        heard_exact = cache.packet_heard
        for k in np.flatnonzero(needs_exact):
            reduced_k = int(reduced[k])
            rx_k = int(rx_phases[k])
            stop = int(start_instance[k])
            res = -2
            instance = -1
            while instance < stop and res == -2:
                base = reduced_k + instance * period
                if base >= horizon:
                    res = -1
                    break
                for tau, duration in pattern:
                    t = base + tau
                    if 0 <= t < horizon and heard_exact(
                        rx_k, t, t + duration, model
                    ):
                        res = t
                        break
                instance += 1
            if res != -2:
                result[k] = res
    _first_discovery_lanes(
        reduced,
        rx_phases,
        start_instance,
        taus,
        durations,
        period,
        starts,
        ends,
        hyper,
        horizon,
        _MODEL_CODES[model],
        use_incremental,
        result,
    )
    return result


class NativeBackend(SweepBackend):
    """The compiled kernel behind ``backend="native"``."""

    name = "native"

    def __init__(self, use_incremental: bool = True) -> None:
        if _numba.numba is None or _np.np is None:
            raise BackendUnavailable(
                "Numba is not importable; install the [native] extra or "
                "select backend='numpy'/'python'"
            )
        # Escape hatch mirroring NumpyBackend's: False re-bisects every
        # candidate instead of advancing the incremental decode state.
        self.use_incremental = use_incremental
        self._numpy = NumpyBackend(use_incremental=use_incremental)

    @classmethod
    def available(cls) -> bool:
        # NumPy is load-bearing (array plumbing), so simulated
        # NumPy-less environments disable the native tier too.
        return _numba.numba is not None and _np.np is not None

    def evaluate_offsets_batch(
        self, params: SweepParams, offsets: Sequence[int]
    ) -> list[DiscoveryOutcome]:
        np = _np.np
        if np is None:  # pragma: no cover - registration guards this
            raise BackendUnavailable("NumPy disappeared after registration")
        offsets = list(offsets)
        if not offsets:
            return []
        protocol_e, protocol_f = params.protocol_e, params.protocol_f
        cache_e = get_listening_cache(protocol_e, params.turnaround)
        cache_f = get_listening_cache(protocol_f, params.turnaround)
        vectorizable = (
            type(params.horizon) is int
            and params.horizon < _INT_BOUND
            and all(
                type(o) is int and -_INT_BOUND < o < _INT_BOUND
                for o in offsets
            )
            and _direction_vectorizable(protocol_e, protocol_f, cache_f)
            and _direction_vectorizable(protocol_f, protocol_e, cache_e)
        )
        if not vectorizable:
            return get_backend("python").evaluate_offsets_batch(
                params, offsets
            )
        offset_vec = np.asarray(offsets, dtype=np.int64)
        zero_vec = np.zeros(len(offsets), dtype=np.int64)
        e_by_f = None
        if protocol_e.beacons is not None and protocol_f.reception is not None:
            vec = first_discovery_native(
                protocol_e, cache_f, zero_vec, offset_vec,
                params.horizon, params.model, self.use_incremental,
            )
            if vec is None:
                vec = self._numpy._first_discovery_batch(
                    protocol_e, cache_f, zero_vec, offset_vec,
                    params.horizon, params.model,
                )
            e_by_f = vec.tolist()
        f_by_e = None
        if protocol_f.beacons is not None and protocol_e.reception is not None:
            vec = first_discovery_native(
                protocol_f, cache_e, offset_vec, zero_vec,
                params.horizon, params.model, self.use_incremental,
            )
            if vec is None:
                vec = self._numpy._first_discovery_batch(
                    protocol_f, cache_e, offset_vec, zero_vec,
                    params.horizon, params.model,
                )
            f_by_e = vec.tolist()
        outcomes = []
        for k, offset in enumerate(offsets):
            a = e_by_f[k] if e_by_f is not None else -1
            b = f_by_e[k] if f_by_e is not None else -1
            outcomes.append(
                DiscoveryOutcome(
                    offset=offset,
                    e_discovered_by_f=a if a >= 0 else None,
                    f_discovered_by_e=b if b >= 0 else None,
                )
            )
        return outcomes

    def enumerate_critical_offsets(
        self,
        params: SweepParams,
        omega: int | None = None,
        max_count: int = 200_000,
    ) -> list[int]:
        """Compiled critical-offset enumeration, bit-identical to the
        reference.

        The boundary lists come from the exact reference code
        (:func:`repro.backends.python_loop.direction_breakpoint_inputs`,
        same as the numpy kernel); the quadratic scatter of breakpoints
        and their ``+-1`` neighbours onto the hyperperiod dedup mask is
        the compiled part.  Guards fire at the same points with the
        same messages.  Beyond the bitmap regime (or the int64
        headroom) this delegates to the numpy kernel, whose sort-based
        path (and reference fallback) covers the rest of the space with
        identical guards.
        """
        np = _np.np
        if np is None:  # pragma: no cover - registration guards this
            raise BackendUnavailable("NumPy disappeared after registration")
        from .python_loop import direction_breakpoint_inputs

        protocol_e, protocol_f = params.protocol_e, params.protocol_f
        hyper = math.lcm(protocol_e.hyperperiod(), protocol_f.hyperperiod())
        if (
            hyper >= _INT_BOUND
            or hyper > _BITMAP_MAX_HYPER
            or (omega is not None and abs(omega) >= _INT_BOUND)
        ):
            return self._numpy.enumerate_critical_offsets(
                params, omega, max_count
            )
        mask = None
        for tx, rx_protocol, sign in (
            (protocol_e.beacons, protocol_f, -1),
            (protocol_f.beacons, protocol_e, +1),
        ):
            if tx is None or rx_protocol.reception is None:
                continue
            beacon_times, window_bounds = direction_breakpoint_inputs(
                tx, rx_protocol, hyper, omega, params.turnaround
            )
            if len(beacon_times) * len(window_bounds) > max_count * 4:
                raise CriticalSetTooLarge(
                    f"critical set too large "
                    f"({len(beacon_times)} beacons x "
                    f"{len(window_bounds)} bounds); "
                    f"use a uniform sweep"
                )
            if mask is None:
                mask = np.zeros(hyper, dtype=bool)
            _scatter_critical(
                mask,
                np.asarray(beacon_times, dtype=np.int64),
                np.asarray(window_bounds, dtype=np.int64),
                sign,
                hyper,
            )
            count = int(np.count_nonzero(mask))
            if count > max_count:
                raise CriticalSetTooLarge(
                    f"critical set exceeded {max_count} offsets; "
                    f"use a uniform sweep"
                )
        if mask is None:
            return []
        return np.flatnonzero(mask).tolist()
