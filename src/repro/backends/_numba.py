"""Import-guard shim for the *optional* Numba dependency.

Numba powers the ``native`` compiled kernel tier and, like NumPy
(:mod:`repro.backends._np`), is an extra -- never a hard requirement.
Consumers must read ``_numba.numba`` **at call time** (not bind it at
import time) so tests can simulate Numba-less environments by
monkeypatching this module, keeping the fallback resolution order
(``native`` -> ``numpy`` -> ``python``) honest on machines that do have
Numba installed.

:func:`jit_or_pyfunc` is the one decoration path the native kernel
goes through: with Numba present it compiles the function with
``numba.njit(cache=True)`` (on-disk compilation cache, so repeated
processes skip the JIT warm-up); without it the *plain python function
is returned unchanged*.  Kernel functions are therefore written in the
nopython-compatible subset of Python over int64 NumPy arrays, and the
un-jitted originals stay callable -- which is how the equivalence
tests pin the native kernel's exact arithmetic even in environments
where Numba (or the JIT itself) is unavailable.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised via both CI legs
    import numba
except ImportError:  # pragma: no cover - the no-numba CI leg
    numba = None  # type: ignore[assignment]


def have_numba() -> bool:
    """Is Numba importable right now (honours monkeypatched ``numba``)?"""
    return numba is not None


def numba_version() -> str | None:
    """The installed Numba version, or ``None`` without Numba."""
    return None if numba is None else str(numba.__version__)


def jit_or_pyfunc(func):
    """``numba.njit(cache=True)`` when Numba is importable, identity
    otherwise.

    Applied once at module import (not per call): the native kernel
    module decorates its kernels through this shim, so a Numba-less
    interpreter still imports cleanly and exposes the exact same
    functions as plain Python -- only :class:`NativeBackend.available`
    gates on Numba, never the import.
    """
    if numba is None:
        return func
    return numba.njit(cache=True)(func)
