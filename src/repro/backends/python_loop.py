"""The exact pure-python sweep kernel -- the reference implementation.

:class:`CachedPairEvaluator` is the offset-evaluation hot loop grown
over PR 1-2 (pattern-cache lookups, inlined POINT fast path), extracted
verbatim out of ``repro.parallel.cache``: it mirrors
:func:`repro.simulation.analytic.mutual_discovery_times` exactly and is
the reference every other backend is pinned bit-identical against.
:class:`PythonBackend` wraps it behind the :class:`SweepBackend`
interface; it has no dependencies beyond the standard library and runs
everywhere, which is why auto-detection falls back to it.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Sequence

from ..core.sequences import BeaconSchedule, NDProtocol, ReceptionSchedule
from ..parallel.cache import get_listening_cache, ListeningCache
from ..simulation.analytic import DiscoveryOutcome, ReceptionModel
from .base import CriticalSetTooLarge, SweepBackend, SweepParams

__all__ = [
    "CachedPairEvaluator",
    "critical_window_bounds",
    "direction_breakpoint_inputs",
    "enumerate_critical_offsets_reference",
    "PythonBackend",
    "turnaround_guard_bounds",
]


def critical_window_bounds(
    rx: ReceptionSchedule, hyper: int, omega: int | None
) -> list[int]:
    """Deduplicated window-boundary instants of ``rx`` over one
    hyperperiod (first-occurrence order).

    Every window contributes its start and end (plus the ``- omega``
    shifted twins when a packet length is given), per schedule instance.
    Duplicates -- abutting windows share a boundary, and an ``omega``
    equal to a multiple of the window grid folds shifted bounds onto
    unshifted ones -- are dropped *before* any size guard looks at the
    count, so duplicate-heavy schedules are judged by the breakpoints
    they actually produce (the PR-5 guard fix).
    """
    bounds: list[int] = []
    n_instances = hyper // int(rx.period)
    for instance in range(n_instances):
        base = instance * int(rx.period)
        for w in rx.windows:
            bounds.append(base + int(w.start))
            bounds.append(base + int(w.end))
            if omega:
                bounds.append(base + int(w.start) - omega)
                bounds.append(base + int(w.end) - omega)
    return list(dict.fromkeys(bounds))


def turnaround_guard_bounds(
    rx_protocol: NDProtocol,
    hyper: int,
    omega: int | None,
    turnaround: int,
) -> list[int]:
    """Self-blocking guard edges of the receiver's own transmissions
    over one hyperperiod (deduplicated, first-occurrence order).

    With ``turnaround > 0`` a half-duplex receiver's effective listening
    set is its windows minus ``[tx_start - turnaround, tx_end +
    turnaround)`` around each of its own beacons
    (:func:`repro.simulation.analytic._subtract_own_tx`), so the
    discovery-time function can also change where a peer's beacon aligns
    with a guard edge.  Each own-beacon instance contributes its guarded
    edges *and* its bare start/end -- the bare start is the activation
    threshold (a block exists only once ``tx_start >= 0``) -- plus the
    ``- omega`` shifted twins when a packet length is given, mirroring
    :func:`critical_window_bounds`.
    """
    beacons = rx_protocol.beacons
    if beacons is None or not turnaround:
        return []
    bounds: list[int] = []
    n_instances = hyper // int(beacons.period)
    for instance in range(n_instances):
        base = instance * int(beacons.period)
        for b in beacons.beacons:
            for edge in (
                base + int(b.time) - turnaround,
                base + int(b.time),
                base + int(b.end),
                base + int(b.end) + turnaround,
            ):
                bounds.append(edge)
                if omega:
                    bounds.append(edge - omega)
    return list(dict.fromkeys(bounds))


def direction_breakpoint_inputs(
    tx: BeaconSchedule,
    rx_protocol: NDProtocol,
    hyper: int,
    omega: int | None,
    turnaround: int,
) -> tuple[list[int], list[int]]:
    """``(beacon_times, breakpoint_bounds)`` for one enumeration
    direction -- the single source both kernels draw from, so their
    size guards and outputs stay bit-identical by construction.

    At ``turnaround == 0`` this reproduces the historical inputs exactly
    (beacon times over one hyperperiod, window bounds of the receiver).
    With ``turnaround > 0`` it adds the receiver's self-blocking guard
    edges (:func:`turnaround_guard_bounds`) plus two virtual anchors
    that make boot-time effects enumerable: bound ``0`` (a transmitter
    beacon crossing global time 0 -- candidates before a device boots
    never went on air) and beacon time ``0`` (pairing every bound with
    the origin, which captures block-activation flips at
    ``tx_start = 0``).
    """
    n_beacons = hyper // int(tx.period) * tx.n_beacons
    beacon_times = [int(tau) for tau in tx.beacon_times(n_beacons)]
    bounds = critical_window_bounds(rx_protocol.reception, hyper, omega)
    if turnaround:
        guard = turnaround_guard_bounds(rx_protocol, hyper, omega, turnaround)
        bounds = list(dict.fromkeys(bounds + guard + [0]))
        if 0 not in beacon_times:
            beacon_times = beacon_times + [0]
    return beacon_times, bounds


def enumerate_critical_offsets_reference(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    omega: int | None = None,
    max_count: int = 200_000,
    turnaround: int = 0,
) -> list[int]:
    """The exact pure-python critical-offset enumeration.

    The reference loop behind
    :func:`repro.simulation.analytic.critical_offsets`, extracted here
    (PR 5) so it sits next to the sweep kernels it feeds and so the
    vectorized :class:`repro.backends.numpy_kernel.NumpyBackend`
    enumeration can be pinned bit-identical against it.  Semantics are
    unchanged except for one bugfix: the pre-enumeration size guard now
    runs on the *deduplicated* window-bound count
    (:func:`critical_window_bounds`), so duplicate-heavy schedules whose
    actual critical set is small are no longer rejected.

    ``turnaround > 0`` additionally enumerates the receiver's
    self-blocking guard edges (:func:`direction_breakpoint_inputs`), so
    pruned sweeps stay exact under half-duplex turnaround; ``0`` leaves
    the historical output bit-identical.
    """
    hyper = math.lcm(protocol_e.hyperperiod(), protocol_f.hyperperiod())

    offsets: set[int] = set()

    def add_direction(
        tx: BeaconSchedule | None, rx_protocol: NDProtocol, sign: int
    ) -> None:
        if tx is None or rx_protocol.reception is None:
            return
        beacon_times, window_bounds = direction_breakpoint_inputs(
            tx, rx_protocol, hyper, omega, turnaround
        )
        if len(beacon_times) * len(window_bounds) > max_count * 4:
            raise CriticalSetTooLarge(
                f"critical set too large "
                f"({len(beacon_times)} beacons x {len(window_bounds)} bounds); "
                f"use a uniform sweep"
            )
        for tau in beacon_times:
            for bound in window_bounds:
                base_offset = (sign * (bound - tau)) % hyper
                offsets.add(base_offset)
                offsets.add((base_offset - 1) % hyper)
                offsets.add((base_offset + 1) % hyper)
        if len(offsets) > max_count:
            raise CriticalSetTooLarge(
                f"critical set exceeded {max_count} offsets; "
                f"use a uniform sweep"
            )

    # F is shifted by +offset.  E->F: a beacon of E at tau meets a window
    # bound of F (sitting at offset + bound) when tau = offset + bound,
    # so breakpoints fall at offset = tau - bound (sign -1).  F->E: F's
    # beacon at offset + tau meets E's bound when offset = bound - tau
    # (sign +1).  The pre-PR-5 code had the two signs swapped -- masked
    # for symmetric pairs, whose two directions mirror each other, but
    # missing true breakpoints (and worst cases) for asymmetric ones;
    # caught by the property harness's duplicate-heavy regression pair.
    add_direction(protocol_e.beacons, protocol_f, -1)
    add_direction(protocol_f.beacons, protocol_e, +1)
    return sorted(offsets)


class CachedPairEvaluator:
    """Drop-in replacement for per-offset pair evaluation.

    ``evaluate(offset)`` returns exactly what
    :func:`repro.simulation.analytic.mutual_discovery_times` returns for
    the same arguments; the two directions share one
    :class:`repro.parallel.cache.ListeningCache` per receiver across all
    offsets evaluated by this instance, resolved through the
    process-wide keyed registry so successive evaluators over the same
    zoo reuse the patterns too.
    """

    def __init__(
        self,
        protocol_e: NDProtocol,
        protocol_f: NDProtocol,
        horizon: int,
        model: ReceptionModel = ReceptionModel.POINT,
        turnaround: int = 0,
    ) -> None:
        self.protocol_e = protocol_e
        self.protocol_f = protocol_f
        self.horizon = horizon
        self.model = model
        self.cache_e = get_listening_cache(protocol_e, turnaround)
        self.cache_f = get_listening_cache(protocol_f, turnaround)

    def _first_discovery(
        self,
        transmitter: NDProtocol,
        cache: ListeningCache,
        tx_phase: int,
        rx_phase: int,
    ) -> int | None:
        # Inlined ``BeaconSchedule.iter_beacons_infinite``: same
        # doubly-infinite enumeration and identical arithmetic --
        # ``reduced + instance * period`` multiplication, never a
        # running ``+= period`` sum, which would drift off the exact
        # enumeration for non-integer periods -- minus one
        # Beacon-object construction per candidate on this hot path.
        schedule = transmitter.beacons
        period = schedule.period
        pattern = [(b.time, b.duration) for b in schedule.beacons]
        horizon = self.horizon
        model = self.model
        heard = cache.packet_heard
        # The dominant query shape -- POINT model, precomputed small
        # pattern, integer grid -- additionally skips the packet_heard
        # call: the same preconditions packet_heard checks are tested
        # inline and the same bisect runs here, so the decision is the
        # identical computation minus one function call per candidate.
        inline = (
            cache.enabled
            and not cache._use_memo
            and model is ReceptionModel.POINT
            and type(rx_phase) is int
        )
        if inline:
            hyper = cache.hyper
            threshold = cache.threshold
            starts = cache._starts
            ends = cache._ends
        reduced = tx_phase % period
        instance = -1
        while True:
            base = reduced + instance * period
            if base >= horizon:
                return None
            for tau, duration in pattern:
                time = base + tau
                if 0 <= time < horizon:
                    if inline and type(time) is int and time >= threshold:
                        end = time + duration
                        if type(end) is int and end - time <= hyper:
                            lo = (time - rx_phase) % hyper
                            i = bisect_right(starts, lo) - 1
                            if i >= 0 and ends[i] > lo:
                                return time
                            continue
                    if heard(rx_phase, time, time + duration, model):
                        return time
            instance += 1

    def evaluate(self, offset: int) -> DiscoveryOutcome:
        """Both-direction discovery at one phase offset (E at 0, F at
        ``offset``), exactly as the uncached analytic computation."""
        e_by_f = None
        f_by_e = None
        if (
            self.protocol_e.beacons is not None
            and self.protocol_f.reception is not None
        ):
            e_by_f = self._first_discovery(
                self.protocol_e, self.cache_f, tx_phase=0, rx_phase=offset
            )
        if (
            self.protocol_f.beacons is not None
            and self.protocol_e.reception is not None
        ):
            f_by_e = self._first_discovery(
                self.protocol_f, self.cache_e, tx_phase=offset, rx_phase=0
            )
        return DiscoveryOutcome(
            offset=offset, e_discovered_by_f=e_by_f, f_discovered_by_e=f_by_e
        )


class PythonBackend(SweepBackend):
    """The reference kernel behind ``backend="python"``.

    Evaluates offsets one at a time through
    :class:`CachedPairEvaluator`; listening patterns resolve through the
    process-wide keyed registry, so repeated batches over the same pair
    pay pattern construction once.
    """

    name = "python"

    def evaluate_offsets_batch(
        self, params: SweepParams, offsets: Sequence[int]
    ) -> list[DiscoveryOutcome]:
        evaluator = CachedPairEvaluator(
            params.protocol_e,
            params.protocol_f,
            params.horizon,
            params.model,
            params.turnaround,
        )
        return [evaluator.evaluate(offset) for offset in offsets]
