"""NumPy-vectorized sweep kernel: batched ``searchsorted`` discovery.

The pure-python reference resolves one beacon candidate at a time with a
binary search over the receiver's precomputed listening pattern.  This
backend runs the *same enumeration* -- beacon instances in
doubly-infinite order, taus in schedule order, first hit wins -- but
batches each candidate across **all still-undiscovered offsets at
once**: one ``np.searchsorted`` over the int64 pattern arrays (already
the shared-memory wire format) answers thousands of decode decisions
per candidate.  The working set shrinks as offsets resolve, so total
work matches the scalar loop while each step runs at C speed.

Bit-identity is by construction, not by approximation:

* candidate order, the ``0 <= t < horizon`` window, and the
  ``base >= horizon`` termination test replicate the reference loop
  exactly, so ties resolve to the identical beacon;
* the vectorized decode predicate is the same
  ``bisect_right(starts, lo) - 1`` arithmetic as
  :meth:`repro.parallel.cache.ListeningCache.packet_heard` for all
  three reception models;
* every query the pattern cannot answer -- candidates before the boot
  threshold, packets longer than the hyperperiod -- drops to the exact
  scalar path per element, and whole batches that miss the vectorization
  preconditions (disabled pattern cache, non-integer schedules or
  offsets, non-integer or oversized horizons) delegate to the
  :class:`repro.backends.python_loop.PythonBackend` reference wholesale.

The equivalence zoo pins ``python`` ≡ ``numpy`` across all 13 protocol
families and all three reception models.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.sequences import NDProtocol
from ..parallel.cache import get_listening_cache, ListeningCache
from ..simulation.analytic import DiscoveryOutcome, ReceptionModel
from . import _np
from .base import (
    BackendUnavailable,
    CriticalSetTooLarge,
    get_backend,
    SweepBackend,
    SweepParams,
)
from .incremental import arithmetic_stride, first_discovery_incremental

__all__ = ["NumpyBackend"]

# int64 headroom: offsets/horizons beyond this could overflow the
# residue arithmetic (t - rx_phase spans twice the magnitude), so such
# batches take the arbitrary-precision python path instead.
_INT_BOUND = 1 << 60

# Critical-offset enumeration uses an O(hyperperiod) boolean scatter
# mask for dedup (no sort at all) up to this hyperperiod -- 64 MB of
# transient bool scratch at the limit.  Larger hyperperiods fall back
# to sort-based dedup, which costs O(B*W log B*W) but no per-microsecond
# memory.
_BITMAP_MAX_HYPER = 1 << 26


def _direction_vectorizable(
    transmitter: NDProtocol, receiver: NDProtocol, rx_cache: ListeningCache
) -> bool:
    """Can this direction run through the int64 kernel?

    Trivial directions (no beacons / no reception) vectorize vacuously;
    otherwise the receiver's pattern must be precomputed (which already
    guarantees an integer receiver grid) and the transmitter's schedule
    must be integers too, or residues would need float arithmetic the
    reference performs exactly.
    """
    if transmitter.beacons is None or receiver.reception is None:
        return True
    if not rx_cache.enabled:
        return False
    schedule = transmitter.beacons
    if type(schedule.period) is not int or schedule.period >= _INT_BOUND:
        return False
    return all(
        type(b.time) is int and type(b.duration) is int
        for b in schedule.beacons
    )


class NumpyBackend(SweepBackend):
    """The vectorized kernel behind ``backend="numpy"``."""

    name = "numpy"

    def __init__(self, use_incremental: bool = True) -> None:
        if _np.np is None:
            raise BackendUnavailable(
                "NumPy is not importable; install the [fast] extra or "
                "select backend='python'"
            )
        # Escape hatch for benching the incremental strided-sweep engine
        # (:mod:`repro.backends.incremental`) against the plain batch
        # kernel; both are bit-identical to the reference.
        self.use_incremental = use_incremental

    @classmethod
    def available(cls) -> bool:
        return _np.np is not None

    def evaluate_offsets_batch(
        self, params: SweepParams, offsets: Sequence[int]
    ) -> list[DiscoveryOutcome]:
        np = _np.np
        if np is None:
            raise BackendUnavailable("NumPy disappeared after registration")
        offsets = list(offsets)
        if not offsets:
            return []
        protocol_e, protocol_f = params.protocol_e, params.protocol_f
        cache_e = get_listening_cache(protocol_e, params.turnaround)
        cache_f = get_listening_cache(protocol_f, params.turnaround)
        vectorizable = (
            type(params.horizon) is int
            and params.horizon < _INT_BOUND
            and all(
                type(o) is int and -_INT_BOUND < o < _INT_BOUND
                for o in offsets
            )
            and _direction_vectorizable(protocol_e, protocol_f, cache_f)
            and _direction_vectorizable(protocol_f, protocol_e, cache_e)
        )
        if not vectorizable:
            return get_backend("python").evaluate_offsets_batch(
                params, offsets
            )
        offset_vec = np.asarray(offsets, dtype=np.int64)
        zero_vec = np.zeros(len(offsets), dtype=np.int64)
        # Arithmetic-progression batches (every uniform sweep chunk)
        # qualify for the incremental engine; it may still decline a
        # direction (preconditions) and fall back to the batch kernel.
        incremental = (
            self.use_incremental and arithmetic_stride(offset_vec) is not None
        )
        e_by_f = None
        if protocol_e.beacons is not None and protocol_f.reception is not None:
            vec = None
            if incremental:
                vec = first_discovery_incremental(
                    protocol_e, cache_f, zero_vec, offset_vec,
                    params.horizon, params.model,
                )
            if vec is None:
                vec = self._first_discovery_batch(
                    protocol_e, cache_f, zero_vec, offset_vec,
                    params.horizon, params.model,
                )
            e_by_f = vec.tolist()
        f_by_e = None
        if protocol_f.beacons is not None and protocol_e.reception is not None:
            vec = None
            if incremental:
                vec = first_discovery_incremental(
                    protocol_f, cache_e, offset_vec, zero_vec,
                    params.horizon, params.model,
                )
            if vec is None:
                vec = self._first_discovery_batch(
                    protocol_f, cache_e, offset_vec, zero_vec,
                    params.horizon, params.model,
                )
            f_by_e = vec.tolist()
        outcomes = []
        for k, offset in enumerate(offsets):
            a = e_by_f[k] if e_by_f is not None else -1
            b = f_by_e[k] if f_by_e is not None else -1
            outcomes.append(
                DiscoveryOutcome(
                    offset=offset,
                    e_discovered_by_f=a if a >= 0 else None,
                    f_discovered_by_e=b if b >= 0 else None,
                )
            )
        return outcomes

    def enumerate_critical_offsets(
        self,
        params: SweepParams,
        omega: int | None = None,
        max_count: int = 200_000,
    ) -> list[int]:
        """Vectorized critical-offset enumeration, bit-identical to the
        pure-python reference.

        The reference is a double loop over ``beacon_times x
        window_bounds`` with modular arithmetic per cell.  Here the two
        boundary lists are still built by the exact (linear) reference
        code -- the shared
        :func:`repro.backends.python_loop.direction_breakpoint_inputs`
        (beacon times, deduplicated window bounds, and the turnaround
        guard edges when ``params.turnaround > 0``) -- so
        every input instant is the identical integer, and only the
        quadratic part is batched: one broadcast subtraction of window
        bounds against beacon times mod the hyperperiod per direction,
        with the ``+-1`` one-sided-limit neighbours generated
        vectorized.  Dedup is a boolean scatter mask over the
        hyperperiod where that fits in memory (no sort at all --
        ``np.flatnonzero`` reads the sorted set straight back out) and
        sort-based ``np.unique``/``np.union1d`` beyond it.  The
        ``max_count`` guards fire at the same points with the same
        messages as the reference (pre-enumeration product guard per
        direction, cumulative set guard after each direction), and the
        returned list is the same sorted python ints.  Hyperperiods at
        or beyond the int64 headroom delegate to the reference
        wholesale.
        """
        np = _np.np
        if np is None:  # pragma: no cover - registration guards this
            raise BackendUnavailable("NumPy disappeared after registration")
        from .python_loop import (
            direction_breakpoint_inputs,
            enumerate_critical_offsets_reference,
        )

        protocol_e, protocol_f = params.protocol_e, params.protocol_f
        turnaround = params.turnaround
        hyper = math.lcm(protocol_e.hyperperiod(), protocol_f.hyperperiod())
        if hyper >= _INT_BOUND or (
            omega is not None and abs(omega) >= _INT_BOUND
        ):
            return enumerate_critical_offsets_reference(
                protocol_e, protocol_f, omega, max_count, turnaround
            )

        mask = None
        merged = None
        # Direction signs as in the reference: E->F breakpoints at
        # offset = tau - bound (sign -1), F->E at bound - tau (+1).
        for tx, rx_protocol, sign in (
            (protocol_e.beacons, protocol_f, -1),
            (protocol_f.beacons, protocol_e, +1),
        ):
            if tx is None or rx_protocol.reception is None:
                continue
            beacon_times, window_bounds = direction_breakpoint_inputs(
                tx, rx_protocol, hyper, omega, turnaround
            )
            if len(beacon_times) * len(window_bounds) > max_count * 4:
                raise CriticalSetTooLarge(
                    f"critical set too large "
                    f"({len(beacon_times)} beacons x "
                    f"{len(window_bounds)} bounds); "
                    f"use a uniform sweep"
                )
            taus = np.asarray(beacon_times, dtype=np.int64)
            bounds = np.asarray(window_bounds, dtype=np.int64)
            base = (sign * np.subtract.outer(bounds, taus)) % hyper
            base = base.ravel()
            if hyper <= _BITMAP_MAX_HYPER:
                if mask is None:
                    mask = np.zeros(hyper, dtype=bool)
                mask[base] = True
                mask[(base - 1) % hyper] = True
                mask[(base + 1) % hyper] = True
                count = int(np.count_nonzero(mask))
            else:
                # Dedup the base offsets *before* neighbour generation:
                # the second sort then runs over ~3 unique values per
                # breakpoint instead of 3 per (beacon, bound) cell.
                unique = np.unique(base)
                unique = np.unique(
                    np.concatenate(
                        (unique, (unique - 1) % hyper, (unique + 1) % hyper)
                    )
                )
                merged = (
                    unique if merged is None else np.union1d(merged, unique)
                )
                count = int(merged.size)
            if count > max_count:
                raise CriticalSetTooLarge(
                    f"critical set exceeded {max_count} offsets; "
                    f"use a uniform sweep"
                )
        if mask is not None:
            return np.flatnonzero(mask).tolist()
        if merged is None:
            return []
        return merged.tolist()

    def _first_discovery_batch(
        self,
        transmitter: NDProtocol,
        cache: ListeningCache,
        tx_phases,
        rx_phases,
        horizon: int,
        model: ReceptionModel,
    ):
        """First-discovery times for every phase pair (``-1``: none).

        One iteration per beacon candidate ``(instance, tau)`` in the
        reference enumeration order, batched over the still-unresolved
        offsets.
        """
        np = _np.np
        schedule = transmitter.beacons
        period = schedule.period
        pattern = [(int(b.time), int(b.duration)) for b in schedule.beacons]
        starts, ends = cache.pattern_arrays()
        n_segments = int(starts.size)
        hyper = cache.hyper
        threshold = cache.threshold
        point = model is ReceptionModel.POINT
        any_overlap = model is ReceptionModel.ANY_OVERLAP

        result = np.full(tx_phases.size, -2, dtype=np.int64)
        reduced = tx_phases % period
        pending = np.flatnonzero(result == -2)
        instance = -1
        while pending.size:
            base = reduced[pending] + instance * period
            over = base >= horizon
            if over.any():
                # The reference returns None the moment an instance
                # starts at or past the horizon.
                result[pending[over]] = -1
                pending = pending[~over]
            for tau, duration in pattern:
                if not pending.size:
                    break
                t = reduced[pending] + instance * period + tau
                valid = (t >= 0) & (t < horizon)
                if not valid.any():
                    continue
                heard = np.zeros(pending.size, dtype=bool)
                if duration <= hyper:
                    fast = valid & (t >= threshold)
                else:
                    fast = np.zeros(pending.size, dtype=bool)
                if n_segments and fast.any():
                    lo = (t[fast] - rx_phases[pending[fast]]) % hyper
                    i = np.searchsorted(starts, lo, side="right") - 1
                    safe = np.maximum(i, 0)
                    covers_lo = (i >= 0) & (ends[safe] > lo)
                    if point:
                        ok = covers_lo
                    elif any_overlap:
                        has_next = i + 1 < n_segments
                        nxt = np.minimum(i + 1, n_segments - 1)
                        ok = covers_lo | (
                            has_next & (starts[nxt] < lo + duration)
                        )
                    else:  # CONTAINMENT: one segment spans the packet
                        ok = (i >= 0) & (ends[safe] >= lo + duration)
                    heard[fast] = ok
                # Below the boot threshold (or for packets longer than
                # the hyperperiod) translation invariance breaks: take
                # the exact scalar path, exactly as packet_heard would.
                slow = valid & ~fast
                if slow.any():
                    packet_heard = cache.packet_heard
                    for j in np.flatnonzero(slow):
                        start_t = int(t[j])
                        heard[j] = packet_heard(
                            int(rx_phases[pending[j]]),
                            start_t,
                            start_t + duration,
                            model,
                        )
                if heard.any():
                    result[pending[heard]] = t[heard]
                    pending = pending[~heard]
            instance += 1
        return result
