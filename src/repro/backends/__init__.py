"""Pluggable sweep-kernel backends behind one ``SweepBackend`` interface.

Every bound-validation experiment reduces to the same hot loop --
evaluate first-discovery latency at many phase offsets against a
precomputed listening pattern.  This package inverts the dependency
structure of PR 1-2: instead of callers reaching into cache/evaluator
internals, kernels implement
:meth:`SweepBackend.evaluate_offsets_batch(params, offsets)` and
register by name, and every layer above (``analytic.evaluate_offsets``,
:class:`repro.parallel.ParallelSweep`, ``verified_worst_case``,
``sweep_network_grid``, :class:`repro.workloads.Scenario`, the CLI's
``--backend`` flag) selects one without knowing how it computes.

Backend-selection contract
--------------------------

* ``"python"`` -- the exact pure-python reference loop
  (:mod:`repro.backends.python_loop`), extracted verbatim from the PR-2
  hot path.  Always available; the correctness anchor every other
  backend is pinned bit-identical against by the equivalence zoo.
* ``"numpy"`` -- the vectorized kernel
  (:mod:`repro.backends.numpy_kernel`): int64 pattern arrays (the
  shared-memory wire format), one batched ``np.searchsorted`` per
  beacon candidate over all unresolved offsets.  Available only when
  NumPy is importable; requesting it without NumPy raises
  :class:`BackendUnavailable`.  NumPy is an *optional extra*
  (``pip install repro-nd[fast]``), never a hard dependency --
  :mod:`repro.backends._np` is the one import-guard shim every
  vectorizing module goes through.
* ``"native"`` -- the compiled kernel
  (:mod:`repro.backends.native_kernel`): the whole per-lane discovery
  loop jitted with ``numba.njit(cache=True)`` over the same int64
  arrays, zero per-candidate dispatch.  Available only when Numba
  (and NumPy, for the array plumbing) are importable --
  :mod:`repro.backends._numba` is the matching import-guard shim --
  and likewise an optional extra (``pip install repro-nd[native]``).
* ``"pooled"`` -- a lazily created, explicitly shut-down persistent
  ``ProcessPoolExecutor`` wrapping any inner kernel
  (:mod:`repro.backends.pooled`), so many-small-sweep workloads stop
  paying per-sweep pool startup.
* ``"auto"`` (or ``None``) -- :func:`default_backend_name`:
  ``native`` when Numba is importable, else ``numpy`` when NumPy is,
  ``python`` fallback.  All defaults route through auto-detection, so
  installing an extra is the only step a deployment needs to get the
  fastest kernel everywhere.

Whatever the selection, results are **bit-identical** by contract: the
same ``DiscoveryOutcome`` sequence in the same order for every protocol
pair, reception model and turnaround guard.  Backends that cannot
vectorize a batch (non-integer schedules, disabled pattern caches,
oversized values) silently delegate to the ``python`` reference rather
than approximate.

The incremental cross-offset fast path
--------------------------------------

Sweep batches are almost always arithmetic progressions of offsets (the
shape every uniform sweep and the grid scheduler emit), and successive
beacon candidates shift every offset's decode position by the *same*
delta.  :mod:`repro.backends.incremental` exploits this: compute the
first evaluated candidate's decode positions once, then advance each
``(residue, segment-index)`` pair by the shared stride delta,
re-resolving only the windows whose segment index changed -- amortized
O(changed windows) per offset instead of O(log pattern) per candidate.
Both the ``numpy`` and ``native`` kernels use it as an internal fast
path, gated on these preconditions (any miss falls back to the plain
batch kernel, never to approximation):

* the offset batch is an arithmetic progression of at least
  ``incremental.MIN_LANES`` offsets with non-zero stride;
* the receiver's listening pattern is precomputed and non-empty;
* every beacon duration fits within the pattern hyperperiod.

``NumpyBackend(use_incremental=False)`` /
``NativeBackend(use_incremental=False)`` are the benching escape
hatches that force the plain batch formulation.

The ``enumerate_critical_offsets`` operation (PR 5)
---------------------------------------------------

Backends dispatch a second operation,
:meth:`SweepBackend.enumerate_critical_offsets(params, omega, max_count)
<SweepBackend.enumerate_critical_offsets>` -- the breakpoint
enumeration feeding ``verified_worst_case`` and
``sampling="critical"`` sweeps.  Its contract mirrors
``evaluate_offsets_batch``:

* **Inputs.**  Only ``params.protocol_e`` / ``params.protocol_f`` are
  read (breakpoint positions do not depend on horizon, reception model
  or turnaround); ``omega`` adds the packet-length-shifted window
  bounds, ``max_count`` is the explosion guard.
* **Bit-identity.**  Every implementation returns the identical sorted
  list of python ints as the reference
  (:func:`repro.backends.python_loop.enumerate_critical_offsets_reference`)
  -- the ``numpy`` kernel replaces the ``beacon_times x window_bounds``
  double loop with one broadcast modular subtraction per direction,
  vectorized ``+-1`` neighbours and ``np.unique`` dedup, but builds
  both boundary lists with the exact reference code so every input
  instant is the same integer.  Pinned by the property-based
  differential harness (``tests/test_critical_offsets_property.py``)
  across all 13 zoo families and by the bench smoke's hard exit gate.
* **Guard parity.**  The ``max_count`` guards raise ``ValueError`` at
  the same points with the same messages for every backend: a
  pre-enumeration product guard per direction (on the *deduplicated*
  window-bound count) and a cumulative set-size guard after each
  direction.
* **Delegation.**  The abstract base provides the reference as the
  default implementation, so custom kernels stay correct without
  opting in; ``pooled`` delegates to its inner kernel in-process (the
  enumeration is one pass, not a batch worth sharding), and the numpy
  kernel falls back to the reference wholesale beyond its int64
  headroom.

Persistent-pool lifecycle
-------------------------

:class:`~repro.backends.pooled.PooledBackend` creates **no processes
until first sharded use**; the pool then survives across batches (and
across ``ParallelSweep`` instances, via
:func:`~repro.backends.pooled.get_pooled_backend`'s keyed sharing) so
worker-side pattern registries stay warm.  Shutdown is explicit --
``backend.close()``, the context-manager protocol, or
:func:`~repro.backends.pooled.shutdown_pooled_backends` (idempotent) --
with an ``atexit`` hook as the no-leak backstop for legacy callers.

Since PR 4 the preferred owner is a :class:`repro.api.Session`: a
session that resolves a pooled backend takes a
:meth:`~repro.backends.pooled.PooledBackend.retain` reference and
releases it on ``__exit__``, so nested sessions sharing one profile
share one pool and the pool closes deterministically -- without
``atexit`` -- exactly when the last owning session exits.  Backend
*selection* likewise now flows from one
:class:`repro.api.RuntimeProfile` (``profile.backend``) instead of
per-call ``backend=`` kwargs, which survive only as deprecated shims.
"""

from .base import (
    available_backends,
    BackendUnavailable,
    CriticalSetTooLarge,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
    SweepBackend,
    SweepParams,
)
from ._np import have_numpy, numpy_version
from ._numba import have_numba, numba_version
from .native_kernel import NativeBackend
from .numpy_kernel import NumpyBackend
from .pooled import (
    get_pooled_backend,
    PooledBackend,
    shutdown_pooled_backends,
)
from .python_loop import CachedPairEvaluator, PythonBackend

register_backend("python", PythonBackend)
register_backend("numpy", NumpyBackend)
register_backend("native", NativeBackend)
register_backend("pooled", get_pooled_backend)

__all__ = [
    "available_backends",
    "BackendUnavailable",
    "CachedPairEvaluator",
    "CriticalSetTooLarge",
    "default_backend_name",
    "get_backend",
    "get_pooled_backend",
    "have_numba",
    "have_numpy",
    "NativeBackend",
    "numba_version",
    "numpy_version",
    "NumpyBackend",
    "PooledBackend",
    "PythonBackend",
    "register_backend",
    "resolve_backend",
    "shutdown_pooled_backends",
    "SweepBackend",
    "SweepParams",
]
