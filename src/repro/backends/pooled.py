"""Persistent worker-pool backend: pay pool startup once, not per sweep.

Many workloads -- protocol-zoo tables, grid cells, repeated
``verified_worst_case`` calls -- run *many small sweeps*, and PR 1-2's
per-sweep ``ProcessPoolExecutor`` charged each one tens of milliseconds
of fork/spawn startup.  :class:`PooledBackend` wraps any inner kernel
(``python``, ``numpy`` or ``native``, by registry name) in a **lazily
created,
explicitly shut-down** persistent pool:

* **Lazy creation** -- no processes exist until the first batch large
  enough to shard arrives; degenerate batches (fewer than two offsets,
  ``jobs <= 1``) run through the inner backend in-process.
* **Reuse** -- the executor survives across ``evaluate_offsets_batch``
  calls (and across :class:`repro.parallel.ParallelSweep` instances via
  :func:`get_pooled_backend`'s keyed sharing), so workers keep their
  warm keyed pattern registries: a zoo's patterns are built once per
  worker for the whole session, not once per sweep.
* **Explicit shutdown** -- :meth:`PooledBackend.close` (or the context
  manager protocol, or module-wide :func:`shutdown_pooled_backends`)
  terminates the workers deterministically; an ``atexit`` hook is the
  backstop so no interpreter exit ever leaks processes.

Work ships as ``(inner_name, params, offsets, arena_handles)`` chunks
through a module-level function -- everything pickles under fork and
spawn, and workers resolve listening patterns through their own
process-wide registries (no per-sweep initializer exists on a
persistent pool, and none is needed: the registry memoizes across
tasks).

Since PR 5 the pool also pins a **shared-memory pattern arena**
(:class:`repro.parallel.shm.PatternArena`) for the registry's sweep
patterns: the parent publishes each pair's listening patterns (resolved
through the keyed cache registry, so a warm zoo costs one dict probe)
into pool-lifetime segments, and every sweep chunk carries the covering
segment handles so workers map the patterns zero-copy instead of
rebuilding them -- removing the one cold rebuild spawn-start workers
still paid per protocol.  The arena lives and dies with the pool: it is
released in :meth:`PooledBackend.close` (reached from
``Session.__exit__`` via the retain/release protocol, or from
:func:`shutdown_pooled_backends`), never leaking segments past the
owning pool.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from ..simulation.analytic import DiscoveryOutcome
from .base import (
    chunk_evenly,
    decode_outcomes,
    encode_outcomes,
    get_backend,
    SweepBackend,
    SweepParams,
)

__all__ = [
    "PooledBackend",
    "get_pooled_backend",
    "shutdown_pooled_backends",
]


def _default_mp_context() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _pool_worker_init() -> None:
    """Detach inherited asyncio signal plumbing in fork-start workers.

    A fork-context worker forked from a process running an asyncio
    event loop inherits the loop's signal wakeup fd -- one end of a
    socketpair the parent's loop reads.  Any signal delivered to such a
    worker (e.g. the SIGTERM ``ProcessPoolExecutor``'s broken-pool
    cleanup sends to survivors) would be written into that shared pipe
    and dispatched by the *parent's* loop as if the parent had received
    it: a serve daemon would shut itself down whenever one pool child
    died.  Resetting the wakeup fd and the handler dispositions
    confines worker signals to the worker.  Harmless under spawn (no
    inherited state) and for loop-less parents (fd is already -1).
    """
    signal.set_wakeup_fd(-1)
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (OSError, ValueError):  # pragma: no cover - exotic hosts
            pass


def _pooled_chunk(
    inner_name: str,
    params: SweepParams,
    offsets: list[int],
    arena_handles: tuple = (),
) -> list[tuple]:
    """Worker entry point: evaluate one chunk through the inner kernel.

    ``arena_handles`` are the pool arena's segment handles covering this
    pair's patterns; the (idempotent, per-fingerprint-once) attach maps
    them zero-copy into the worker's keyed registry before the kernel
    resolves its caches, so even a spawn-start worker's first chunk
    skips pattern construction.  Outcomes travel back in the shared
    tuple wire format (:func:`repro.backends.base.encode_outcomes`,
    cheaper to pickle than dataclasses); the parent rebuilds
    :class:`DiscoveryOutcome` field-for-field.
    """
    if arena_handles:
        from ..parallel.shm import attach_pattern_arena

        attach_pattern_arena(
            arena_handles,
            [
                (params.protocol_e, params.turnaround),
                (params.protocol_f, params.turnaround),
            ],
        )
    return encode_outcomes(
        get_backend(inner_name).evaluate_offsets_batch(params, offsets)
    )


class PooledBackend(SweepBackend):
    """A persistent process pool wrapping any inner sweep kernel."""

    name = "pooled"

    def __init__(
        self,
        inner: str | None = None,
        jobs: int | None = None,
        mp_context: str | None = None,
        chunks_per_job: int = 4,
        use_arena: bool = True,
    ) -> None:
        from .base import default_backend_name

        self.inner = inner or default_backend_name()
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.mp_context = mp_context or _default_mp_context()
        self.chunks_per_job = chunks_per_job
        #: Pin a pool-lifetime shared-memory pattern arena (module
        #: docstring); ``False`` keeps the PR-3 rebuild-per-worker
        #: behaviour -- results are bit-identical either way, the flag
        #: exists for the cold-start benchmark comparison.
        self.use_arena = use_arena
        self._executor: ProcessPoolExecutor | None = None
        self._arena = None
        self._session_refs = 0
        self._retain_generation = 0

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Does a live worker pool exist right now?"""
        return self._executor is not None

    def executor(self) -> ProcessPoolExecutor:
        """The persistent pool, created on first use."""
        if self._executor is None:
            ctx = multiprocessing.get_context(self.mp_context)
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=ctx,
                initializer=_pool_worker_init,
            )
            _LIVE_POOLS.add(self)
            _register_atexit()
        return self._executor

    def submit(self, fn, /, *args, **kwargs):
        """Submit arbitrary picklable work to the persistent pool.

        The hook grid and spot-check drivers use to reuse these workers
        for non-sweep tasks (DES replays) without a second pool.
        """
        return self.executor().submit(fn, *args, **kwargs)

    @property
    def arena(self):
        """The pool's :class:`repro.parallel.shm.PatternArena` (or
        ``None`` before the first sharded sweep / when disabled)."""
        return self._arena

    def _arena_handles(self, params: SweepParams) -> tuple:
        """Parent-side arena upkeep for one sweep batch.

        Resolves both receivers' listening caches through the keyed
        registry (warm zoos hit; cold pairs build once, in the parent,
        instead of once per worker), publishes any pattern the arena
        does not hold yet into a new pool-lifetime segment, and returns
        the handles covering this pair for the chunk submissions.
        """
        if not self.use_arena:
            return ()
        from ..parallel.cache import get_listening_cache, protocol_fingerprint
        from ..parallel.shm import PatternArena

        if self._arena is None:
            self._arena = PatternArena()
        caches = {
            protocol_fingerprint(receiver, params.turnaround):
                get_listening_cache(receiver, params.turnaround)
            for receiver in (params.protocol_e, params.protocol_f)
        }
        self._arena.ensure(caches)
        return self._arena.handles_for(caches)

    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down and release its pattern arena
        (idempotent); the next batch that needs one lazily creates a
        fresh pool (and arena)."""
        executor, self._executor = self._executor, None
        arena, self._arena = self._arena, None
        _LIVE_POOLS.discard(self)
        if executor is not None:
            executor.shutdown(wait=wait)
        if arena is not None:
            # After the workers: their mappings outlive the unlink
            # safely (POSIX), but unlinking only once no new chunk can
            # be submitted keeps the ordering obviously correct.
            arena.close()

    #: ``shutdown`` is the conventional executor spelling.
    shutdown = close

    # ------------------------------------------------------------------
    @property
    def session_refs(self) -> int:
        """How many :class:`repro.api.Session` objects currently hold
        this backend (see :meth:`retain`)."""
        return self._session_refs

    def retain(self) -> int:
        """Register one owner of this (possibly shared) pool.

        :class:`repro.api.Session` retains the pooled backend it
        resolves and releases it on exit, so pool shutdown is
        deterministic without ``atexit``: the pool closes exactly when
        the *last* session holding it exits.  Returns a generation
        token to pass back to :meth:`release` -- a force
        :func:`shutdown_pooled_backends` bumps the generation, which
        voids outstanding tokens so a stale owner's later release can
        never steal a newer session's reference.
        """
        self._session_refs += 1
        return self._retain_generation

    def release(self, token: int | None = None, wait: bool = True) -> None:
        """Drop one :meth:`retain` reference; close the pool when the
        last one goes.

        ``token`` is the value :meth:`retain` returned; a stale token
        (the pool was force-shut-down and possibly re-retained since)
        makes the release a no-op instead of decrementing a *newer*
        owner's reference.  ``None`` releases unconditionally.  The
        count never goes negative and closing an already-closed pool is
        a no-op, so nested sessions sharing one profile can never
        double-shutdown a shared pool or leak its workers.
        """
        if token is not None and token != self._retain_generation:
            return  # voided by a force shutdown since this retain
        self._session_refs = max(0, self._session_refs - 1)
        if self._session_refs == 0:
            self.close(wait=wait)

    def __enter__(self) -> "PooledBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def enumerate_critical_offsets(
        self,
        params: SweepParams,
        omega: int | None = None,
        max_count: int = 200_000,
    ) -> list[int]:
        """Critical-offset enumeration through the *inner* kernel,
        in-process: the enumeration is one (possibly vectorized) pass,
        not a batch worth sharding, so a ``pooled(numpy)`` backend gets
        the numpy kernel's batched modular arithmetic without paying
        any pool round-trip."""
        return get_backend(self.inner).enumerate_critical_offsets(
            params, omega, max_count
        )

    # ------------------------------------------------------------------
    def evaluate_offsets_batch(
        self,
        params: SweepParams,
        offsets: Sequence[int],
        chunks_per_job: int | None = None,
    ) -> list[DiscoveryOutcome]:
        """Shard one batch over the persistent pool.

        ``chunks_per_job`` overrides the instance default for this call
        -- the hook :class:`repro.parallel.ParallelSweep` uses to keep
        its load-balancing knob meaningful on shared pooled instances.
        """
        offsets = list(offsets)
        if self.jobs <= 1 or len(offsets) < 2:
            return get_backend(self.inner).evaluate_offsets_batch(
                params, offsets
            )
        per_job = chunks_per_job if chunks_per_job else self.chunks_per_job
        chunks = chunk_evenly(offsets, self.jobs * per_job)
        # Boot (or reuse) the executor before publishing into the
        # arena: only a booted pool is tracked by _LIVE_POOLS, so a
        # failed boot must not strand freshly published shm segments
        # beyond shutdown_pooled_backends()'s reach.
        pool = self.executor()
        handles = self._arena_handles(params)
        futures = [
            pool.submit(_pooled_chunk, self.inner, params, chunk, handles)
            for chunk in chunks
        ]
        # Futures are consumed in submission order, so flattening
        # preserves the input offset order exactly.
        return decode_outcomes(
            row for future in futures for row in future.result()
        )


# ----------------------------------------------------------------------
# Shared instances: one persistent pool per (inner, jobs, mp_context)
# ----------------------------------------------------------------------

_SHARED: dict[tuple, PooledBackend] = {}
_LIVE_POOLS: set[PooledBackend] = set()
_ATEXIT_REGISTERED = False


def _register_atexit() -> None:
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(shutdown_pooled_backends)
        _ATEXIT_REGISTERED = True


def get_pooled_backend(
    inner: str | None = None,
    jobs: int | None = None,
    mp_context: str | None = None,
) -> PooledBackend:
    """The shared persistent-pool backend for this shape.

    Two callers asking for the same ``(inner, jobs, mp_context)`` get
    the *same* instance -- and therefore the same warm worker pool --
    which is what makes ``ParallelSweep(backend="pooled")`` amortize
    startup across independent sweeps.  Construct :class:`PooledBackend`
    directly for a private pool.
    """
    from .base import default_backend_name

    key = (
        inner or default_backend_name(),
        jobs if jobs is not None else (os.cpu_count() or 1),
        mp_context or _default_mp_context(),
    )
    backend = _SHARED.get(key)
    if backend is None:
        backend = PooledBackend(*key)
        _SHARED[key] = backend
    return backend


#: Tells the registry this factory manages its own (shape-keyed)
#: instances -- see :func:`repro.backends.base.get_backend`.
get_pooled_backend.self_managed = True


def shutdown_pooled_backends(wait: bool = True) -> int:
    """Explicitly shut down every live persistent pool.  **Idempotent.**

    Returns the number of pools that were actually running; a second
    call (or a call when nothing ever started) returns 0 and touches
    nothing.  This is a *force* shutdown: it also clears any session
    retain counts (see :meth:`PooledBackend.retain`), so sessions still
    holding a pool release cleanly afterwards -- their later
    :meth:`~PooledBackend.release` finds the count at zero and the pool
    already closed, which is a no-op.  Shared instances stay resolvable
    afterwards -- their next use lazily boots a fresh pool.  Registered
    via ``atexit`` as the no-leak backstop for non-session callers;
    session-managed pools close deterministically on ``Session.__exit__``.
    """
    live = list(_LIVE_POOLS)
    # Clear retain state on *every* reachable pool, not just started
    # ones: a session may have retained a lazily-created shared backend
    # whose pool never booted, and its stale reference must not survive
    # the force shutdown either.  Voiding the retain generation makes
    # such a session's later release a no-op instead of decrementing a
    # reference taken by a session created after this call.
    for backend in set(live) | set(_SHARED.values()):
        backend._session_refs = 0
        backend._retain_generation += 1
    for backend in live:
        backend.close(wait=wait)
    return len(live)
