"""Incremental cross-offset sweep engine: decode positions as state.

The batch kernels (numpy, PR 3) answer every ``(candidate, offset)``
decode query independently: one ``searchsorted`` over the pattern per
beacon candidate, ``O(log segments)`` each.  But the queries are not
independent -- a sweep's offsets form an arithmetic progression (the
shape every uniform sweep and the grid scheduler emit), and successive
beacon candidates advance every lane's phase residue by the **same**
delta::

    lo_k(candidate) = (C_candidate + D_k) mod H
    C = instance * period + tau          # shared by all lanes
    D_k = (tx_phase_k mod period) - rx_phase_k   # per-lane constant

so the segment index of lane ``k`` at the next candidate is its current
index advanced past however many segment boundaries the shared delta
``dC = C' - C (mod H)`` crossed -- usually zero or one.  This module
keeps exactly that state: it computes the first evaluated candidate's
decode positions once (one ``searchsorted`` over all lanes), then
advances ``(lo, index)`` per candidate by the stride delta,
re-resolving only the windows whose segment index changed (lanes whose
residue wrapped past the hyperperiod, or dense advances past the walk
budget), making the amortized per-offset cost **O(changed windows)**
instead of ``O(log patterns)`` per candidate.

Bit-identity is structural, not approximate: the candidate enumeration
order, the per-instance horizon termination, the boot-threshold split
(``t < threshold`` lanes take the exact scalar ``packet_heard`` path,
exactly like the batch kernel) and the three reception-model decision
predicates are copied from
:meth:`repro.backends.numpy_kernel.NumpyBackend._first_discovery_batch`;
only the *index computation* is incremental, and the walk maintains the
invariant ``index == bisect_right(starts, lo) - 1`` at every evaluated
candidate.

Preconditions (:func:`first_discovery_incremental` returns ``None`` and
the caller falls back to the batch kernel when unmet):

* the receiver's listening pattern is precomputed and non-empty (the
  caller's vectorization gate already guarantees an integer grid inside
  the int64 headroom);
* every beacon duration fits inside the pattern hyperperiod (otherwise
  some candidates would need the exact path forever -- the batch kernel
  handles that per element, so it keeps those batches);
* the batch has at least :data:`MIN_LANES` offsets -- below that the
  state bookkeeping costs more than the searches it saves.

Callers additionally gate on :func:`arithmetic_stride` -- the
engine's *target* workload is the strided batch, where every chunk a
sweep driver emits keeps the progression -- with an explicit
``use_incremental`` escape hatch on the kernels for benching the
incremental path against the plain batch formulation.  (The candidate
delta ``dC`` is offset-independent, so the state machine itself never
reads the stride; the gate keeps the fast path on the workload shape it
is measured on.)

The ``native`` kernel (:mod:`repro.backends.native_kernel`) runs the
same formulation serially per lane inside its compiled loops; this
module is the vectorized rendition the ``numpy`` kernel uses.
"""

from __future__ import annotations

from ..simulation.analytic import ReceptionModel
from . import _np

__all__ = ["arithmetic_stride", "first_discovery_incremental", "MIN_LANES"]

#: Fewer lanes than this and the per-candidate state upkeep outweighs
#: the searches it replaces -- callers keep the batch kernel.
MIN_LANES = 8

#: A candidate advance of more than ``hyper // DENSE_FRACTION`` crosses
#: too many boundaries to walk; those candidates re-resolve wholesale.
_DENSE_FRACTION = 8

#: Vectorized walk iterations before the stragglers re-resolve exactly.
_MAX_WALK = 8


def arithmetic_stride(offset_vec) -> int | None:
    """The batch's common stride, or ``None`` if it is not an
    arithmetic progression of at least :data:`MIN_LANES` offsets with a
    non-zero stride (the incremental engine's gate)."""
    np = _np.np
    if offset_vec.size < MIN_LANES:
        return None
    deltas = np.diff(offset_vec)
    stride = int(deltas[0])
    if stride == 0 or not bool((deltas == deltas[0]).all()):
        return None
    return stride


def first_discovery_incremental(
    transmitter,
    cache,
    tx_phases,
    rx_phases,
    horizon: int,
    model: ReceptionModel,
):
    """First-discovery times for every phase pair (``-1``: none), or
    ``None`` when the preconditions (module docstring) fail.

    Drop-in for the batch kernel's ``_first_discovery_batch``: same
    int64 inputs, same candidate order, bit-identical output array.
    """
    np = _np.np
    schedule = transmitter.beacons
    period = schedule.period
    pattern = [(int(b.time), int(b.duration)) for b in schedule.beacons]
    starts, ends = cache.pattern_arrays()
    n_segments = int(starts.size)
    hyper = cache.hyper
    if (
        n_segments == 0
        or tx_phases.size < MIN_LANES
        or any(duration > hyper for _, duration in pattern)
    ):
        return None
    threshold = cache.threshold
    point = model is ReceptionModel.POINT
    any_overlap = model is ReceptionModel.ANY_OVERLAP
    heard_exact = cache.packet_heard

    # Sentinel-extended pattern arrays turn every decision predicate
    # into one gather at ``index + 1`` with no bounds masks: slot 0
    # (-1) answers "before the first segment", slot ``n`` (2H+1, above
    # any residue and any ``lo + duration``) answers "past the last".
    ends_ext = np.empty(n_segments + 1, dtype=np.int64)
    ends_ext[0] = -1
    ends_ext[1:] = ends
    starts_ext = np.empty(n_segments + 1, dtype=np.int64)
    starts_ext[:n_segments] = starts
    starts_ext[n_segments] = 2 * hyper + 1

    n = int(tx_phases.size)
    result = np.full(n, -2, dtype=np.int64)
    red = tx_phases % period
    lane_delta = red - rx_phases  # D_k: the per-lane residue constant
    rxp = rx_phases
    lanes = np.arange(n)
    red_min = int(red.min())
    red_max = int(red.max())
    lo = None
    idx = None
    c_last = 0
    dense = max(1, hyper // _DENSE_FRACTION)
    instance = -1
    while lanes.size:
        ibase = instance * period
        # Per-instance horizon termination, exactly as the batch kernel:
        # lanes whose instance starts at or past the horizon resolve to
        # "never".  The scalar bound makes the vector compare rare.
        if ibase + red_max >= horizon:
            over = red >= horizon - ibase
            if over.any():
                result[lanes[over]] = -1
                keep = ~over
                lanes = lanes[keep]
                red = red[keep]
                lane_delta = lane_delta[keep]
                rxp = rxp[keep]
                if lo is not None:
                    lo = lo[keep]
                    idx = idx[keep]
                if not lanes.size:
                    break
                red_min = int(red.min())
                red_max = int(red.max())
        for tau, duration in pattern:
            c = ibase + tau
            t_min = c + red_min
            t_max = c + red_max
            if t_max < 0 or t_min >= horizon:
                # No lane has a valid query here; the skipped span folds
                # into the next evaluated candidate's delta.
                continue
            if lo is None:
                # First evaluated candidate: decode positions computed
                # once, the only full-batch search on the happy path.
                lo = (c + lane_delta) % hyper
                idx = np.searchsorted(starts, lo, side="right") - 1
            else:
                d_c = (c - c_last) % hyper
                if d_c:
                    lo += d_c
                    wrapped = lo >= hyper
                    if wrapped.any():
                        # Wrapped residues restart below the first
                        # boundary; the walk below re-resolves them.
                        lo[wrapped] -= hyper
                        idx[wrapped] = -1
                    if d_c > dense:
                        idx = np.searchsorted(starts, lo, side="right") - 1
                    else:
                        for _ in range(_MAX_WALK):
                            advance = starts_ext[idx + 1] <= lo
                            if not advance.any():
                                break
                            idx[advance] += 1
                        else:
                            lagging = starts_ext[idx + 1] <= lo
                            if lagging.any():
                                idx[lagging] = (
                                    np.searchsorted(
                                        starts, lo[lagging], side="right"
                                    )
                                    - 1
                                )
            c_last = c
            # Decision predicates identical to the batch kernel's, via
            # the sentinel slots instead of bounds masks.
            if point:
                hit = ends_ext[idx + 1] > lo
            elif any_overlap:
                hit = (ends_ext[idx + 1] > lo) | (
                    starts_ext[idx + 1] < lo + duration
                )
            else:  # CONTAINMENT: one segment spans the packet
                hit = ends_ext[idx + 1] >= lo + duration
            if t_min >= 0 and t_max < horizon and t_min >= threshold:
                heard = hit
            else:
                t = red + c
                heard = hit
                if t_min < 0 or t_max >= horizon:
                    valid = (t >= 0) & (t < horizon)
                    heard = heard & valid
                else:
                    valid = None
                if t_min < threshold:
                    fast = t >= threshold
                    heard = heard & fast
                    # Below the boot threshold translation invariance
                    # breaks: exact scalar path, as the batch kernel.
                    slow = ~fast if valid is None else valid & ~fast
                    for j in np.flatnonzero(slow):
                        t_j = int(t[j])
                        if heard_exact(
                            int(rxp[j]), t_j, t_j + duration, model
                        ):
                            heard[j] = True
            if heard.any():
                result[lanes[heard]] = red[heard] + c
                keep = ~heard
                lanes = lanes[keep]
                red = red[keep]
                lane_delta = lane_delta[keep]
                rxp = rxp[keep]
                lo = lo[keep]
                idx = idx[keep]
                if not lanes.size:
                    break
                red_min = int(red.min())
                red_max = int(red.max())
        instance += 1
    return result
