"""The ``SweepBackend`` interface and the backend registry.

One sweep kernel contract, many implementations.  A backend evaluates a
*batch* of phase offsets against a protocol pair -- the single hot loop
behind every bound-validation experiment -- and returns per-offset
:class:`repro.simulation.analytic.DiscoveryOutcome` objects in input
order, bit-identical to the exact serial computation.  Everything above
this layer (the analytic batch entry points, :class:`ParallelSweep`,
``verified_worst_case``, the CLI) selects a backend by name and never
touches kernel internals again.

This module is dependency-light by design: it imports neither
``repro.simulation`` nor ``repro.parallel`` at module level, so the
registered implementations (which do) can depend on it without cycles.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from . import _np, _numba

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.sequences import NDProtocol
    from ..simulation.analytic import DiscoveryOutcome, ReceptionModel

__all__ = [
    "BackendUnavailable",
    "CriticalSetTooLarge",
    "SweepParams",
    "SweepBackend",
    "available_backends",
    "chunk_evenly",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend",
]


class BackendUnavailable(RuntimeError):
    """A requested backend cannot run in this environment (e.g. the
    ``numpy`` backend without NumPy installed)."""


class CriticalSetTooLarge(ValueError):
    """A critical-offset enumeration tripped its ``max_count`` guard.

    Every kernel raises exactly this type (message-identical across
    backends -- the guard-parity contract) from the two enumeration
    size guards.  It subclasses :class:`ValueError` so pre-existing
    ``except ValueError`` callers keep working, but the worst-case
    engine's sampled fallback triggers **only** on this type: a plain
    ``ValueError`` out of a kernel is a genuine error and propagates
    instead of silently degrading exactness.
    """


@dataclass(frozen=True)
class SweepParams:
    """Everything that identifies one pair-sweep workload except the
    offsets themselves.

    Frozen and picklable: the pooled backend ships one ``SweepParams``
    per submitted chunk, and worker processes resolve the listening
    patterns from it through their own keyed cache registries.
    """

    protocol_e: "NDProtocol"
    protocol_f: "NDProtocol"
    horizon: int
    model: "ReceptionModel"
    turnaround: int = 0


class SweepBackend(ABC):
    """One offset-evaluation kernel.

    The contract mirrors :func:`repro.simulation.analytic.evaluate_offsets`:
    ``evaluate_offsets_batch(params, offsets)`` returns one
    :class:`DiscoveryOutcome` per offset, in input order, **bit-identical**
    to the exact serial computation for every protocol pair, reception
    model and turnaround guard.  Implementations may precompute patterns,
    vectorize, or shard across processes -- but never change results.
    """

    #: Registry name; also what `ParallelSweep` ships to worker processes.
    name: str = "abstract"

    @classmethod
    def available(cls) -> bool:
        """Can this backend run in the current environment?"""
        return True

    @abstractmethod
    def evaluate_offsets_batch(
        self, params: SweepParams, offsets: Sequence[int]
    ) -> "list[DiscoveryOutcome]":
        """Evaluate both-direction discovery at every offset, in order."""

    def enumerate_critical_offsets(
        self,
        params: SweepParams,
        omega: int | None = None,
        max_count: int = 200_000,
    ) -> list[int]:
        """The pair's critical phase offsets, sorted ascending.

        The second kernel-dispatched operation (PR 5): the breakpoint
        enumeration that feeds ``verified_worst_case`` and
        ``sampling="critical"`` sweeps.  Reads ``params.protocol_e`` /
        ``params.protocol_f`` and ``params.turnaround`` -- a non-zero
        turnaround adds the receiver self-blocking guard edges to the
        breakpoint set (horizon and model still do not affect where the
        discovery-time function can change); ``omega`` adds the
        packet-length shifted window bounds and ``max_count`` is the
        explosion guard.  The contract mirrors
        :meth:`evaluate_offsets_batch`: every implementation must
        return the **bit-identical** sorted offset list -- and raise
        :class:`CriticalSetTooLarge` for the same oversized
        configurations -- as the pure-python reference
        (:func:`repro.backends.python_loop.enumerate_critical_offsets_reference`),
        which this default delegates to.
        """
        from .python_loop import enumerate_critical_offsets_reference

        return enumerate_critical_offsets_reference(
            params.protocol_e,
            params.protocol_f,
            omega,
            max_count,
            params.turnaround,
        )

    def close(self) -> None:
        """Release backend-held resources (worker pools, buffers).

        Stateless kernels need nothing; the pooled backend shuts its
        persistent executor down here.  Idempotent.
        """


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_FACTORIES: dict[str, Callable[[], SweepBackend]] = {}
_INSTANCES: dict[str, SweepBackend] = {}


def register_backend(name: str, factory: Callable[[], SweepBackend]) -> None:
    """Register ``factory`` under ``name`` (replacing any previous one).

    ``factory`` is a zero-argument callable returning a
    :class:`SweepBackend`; it may also expose ``available()`` (classes
    do, via the classmethod) to gate environment-dependent backends,
    and ``self_managed = True`` to opt out of the singleton cache.
    """
    _FACTORIES[name] = factory
    # Re-registration must win: drop any singleton the old factory made.
    _INSTANCES.pop(name, None)


def is_registered(name: str) -> bool:
    """Is ``name`` a registered backend (available or not)?"""
    return name in _FACTORIES


def available_backends() -> list[str]:
    """Names of registered backends that can run right now."""
    return [
        name
        for name, factory in _FACTORIES.items()
        if getattr(factory, "available", lambda: True)()
    ]


def default_backend_name() -> str:
    """Auto-detection: ``native`` when Numba (and NumPy) are importable,
    else ``numpy`` when NumPy is, ``python`` fallback."""
    if _numba.numba is not None and _np.np is not None:
        return "native"
    return "numpy" if _np.np is not None else "python"


def get_backend(name: str) -> SweepBackend:
    """The shared instance registered under ``name``.

    Stateless kernels are process-wide singletons; ``pooled`` resolves to
    the shared default persistent-pool backend (see
    :func:`repro.backends.pooled.get_pooled_backend` for custom pools).
    Raises :class:`KeyError` for unknown names and
    :class:`BackendUnavailable` for registered-but-unavailable ones.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep backend {name!r}; registered: "
            f"{sorted(_FACTORIES)}"
        ) from None
    if not getattr(factory, "available", lambda: True)():
        hint = ""
        if name == "numpy":
            hint = (
                " (NumPy not importable; `pip install repro-nd[fast]`"
                " or select backend='python')"
            )
        elif name == "native":
            hint = (
                " (Numba not importable; `pip install repro-nd[native]`"
                " or select backend='numpy'/'python')"
            )
        raise BackendUnavailable(
            f"backend {name!r} is not available in this environment" + hint
        )
    if getattr(factory, "self_managed", False):
        # Factories that keep their own instance map (the pooled
        # backend's shape-keyed sharing) resolve fresh every call, so
        # environment-dependent defaults (e.g. the auto-detected inner
        # kernel) can never go stale in a second cache here.
        return factory()
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = factory()
        _INSTANCES[name] = instance
    return instance


def resolve_backend(
    spec: "str | SweepBackend | None",
    jobs: int | None = None,
    mp_context: str | None = None,
) -> SweepBackend:
    """Turn a user-facing backend spec into a backend instance.

    * ``None`` or ``"auto"`` -- auto-detection via
      :func:`default_backend_name`;
    * a registered name -- the shared instance (``"pooled"`` additionally
      honours ``jobs``/``mp_context``, resolving to the shared persistent
      pool for that shape);
    * a :class:`SweepBackend` instance -- passed through unchanged.
    """
    if isinstance(spec, SweepBackend):
        return spec
    if spec is None or spec == "auto":
        spec = default_backend_name()
    if spec == "pooled" and (jobs is not None or mp_context is not None):
        from .pooled import get_pooled_backend

        return get_pooled_backend(jobs=jobs, mp_context=mp_context)
    return get_backend(spec)


def chunk_evenly(items: list, n_chunks: int) -> list[list]:
    """Contiguous, order-preserving partition into at most ``n_chunks``.

    The one chunking rule shared by the per-sweep executor and the
    persistent pool, so merged results always preserve input order.
    """
    n = len(items)
    n_chunks = max(1, min(n_chunks, n))
    size, extra = divmod(n, n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        stop = start + size + (1 if i < extra else 0)
        chunks.append(items[start:stop])
        start = stop
    return chunks


def encode_outcomes(outcomes: "Iterable[DiscoveryOutcome]") -> list[tuple]:
    """Outcome wire format for worker -> parent transport.

    Plain ``(offset, e_by_f, f_by_e)`` tuples: pickling a dataclass
    costs several times a tuple, and at thousands of outcomes per sweep
    the difference is measurable.  The one encode/decode pair shared by
    the per-sweep executor and the persistent pool, so the format (and
    its field order) is defined exactly once.
    """
    return [
        (o.offset, o.e_discovered_by_f, o.f_discovered_by_e)
        for o in outcomes
    ]


def decode_outcomes(rows: Iterable[tuple]) -> "list[DiscoveryOutcome]":
    """Inverse of :func:`encode_outcomes`: rebuild field-for-field, so
    callers see exactly the serial path's objects."""
    from ..simulation.analytic import DiscoveryOutcome

    return [
        DiscoveryOutcome(
            offset=offset,
            e_discovered_by_f=e_by_f,
            f_discovered_by_e=f_by_e,
        )
        for offset, e_by_f, f_by_e in rows
    ]
