"""Command-line interface: quick access to bounds, synthesis and simulation.

Installed as ``repro-nd``.  Subcommands::

    repro-nd bound --eta 0.01 --omega 32            # all bounds at a budget
    repro-nd synthesize --eta 0.01 --omega 32       # build + verify a schedule
    repro-nd simulate --eta 0.01 --devices 5        # a dense-network run
    repro-nd sweep --eta 0.01 --jobs 4              # exact offset sweep
    repro-nd validate --eta 0.01 --jobs 4           # analytic + DES cross-check
    repro-nd grid --devices 3,5,10 --jobs 4         # scenario-grid batch run
    repro-nd protocols --duty-cycle 0.05            # protocol-zoo comparison
    repro-nd campaign run campaigns/golden.json     # resumable campaign
    repro-nd campaign status campaigns/golden.json  # store-membership view
    repro-nd campaign gc --ttl 604800               # store eviction
    repro-nd serve --port 7643 --workers 2          # sweep-service daemon
    repro-nd submit --port 7643 --campaign campaigns/golden.json
    repro-nd store stats                            # store introspection

Every runtime-using subcommand (``simulate``, ``sweep``, ``validate``,
``grid``) runs on one :class:`repro.api.Session` built from a single
shared :class:`repro.api.RuntimeProfile`, declared once via the common
runtime flags instead of per-subcommand plumbing:

* ``--profile PATH`` loads a profile from TOML or JSON (the deployment
  story: describe the runtime once, reuse it across every command and
  machine);
* ``--jobs N``, ``--backend {auto,python,numpy,native,pooled}``,
  ``--schedule {steal,chunk}`` and ``--mp-context`` override individual
  profile fields for one invocation.

Results are bit-identical for every profile: ``--jobs``/``--backend``/
``--schedule`` only change how fast the answer arrives.  Session-owned
resources (persistent ``pooled`` worker pools, shared-memory segments)
are shut down deterministically when the command's session exits.
"""

from __future__ import annotations

import argparse
import sys

from . import core
from .analysis import format_seconds, format_table
from .protocols import Diffcodes, Disco, Role, Searchlight, UConnect
from .simulation import ReceptionModel


def _cmd_bound(args: argparse.Namespace) -> int:
    omega, eta, alpha = args.omega, args.eta, args.alpha
    rows = [
        ["Unidirectional (Thm 5.4, optimal split)",
         core.unidirectional_bound(
             omega,
             core.optimal_split(eta, alpha).beta,
             core.optimal_split(eta, alpha).gamma,
         )],
        ["Symmetric two-way (Thm 5.5)", core.symmetric_bound(omega, eta, alpha)],
        ["One-way mutual-exclusive (Thm C.1)", core.one_way_bound(omega, eta, alpha)],
    ]
    if args.beta_max is not None:
        rows.append(
            [f"Channel-constrained (Thm 5.6, beta_max={args.beta_max:g})",
             core.constrained_bound(omega, eta, args.beta_max, alpha)]
        )
    print(
        format_table(
            ["bound", "latency"],
            [[name, format_seconds(value)] for name, value in rows],
            title=f"Fundamental bounds at eta={eta:g}, omega={omega} us, alpha={alpha:g}",
        )
    )
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    protocol, design = core.synthesize_symmetric(args.omega, args.eta, args.alpha)
    print(f"protocol      : {protocol.name}")
    print(f"beacon gap    : {design.beacons.period} us (beta={design.beta:.6f})")
    print(
        f"scan window   : {design.reception.windows[0].duration} us every "
        f"{design.reception.period} us (gamma={design.gamma:.6f})"
    )
    print(f"achieved eta  : {protocol.eta:.6f} (requested {args.eta:g})")
    print(f"deterministic : {design.deterministic}   disjoint: {design.disjoint}")
    print(f"worst-case L  : {format_seconds(design.worst_case_latency)}")
    print(
        f"bound at eta  : "
        f"{format_seconds(core.symmetric_bound(args.omega, protocol.eta, args.alpha))}"
    )
    return 0


def _profile_from_args(args: argparse.Namespace):
    """The one RuntimeProfile every runtime subcommand runs under:
    ``--profile`` file (or the environment default), with explicit
    runtime flags overriding individual fields."""
    from .api import RuntimeProfile

    profile = (
        RuntimeProfile.load(args.profile)
        if getattr(args, "profile", None)
        else RuntimeProfile.default()
    )
    overrides = {}
    for name in ("jobs", "backend", "schedule", "mp_context"):
        value = getattr(args, name, None)
        if value is not None:
            overrides[name] = value
    return profile.replace(**overrides) if overrides else profile


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .api import RunSpec, Session

    spec = RunSpec(
        scenario={
            "factory": "dense_network",
            "params": {
                "n_devices": args.devices,
                "eta": args.eta,
                "omega": args.omega,
                "seed": args.seed,
            },
        },
        seed=args.seed,
    )
    with Session(_profile_from_args(args)) as session:
        result = session.simulate(spec)
    payload = result.payload
    print(payload["description"])
    print(
        f"pairs discovered : {payload['pairs_discovered']}"
        f"/{payload['pairs_expected']} "
        f"({payload['discovery_rate']:.1%})"
    )
    print(f"transmissions    : {payload['total_transmissions']}")
    print(f"collision events : {payload['total_collisions']}")
    print(f"median latency   : {format_seconds(payload['median_latency'])}")
    return 0


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .api import RunSpec, Session

    spec = RunSpec(
        pair={
            "kind": "symmetric",
            "eta": args.eta,
            "omega": args.omega,
            "alpha": args.alpha,
        },
        samples=args.samples,
        horizon_multiple=args.horizon_multiple,
        model=args.model,
        turnaround=args.turnaround,
    )
    with Session(_profile_from_args(args)) as session:
        result = session.sweep(spec)
    report = result.raw
    print(
        f"protocol         : {result.payload['protocols'][0]} "
        f"(eta={result.payload['eta'][0]:.6f})"
    )
    print(
        f"offsets evaluated: {report.offsets_evaluated} "
        f"(jobs={result.profile['jobs']}, backend={result.backend})"
    )
    print(f"failures         : {report.failures}")
    print(
        f"worst one-way    : {format_seconds(report.worst_one_way)} "
        f"@ offset {report.worst_offset_one_way}"
    )
    print(
        f"worst two-way    : {format_seconds(report.worst_two_way)} "
        f"@ offset {report.worst_offset_two_way}"
    )
    if report.mean_one_way is not None:
        print(f"mean one-way     : {format_seconds(report.mean_one_way)}")
    if report.mean_two_way is not None:
        print(f"mean two-way     : {format_seconds(report.mean_two_way)}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .api import RunSpec, Session

    spec = RunSpec(
        pair={
            "kind": "symmetric",
            "eta": args.eta,
            "omega": args.omega,
            "alpha": args.alpha,
        },
        horizon_multiple=args.horizon_multiple,
        omega=args.omega,
        turnaround=args.turnaround,
        fidelity=args.fidelity,
        budget_ms=args.budget_ms,
    )
    with Session(_profile_from_args(args)) as session:
        result = session.worst_case(spec)
    outcome = result.raw
    name, eta = result.payload["protocols"][0], result.payload["eta"][0]
    bound = core.symmetric_bound(args.omega, eta, args.alpha)
    print(f"protocol         : {name} (eta={eta:.6f})")
    print(
        f"offsets checked  : {outcome.offsets_checked} "
        f"(jobs={result.profile['jobs']}, backend={result.backend})"
    )
    print(f"worst one-way    : {format_seconds(outcome.analytic.worst_one_way)}")
    print(f"bound (Thm 5.5)  : {format_seconds(bound)}")
    fidelity_line = outcome.fidelity
    if outcome.budget_ms is not None:
        fidelity_line += f" (budget {outcome.budget_ms:g} ms)"
    if outcome.fallback_used:
        fidelity_line += " [sampled fallback]"
    print(f"fidelity         : {fidelity_line}")
    if outcome.fidelity != "exact" and outcome.bound_interval is not None:
        lo, hi = outcome.bound_interval
        print(
            f"bound interval   : "
            f"[{format_seconds(lo) if lo is not None else '-'}, "
            f"{format_seconds(hi) if hi is not None else '-'}]"
        )
    ran = [t["tier"] for t in outcome.tiers if t.get("ran")]
    if ran:
        print(f"tiers ran        : {', '.join(ran)}")
    print(f"DES agrees       : {outcome.des_agrees}")
    if not outcome.des_agrees:
        print("FAIL: event-driven simulation disagrees with analytic sweep")
        return 1
    return 0


def _int_list(value: str) -> list[int]:
    try:
        items = [int(item) for item in value.split(",") if item]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not a comma-list of ints: {value!r}") from exc
    if not items:
        raise argparse.ArgumentTypeError("expected at least one integer")
    return items


def _float_list(value: str) -> list[float]:
    try:
        items = [float(item) for item in value.split(",") if item]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not a comma-list of floats: {value!r}") from exc
    if not items:
        raise argparse.ArgumentTypeError("expected at least one number")
    return items


def _cmd_grid(args: argparse.Namespace) -> int:
    from .api import RunSpec, Session

    spec = RunSpec(
        grid={
            "factory": "dense_network",
            "axes": {
                "n_devices": args.devices,
                "eta": args.etas,
                "omega": [args.omega],
                "seed": [args.seed],
            },
        },
        seed=args.seed,
    )
    profile = _profile_from_args(args)
    if args.save_profile and not args.profile:
        from .api import SpecError

        raise SpecError("--save-profile needs --profile PATH to write back to")
    if args.calibrate or args.save_profile:
        profile = profile.replace(auto_calibrate=True)
    with Session(profile) as session:
        result = session.grid(spec)
    rows = []
    for name, network in zip(result.payload["scenarios"], result.raw):
        median = network.quantile(0.5)
        rows.append([
            name,
            f"{network.pairs_discovered}/{network.pairs_expected}",
            f"{network.discovery_rate:.1%}",
            format_seconds(median) if median is not None else "-",
            network.total_collisions,
        ])
    print(
        format_table(
            ["scenario", "pairs", "rate", "median latency", "collisions"],
            rows,
            title=(
                f"{len(rows)} scenarios (jobs={result.profile['jobs']}, "
                f"schedule={result.profile['schedule']})"
            ),
        )
    )
    calibration = result.payload.get("calibration")
    if calibration is not None:
        w_beacon, w_window = calibration["cost_weights"]
        print(
            f"calibrated cost weights: beacon={w_beacon:.3e}, "
            f"window={w_window:.3e} (from {calibration['samples']} "
            f"scenario timings)"
        )
    if args.save_profile:
        from .api import RuntimeProfile

        # Persist only the fitted weights into the *file* profile, not
        # this invocation's one-shot flag overrides.
        original = RuntimeProfile.load(args.profile)
        path = original.replace(
            cost_weights=session.profile.cost_weights
        ).save(args.profile)
        print(f"calibrated cost weights saved to {path}")
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from .campaign import Campaign, CampaignRunner
    from .store import ResultStore

    campaign = Campaign.from_file(args.file)
    runner = CampaignRunner(
        campaign,
        ResultStore(args.store),
        profile=_profile_from_args(args),
        manifest_path=args.manifest,
    )
    manifest = runner.run(max_runs=args.max_runs, entry_jobs=args.entry_jobs)
    print(
        f"campaign {manifest['campaign']!r}: {manifest['total']} entries -- "
        f"{manifest['executed']} executed, {manifest['hits']} store hits, "
        f"{manifest['failed']} failed"
    )
    print(f"manifest: {runner.manifest_path}")
    if manifest["failed"]:
        for record in manifest["entries"]:
            if record["status"] == "failed":
                print(f"  FAILED {record['label']}: {record.get('error')}")
        return 1
    if not manifest["complete"]:
        # --max-runs left work behind: re-run the same command to resume.
        remaining = sum(
            1 for r in manifest["entries"] if r["status"] != "done"
        )
        print(f"incomplete: {remaining} entries remaining (re-run to resume)")
        return 3
    print("complete")
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from .campaign import Campaign, CampaignRunner
    from .store import ResultStore

    campaign = Campaign.from_file(args.file)
    runner = CampaignRunner(
        campaign, ResultStore(args.store), manifest_path=args.manifest
    )
    status = runner.status()
    if args.json:
        import json

        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(
            f"campaign {status['campaign']!r}: {status['stored']}"
            f"/{status['total']} stored in {status['store']}"
        )
        for item in status["missing"]:
            print(f"  missing {item['label']}")
    return 0 if status["complete"] else 3


def _cmd_campaign_gc(args: argparse.Namespace) -> int:
    from .store import ResultStore

    report = ResultStore(args.store).gc(
        max_entries=args.max_entries,
        ttl_seconds=args.ttl,
        dry_run=args.dry_run,
    )
    verb = "would remove" if report["dry_run"] else "removed"
    print(
        f"store {args.store}: scanned {report['scanned']}, {verb} "
        f"{len(report['removed'])}, kept {report['kept']}"
    )
    return 0


def _cmd_store_stats(args: argparse.Namespace) -> int:
    from .store import ResultStore

    payload = ResultStore(args.store).stats_payload()
    if args.json:
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    counters = payload["counters"]
    print(f"store {payload['root']}:")
    print(f"  objects     : {payload['objects']} "
          f"({payload['total_bytes']} bytes)")
    print(f"  quarantined : {payload['quarantined']}")
    print(f"  memory LRU  : {payload['memory']['entries']}"
          f"/{payload['memory']['limit']} entries")
    print(f"  counters    : hits={counters['hits']} "
          f"misses={counters['misses']} writes={counters['writes']} "
          f"corrupt={counters['corrupt']}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .service import SweepServer, SweepService

    profile = _profile_from_args(args)

    async def run() -> int:
        service = SweepService(
            profile,
            store=args.store,
            workers=args.workers,
            queue_limit=args.queue_limit,
            job_timeout=args.job_timeout,
            max_retries=args.max_retries,
        )
        await service.start()
        server = SweepServer(service, args.host, args.port)
        await server.start()
        print(
            f"repro-nd service listening on {server.host}:{server.port} "
            f"(store={args.store}, workers={args.workers}, "
            f"backend={profile.backend}, jobs={profile.jobs})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()

        def request_stop(signum: int) -> None:
            print(
                f"repro-nd service stopping ({signal.Signals(signum).name})",
                flush=True,
            )
            stop.set()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, request_stop, signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix event loops: Ctrl-C still raises
        try:
            await stop.wait()
        finally:
            await server.stop()
            await service.stop()
        print("repro-nd service stopped", flush=True)
        return 0

    return asyncio.run(run())


def _cmd_submit(args: argparse.Namespace) -> int:
    import asyncio
    import json
    from pathlib import Path

    from .api import SpecError
    from .service import RemoteClient, RemoteError

    if bool(args.campaign) == bool(args.spec_json or args.spec_file):
        raise SpecError(
            "submit needs exactly one of --campaign FILE or a spec "
            "(--spec-json / --spec-file with --verb)"
        )
    if args.stream and args.campaign:
        raise SpecError("--stream follows one job; not usable with --campaign")

    def show(label: str, response: dict) -> bool:
        job = response.get("job", {})
        if not response.get("ok", False):
            error = response.get("error", {})
            print(f"FAILED {label}: {error.get('type')}: "
                  f"{error.get('message')}")
            return False
        meta = response.get("store_meta") or {}
        state = job.get("state", "submitted")
        source = job.get("source") or ("hit" if meta.get("hit") else None)
        line = f"{job.get('id', '?')} {label}: {state}"
        if source:
            line += f" ({source})"
        if meta.get("fingerprint"):
            line += f" fingerprint={meta['fingerprint'][:12]}"
        print(line)
        return True

    async def run() -> int:
        async with await RemoteClient.connect(args.host, args.port) as client:
            failures = 0
            if args.campaign:
                from .campaign import Campaign

                campaign = Campaign.from_file(args.campaign)
                responses = []
                for entry in campaign.expand():
                    try:
                        response = await client.submit(
                            entry.verb,
                            entry.spec,
                            priority=args.priority,
                            wait=not args.no_wait,
                        )
                    except RemoteError as exc:
                        response = {"ok": False, "error": exc.payload}
                    responses.append((entry.label, response))
                for label, response in responses:
                    if not show(label, response):
                        failures += 1
                print(f"{len(responses) - failures}/{len(responses)} "
                      f"entries ok")
                return 1 if failures else 0
            spec = (
                json.loads(args.spec_json)
                if args.spec_json
                else json.loads(Path(args.spec_file).read_text())
            )
            if args.stream:
                # Admit without waiting, then follow the job's event
                # stream to the terminal summary frame.
                try:
                    response = await client.submit(
                        args.verb, spec, priority=args.priority, wait=False
                    )
                except RemoteError as exc:
                    show(args.verb, {"ok": False, "error": exc.payload})
                    return 1
                job_id = response.get("job", {}).get("id")
                summary = None
                async for frame in client.stream(job_id):
                    if frame.get("done"):
                        summary = frame.get("job", {})
                        break
                    event = frame.get("event", {})
                    line = f"{event.get('job', job_id)} {event.get('kind', '?')}"
                    if event.get("data"):
                        line += " " + json.dumps(
                            event["data"], sort_keys=True, default=str
                        )
                    print(line, flush=True)
                summary = summary or {}
                ok = summary.get("state") == "done"
                line = f"{job_id} {args.verb}: {summary.get('state', '?')}"
                if summary.get("source"):
                    line += f" ({summary['source']})"
                if summary.get("error"):
                    line += f" error={summary['error']}"
                print(line)
                if ok and args.json:
                    result = await client.result(job_id)
                    print(json.dumps(result.get("result"), indent=2,
                                     sort_keys=True))
                return 0 if ok else 1
            try:
                response = await client.submit(
                    args.verb, spec,
                    priority=args.priority,
                    wait=not args.no_wait,
                )
            except RemoteError as exc:
                response = {"ok": False, "error": exc.payload}
            ok = show(args.verb, response)
            if ok and response.get("result") and args.json:
                print(json.dumps(response["result"], indent=2,
                                 sort_keys=True))
            return 0 if ok else 1

    return asyncio.run(run())


def _cmd_protocols(args: argparse.Namespace) -> int:
    slot = args.slot_length
    zoo = [
        Disco(37, 43, slot_length=slot),
        UConnect(31, slot_length=slot),
        Searchlight(40, slot_length=slot),
        Diffcodes(7, slot_length=slot),
    ]
    rows = []
    for proto in zoo:
        device = proto.device(Role.E)
        rows.append(
            [
                proto.info().name,
                f"{device.eta:.4f}",
                f"{device.beta:.5f}",
                format_seconds(proto.predicted_worst_case_latency()),
            ]
        )
    print(
        format_table(
            ["protocol", "eta", "beta", "worst-case L"],
            rows,
            title=f"Protocol zoo at slot length {slot} us",
        )
    )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    """Regenerate the closed-form paper artifacts (FIG6, FIG7, TAB1,
    EQ18-19, APPB) as CSVs without the pytest harness."""
    from pathlib import Path

    from .analysis import write_csv
    from .core.bounds import symmetric_bound
    from .core.collisions import constrained_latency_curve, optimize_redundancy
    from .core.slotted_bounds import (
        slotted_bound_one_beacon,
        slotted_bound_two_beacons,
        TABLE1_PROTOCOLS,
    )
    from .core.bounds import asymmetric_bound, constrained_bound

    out = Path(args.output_dir)
    omega = args.omega * 1e-6  # seconds

    # FIG6: latency-energy product vs asymmetry.
    sums = [0.005, 0.01, 0.02, 0.05, 0.1, 0.2]
    ratios = [1, 2, 5, 10]
    rows = []
    for total in sums:
        row = [total]
        for ratio in ratios:
            eta_e = total * ratio / (1 + ratio)
            eta_f = total / (1 + ratio)
            row.append(asymmetric_bound(omega, eta_e, eta_f) * total)
        rows.append(row)
    write_csv(out / "fig6-ratio.csv",
              ["eta_E+eta_F"] + [f"L*sum @ {r}:1" for r in ratios], rows)

    # FIG7: collision-constrained bounds.
    etas = [round(10 ** (-3 + i * 0.125), 10) for i in range(25) if 10 ** (-3 + i * 0.125) <= 1]
    senders = [2, 10, 100, 1000]
    rows = []
    for eta in etas:
        row = [eta, symmetric_bound(omega, eta)]
        for s in senders:
            row.append(constrained_latency_curve([eta], 0.01, s, omega)[0][1])
        rows.append(row)
    write_csv(out / "fig7.csv",
              ["eta", "unconstrained"] + [f"S={s}" for s in senders], rows)

    # TAB1: slotted-protocol latencies.
    grid = [(0.01, 0.001), (0.02, 0.002), (0.05, 0.005), (0.05, 0.02), (0.1, 0.01)]
    rows = []
    for eta, beta in grid:
        row = [eta, beta, constrained_bound(omega, eta, beta)]
        row += [f(omega, eta, beta) for f in TABLE1_PROTOCOLS.values()]
        rows.append(row)
    write_csv(out / "tab1.csv",
              ["eta", "beta", "bound"] + list(TABLE1_PROTOCOLS), rows)

    # EQ18/19: alpha sweep.
    alphas = [0.25, 0.4, 0.5, 0.7071, 0.8, 1.0, 1.5, 2.0, 3.0]
    rows = [
        [a, symmetric_bound(omega, 0.01, a),
         slotted_bound_one_beacon(omega, 0.01, a),
         slotted_bound_two_beacons(omega, 0.01, a)]
        for a in alphas
    ]
    write_csv(out / "eq18-19.csv",
              ["alpha", "fundamental", "eq18", "eq19"], rows)

    # APPB: the worked example.
    plan = optimize_redundancy(0.05, 0.0005, 3, omega)
    write_csv(out / "appb-example.csv",
              ["Q", "beta", "gamma", "L'(Pf)", "L_pair", "Pc"],
              [[plan.redundancy, plan.beta, plan.gamma, plan.latency,
                plan.pair_latency, plan.per_beacon_collision_prob]])

    print(f"wrote fig6-ratio, fig7, tab1, eq18-19, appb-example under {out}/")
    return 0


def _runtime_flags() -> argparse.ArgumentParser:
    """The shared runtime-flag parent parser.

    Declared once and attached to every runtime-using subcommand, so no
    subcommand re-declares ``--jobs``/``--backend``/... -- the flags
    exist purely as per-invocation overrides of the one
    :class:`repro.api.RuntimeProfile` (``--profile`` / environment
    default) the command's session runs under.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("runtime (RuntimeProfile overrides)")
    group.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help=(
            "load a repro.api.RuntimeProfile from a TOML or JSON file; "
            "explicit runtime flags override its fields"
        ),
    )
    group.add_argument(
        "--jobs", type=_positive_int, default=None,
        help="worker processes (profile default: 1 = serial)",
    )
    group.add_argument(
        "--backend",
        choices=["auto", "python", "numpy", "native", "pooled"],
        default=None,
        help=(
            "sweep + critical-offset-enumeration kernel: auto = "
            "Numba-compiled native kernel when Numba is importable, "
            "else NumPy-vectorized when NumPy is (python fallback); "
            "pooled = persistent worker pool (with its shared-memory "
            "pattern arena) owned by the command's session; results "
            "are bit-identical"
        ),
    )
    group.add_argument(
        "--schedule", choices=["steal", "chunk"], default=None,
        help="grid scheduling: work-stealing (cost-sorted) or chunked",
    )
    group.add_argument(
        "--mp-context", choices=["fork", "spawn", "forkserver"], default=None,
        help="multiprocessing start method (default: platform choice)",
    )
    return parent


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-nd`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-nd",
        description="Optimal neighbor discovery: bounds, schedules, simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    runtime = _runtime_flags()

    p_bound = sub.add_parser("bound", help="evaluate the fundamental bounds")
    p_bound.add_argument("--eta", type=float, required=True)
    p_bound.add_argument("--omega", type=int, default=32)
    p_bound.add_argument("--alpha", type=float, default=1.0)
    p_bound.add_argument("--beta-max", type=float, default=None)
    p_bound.set_defaults(func=_cmd_bound)

    p_syn = sub.add_parser("synthesize", help="build a bound-attaining schedule")
    p_syn.add_argument("--eta", type=float, required=True)
    p_syn.add_argument("--omega", type=int, default=32)
    p_syn.add_argument("--alpha", type=float, default=1.0)
    p_syn.set_defaults(func=_cmd_synthesize)

    p_sim = sub.add_parser(
        "simulate", parents=[runtime],
        help="run a dense-network simulation",
    )
    p_sim.add_argument("--devices", type=int, default=5)
    p_sim.add_argument("--eta", type=float, default=0.02)
    p_sim.add_argument("--omega", type=int, default=32)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)

    p_sweep = sub.add_parser(
        "sweep", parents=[runtime],
        help="exact phase-offset sweep of a synthesized pair",
    )
    p_sweep.add_argument("--eta", type=float, required=True)
    p_sweep.add_argument("--omega", type=int, default=32)
    p_sweep.add_argument("--alpha", type=float, default=1.0)
    p_sweep.add_argument("--samples", type=_positive_int, default=2048)
    p_sweep.add_argument("--horizon-multiple", type=_positive_int, default=3)
    p_sweep.add_argument("--turnaround", type=int, default=0)
    p_sweep.add_argument(
        "--model",
        choices=[m.value for m in ReceptionModel],
        default=ReceptionModel.POINT.value,
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_val = sub.add_parser(
        "validate", parents=[runtime],
        help="verified worst case: analytic sweep + DES cross-check",
    )
    p_val.add_argument("--eta", type=float, required=True)
    p_val.add_argument("--omega", type=int, default=32)
    p_val.add_argument("--alpha", type=float, default=1.0)
    p_val.add_argument("--horizon-multiple", type=_positive_int, default=3)
    p_val.add_argument("--turnaround", type=int, default=0)
    p_val.add_argument(
        "--budget-ms", type=float, default=None,
        help=(
            "per-query compute budget in milliseconds: run the adaptive "
            "fidelity ladder (bounded verdict allowed) instead of the "
            "always-exact engine"
        ),
    )
    p_val.add_argument(
        "--fidelity", choices=["exact", "bounded", "auto"], default="auto",
        help=(
            "worst-case fidelity policy; 'auto' (default) is exact "
            "without --budget-ms and budgeted with it"
        ),
    )
    p_val.set_defaults(func=_cmd_validate)

    p_grid = sub.add_parser(
        "grid", parents=[runtime],
        help="batch-run a dense-network scenario grid",
    )
    p_grid.add_argument(
        "--devices", type=_int_list, default=[3, 5],
        help="comma-separated device counts, one grid axis (e.g. 3,5,10)",
    )
    p_grid.add_argument(
        "--etas", type=_float_list, default=[0.02],
        help="comma-separated duty-cycles, the other grid axis",
    )
    p_grid.add_argument("--omega", type=int, default=32)
    p_grid.add_argument("--seed", type=int, default=0)
    p_grid.add_argument(
        "--calibrate", action="store_true",
        help=(
            "re-fit the grid scheduler's cost weights from this run's "
            "own per-scenario timings (auto-calibration)"
        ),
    )
    p_grid.add_argument(
        "--save-profile", action="store_true",
        help=(
            "write the calibrated cost weights back into the --profile "
            "file (implies --calibrate; requires --profile)"
        ),
    )
    p_grid.set_defaults(func=_cmd_grid)

    p_camp = sub.add_parser(
        "campaign",
        help="run/inspect resumable experiment campaigns over a result store",
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    c_run = camp_sub.add_parser(
        "run", parents=[runtime],
        help=(
            "execute a campaign file; entries already in the store are "
            "skipped, so re-running resumes an interrupted campaign"
        ),
    )
    c_run.add_argument("file", help="campaign definition (TOML or JSON)")
    c_run.add_argument(
        "--store", default="results/store",
        help="result-store directory (default: results/store)",
    )
    c_run.add_argument(
        "--manifest", default=None,
        help="manifest path (default: results/campaigns/<name>.json)",
    )
    c_run.add_argument(
        "--max-runs", type=_positive_int, default=None,
        help="cap on *executed* (non-hit) entries this invocation",
    )
    c_run.add_argument(
        "--entry-jobs", type=_positive_int, default=None,
        help=(
            "execute lattice entries over this many work-stealing worker "
            "threads (longest estimated entry first); default serial"
        ),
    )
    c_run.set_defaults(func=_cmd_campaign_run)

    c_status = camp_sub.add_parser(
        "status", help="store-membership status of a campaign (no execution)"
    )
    c_status.add_argument("file", help="campaign definition (TOML or JSON)")
    c_status.add_argument("--store", default="results/store")
    c_status.add_argument("--manifest", default=None)
    c_status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    c_status.set_defaults(func=_cmd_campaign_status)

    c_gc = camp_sub.add_parser(
        "gc", help="evict stale result-store entries (TTL and/or LRU cap)"
    )
    c_gc.add_argument("--store", default="results/store")
    c_gc.add_argument(
        "--max-entries", type=_positive_int, default=None,
        help="keep at most N newest entries",
    )
    c_gc.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="evict entries older than SECONDS",
    )
    c_gc.add_argument("--dry-run", action="store_true")
    c_gc.set_defaults(func=_cmd_campaign_gc)

    p_store = sub.add_parser(
        "store", help="inspect the content-addressed result store"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    s_stats = store_sub.add_parser(
        "stats",
        help=(
            "object count, total bytes, quarantine count and memory-LRU "
            "hit/miss counters (the service 'stats' verb serves the same "
            "payload)"
        ),
    )
    s_stats.add_argument("--store", default="results/store")
    s_stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    s_stats.set_defaults(func=_cmd_store_stats)

    p_serve = sub.add_parser(
        "serve", parents=[runtime],
        help=(
            "run the sweep-service daemon: JSON-lines-over-TCP job API "
            "with store-hit fast path and single-flight dedup"
        ),
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7643,
        help="TCP port (0 = ephemeral, printed on startup)",
    )
    p_serve.add_argument(
        "--store", default="results/store",
        help="result-store directory shared by every worker session",
    )
    p_serve.add_argument(
        "--workers", type=_positive_int, default=2,
        help="concurrent compute slots (one worker session each)",
    )
    p_serve.add_argument(
        "--queue-limit", type=_positive_int, default=64,
        help="bounded admission queue depth (full = ServiceOverload)",
    )
    p_serve.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock deadline (default: none)",
    )
    p_serve.add_argument(
        "--max-retries", type=int, default=2,
        help="crash-class retries per job beyond the first attempt",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help=(
            "submit work to a running sweep-service daemon (single spec "
            "or a whole campaign as a job batch)"
        ),
    )
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=7643)
    p_submit.add_argument(
        "--verb", choices=["sweep", "worst_case", "grid", "simulate"],
        default="sweep",
    )
    p_submit.add_argument(
        "--spec-json", default=None, metavar="JSON",
        help="inline RunSpec mapping, e.g. "
             '\'{"pair": {"kind": "symmetric", "eta": 0.01}}\'',
    )
    p_submit.add_argument(
        "--spec-file", default=None, metavar="PATH",
        help="path to a JSON RunSpec mapping",
    )
    p_submit.add_argument(
        "--campaign", default=None, metavar="FILE",
        help="submit every expanded entry of a campaign file as one job",
    )
    p_submit.add_argument("--priority", type=int, default=0)
    p_submit.add_argument(
        "--no-wait", action="store_true",
        help="return job ids immediately instead of waiting for results",
    )
    p_submit.add_argument(
        "--json", action="store_true",
        help="print the full result payload (single-spec submits)",
    )
    p_submit.add_argument(
        "--stream", action="store_true",
        help=(
            "follow the job's event stream live (submitted / running / "
            "progress / retry / done) instead of waiting silently; "
            "single-spec submits only"
        ),
    )
    p_submit.set_defaults(func=_cmd_submit)

    p_zoo = sub.add_parser("protocols", help="compare the protocol zoo")
    p_zoo.add_argument("--slot-length", type=int, default=10_000)
    p_zoo.set_defaults(func=_cmd_protocols)

    p_fig = sub.add_parser(
        "figures", help="regenerate the closed-form paper figures as CSV"
    )
    p_fig.add_argument("--output-dir", default="results")
    p_fig.add_argument("--omega", type=int, default=32)
    p_fig.set_defaults(func=_cmd_figures)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:
        from .api import SpecError
        from .backends import BackendUnavailable

        if isinstance(exc, (BackendUnavailable, SpecError)):
            # e.g. --backend numpy on a base install, or a malformed
            # --profile file: a clean one-line error like any other bad
            # flag, not a traceback.
            parser.exit(2, f"{parser.prog}: error: {exc}\n")
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
