"""Declarative experiment configuration: :class:`RunSpec` and
:class:`RuntimeProfile`.

Three PRs of runtime growth left the public surface threading
``backend=``/``jobs=``/``schedule=``/``mp_context=`` kwargs through
every entry point.  This module splits that surface into two
serializable dataclasses with a strict separation of concerns:

* :class:`RunSpec` -- **what** to run: the protocol pair or scenario
  (declaratively, so a spec can live in a JSON file next to its
  results), the reception model, fidelity knobs (turnaround,
  advertising jitter, seed) and the DES spot-check policy.
* :class:`RuntimeProfile` -- **how** to run it: sweep-kernel backend,
  worker count, scheduling discipline, multiprocessing start method,
  cache limits and fitted cost weights.  Profiles load from TOML or
  JSON (``RuntimeProfile.load``), so a deployment describes its runtime
  once instead of re-passing flags at every callsite.

Both reject unknown fields on deserialization -- a typo in a profile
file fails loudly instead of silently running with defaults -- and both
round-trip exactly through ``to_dict``/``from_dict`` and
``to_json``/``from_json``.

Live in-memory objects (``NDProtocol`` pairs, :class:`Scenario` lists)
are also accepted in the ``pair``/``scenario``/``grid`` slots for
programmatic use; such specs run fine but refuse to serialize with a
clear error, since an object graph is not provenance.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "RunSpec",
    "RuntimeProfile",
    "SpecError",
    "build_grid",
    "build_pair",
    "build_scenario",
]


class SpecError(ValueError):
    """A RunSpec/RuntimeProfile is malformed, holds unknown fields, or
    cannot be serialized (live objects in declarative slots)."""


_JSON_SCALARS = (str, int, float, bool, type(None))


def _is_plain_data(value: Any) -> bool:
    """Is ``value`` composed purely of JSON-shaped data?"""
    if isinstance(value, _JSON_SCALARS):
        return True
    if isinstance(value, (list, tuple)):
        return all(_is_plain_data(item) for item in value)
    if isinstance(value, Mapping):
        return all(
            isinstance(key, str) and _is_plain_data(item)
            for key, item in value.items()
        )
    return False


def _plain(value: Any) -> Any:
    """Normalize tuples to lists so the output is JSON-stable."""
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, Mapping):
        return {key: _plain(item) for key, item in value.items()}
    return value


def _from_mapping(cls, data: Mapping) -> Any:
    """Shared strict constructor: reject unknown fields loudly."""
    if not isinstance(data, Mapping):
        raise SpecError(f"{cls.__name__} payload must be a mapping, got {data!r}")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise SpecError(
            f"unknown {cls.__name__} field(s): {sorted(unknown)}; "
            f"known fields: {sorted(known)}"
        )
    return cls(**data)


class _SerializableConfig:
    """The one serialization contract both config dataclasses share.

    Field-driven (``dataclasses.fields``), so subclasses adding fields
    get serialization, strict deserialization and provenance snapshots
    for free -- there is exactly one place live-object detection or
    JSON normalization can ever need fixing.
    """

    def to_dict(self) -> dict:
        """Exact serializable form; raises :class:`SpecError` when a
        field holds live objects instead of declarative data."""
        payload = {}
        for config_field in fields(self):
            value = getattr(self, config_field.name)
            if not _is_plain_data(value):
                raise SpecError(
                    f"{type(self).__name__}.{config_field.name} holds a live "
                    f"object and cannot be serialized; use a declarative "
                    f"description (live values are runtime-only)"
                )
            payload[config_field.name] = _plain(value)
        return payload

    def describe(self) -> dict:
        """Best-effort provenance snapshot: like :meth:`to_dict` but
        live objects degrade to ``repr`` strings instead of raising --
        every :class:`~repro.api.RunResult` can always record
        *something*."""
        payload = {}
        for config_field in fields(self):
            value = getattr(self, config_field.name)
            payload[config_field.name] = (
                _plain(value) if _is_plain_data(value) else repr(value)
            )
        return payload

    @classmethod
    def from_dict(cls, data: Mapping):
        return _from_mapping(cls, data)

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, payload: str):
        return cls.from_dict(json.loads(payload))


# ----------------------------------------------------------------------
# Declarative builders: pair / scenario / grid descriptions -> objects
# ----------------------------------------------------------------------


def build_pair(pair) -> tuple:
    """Resolve a :attr:`RunSpec.pair` description to
    ``(protocol_e, protocol_f, horizon_base)``.

    ``horizon_base`` is the natural latency scale of the pair (the
    synthesized worst-case latency, a zoo protocol's predicted worst
    case, or ``None`` when unknown) -- :class:`~repro.api.Session`
    multiplies it by ``RunSpec.horizon_multiple`` when the spec gives
    no explicit horizon.

    Declarative forms (all JSON-serializable):

    * ``{"kind": "symmetric", "eta": .., "omega": .., "alpha": ..}`` --
      both devices run the bound-attaining symmetric protocol.
    * ``{"kind": "symmetric-split", ...}`` -- same synthesis, split into
      a beacons-only advertiser and a windows-only scanner (the one-way
      validation shape).
    * ``{"kind": "asymmetric", "eta_e": .., "eta_f": .., ...}`` -- the
      Theorem-5.7 gateway/peripheral pair.
    * ``{"kind": "zoo", "protocol": "Disco", "params": {...}}`` -- any
      class exported by :mod:`repro.protocols` with a ``device(Role)``
      factory.

    A 2-sequence of ``NDProtocol`` objects passes through unchanged
    (non-declarative; such specs cannot serialize).
    """
    from ..core.sequences import NDProtocol

    if (
        isinstance(pair, (tuple, list))
        and len(pair) == 2
        and all(isinstance(p, NDProtocol) for p in pair)
    ):
        return pair[0], pair[1], None
    if not isinstance(pair, Mapping):
        raise SpecError(
            f"RunSpec.pair must be a declarative mapping or a pair of "
            f"NDProtocol objects, got {pair!r}"
        )
    spec = dict(pair)
    kind = spec.pop("kind", None)
    if kind in ("symmetric", "symmetric-split"):
        from ..core.optimal import synthesize_symmetric

        protocol, design = synthesize_symmetric(
            spec.pop("omega", 32), spec.pop("eta", 0.01), spec.pop("alpha", 1.0)
        )
        if spec:
            raise SpecError(f"unknown pair parameter(s) for {kind!r}: {sorted(spec)}")
        if kind == "symmetric":
            return protocol, protocol, design.worst_case_latency
        advertiser = NDProtocol(
            beacons=design.beacons, reception=None, name="advertiser"
        )
        scanner = NDProtocol(
            beacons=None, reception=design.reception, name="scanner"
        )
        return advertiser, scanner, design.worst_case_latency
    if kind == "asymmetric":
        from ..core.optimal import synthesize_asymmetric

        gateway, peripheral, design_gp, design_pg = synthesize_asymmetric(
            spec.pop("omega", 32),
            spec.pop("eta_e", 0.1),
            spec.pop("eta_f", 0.01),
            spec.pop("alpha", 1.0),
        )
        if spec:
            raise SpecError(f"unknown pair parameter(s) for {kind!r}: {sorted(spec)}")
        base = max(design_gp.worst_case_latency, design_pg.worst_case_latency)
        return gateway, peripheral, base
    if kind == "zoo":
        from .. import protocols as protocol_zoo
        from ..protocols import Role

        name = spec.pop("protocol", None)
        params = spec.pop("params", {})
        if spec:
            raise SpecError(f"unknown pair parameter(s) for {kind!r}: {sorted(spec)}")
        factory = getattr(protocol_zoo, str(name), None)
        if factory is None:
            raise SpecError(f"unknown zoo protocol {name!r}")
        instance = factory(**params)
        base = None
        predictor = getattr(instance, "predicted_worst_case_latency", None)
        if callable(predictor):
            try:
                base = int(predictor())
            except (TypeError, ValueError, OverflowError):
                base = None
        return instance.device(Role.E), instance.device(Role.F), base
    from ..protocols.registry import pair_kinds, pair_schema

    schema = pair_schema(kind)
    if schema is not None:
        # A family registered via repro.protocols.register_pair_schema:
        # new pair kinds plug in without touching this module.
        try:
            return schema.build(spec)
        except SpecError:
            raise
        except (TypeError, ValueError, KeyError) as exc:
            raise SpecError(
                f"invalid pair parameters for kind {kind!r}: {exc}"
            ) from exc
    raise SpecError(
        f"unknown pair kind {kind!r}; registered kinds: {pair_kinds()}"
    )


def build_scenario(scenario):
    """Resolve a :attr:`RunSpec.scenario` description to a
    :class:`repro.workloads.Scenario`.

    Declarative form: ``{"factory": "dense_network", "params": {...}}``
    where ``factory`` names an entry of
    :data:`repro.workloads.SCENARIO_FACTORIES`.  A ready
    :class:`Scenario` instance passes through unchanged.
    """
    from ..workloads import Scenario, SCENARIO_FACTORIES

    if isinstance(scenario, Scenario):
        return scenario
    if not isinstance(scenario, Mapping):
        raise SpecError(
            f"RunSpec.scenario must be a declarative mapping or a Scenario, "
            f"got {scenario!r}"
        )
    spec = dict(scenario)
    name = spec.pop("factory", None)
    params = spec.pop("params", {})
    if spec:
        raise SpecError(f"unknown scenario key(s): {sorted(spec)}")
    try:
        factory = SCENARIO_FACTORIES[name]
    except KeyError:
        raise SpecError(
            f"unknown scenario factory {name!r}; registered: "
            f"{sorted(SCENARIO_FACTORIES)}"
        ) from None
    return factory(**params)


def build_grid(grid) -> list:
    """Resolve a :attr:`RunSpec.grid` description to a scenario list.

    Declarative form: ``{"factory": "dense_network", "axes": {...}}``
    expanded through :func:`repro.workloads.scenario_grid` (row-major,
    last axis fastest -- the order per-index seeds derive from).  A list
    of :class:`Scenario` objects (or declarative scenario mappings)
    passes through element-wise.
    """
    from ..workloads import scenario_grid, SCENARIO_FACTORIES

    if isinstance(grid, Mapping):
        spec = dict(grid)
        name = spec.pop("factory", None)
        axes = spec.pop("axes", None)
        if spec:
            raise SpecError(f"unknown grid key(s): {sorted(spec)}")
        try:
            factory = SCENARIO_FACTORIES[name]
        except KeyError:
            raise SpecError(
                f"unknown scenario factory {name!r}; registered: "
                f"{sorted(SCENARIO_FACTORIES)}"
            ) from None
        if not isinstance(axes, Mapping) or not axes:
            raise SpecError("grid spec needs a non-empty 'axes' mapping")
        return scenario_grid(factory, **{k: list(v) for k, v in axes.items()})
    if isinstance(grid, (list, tuple)):
        return [build_scenario(item) for item in grid]
    raise SpecError(
        f"RunSpec.grid must be a factory/axes mapping or a scenario list, "
        f"got {grid!r}"
    )


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------

_MODELS = ("point", "any-overlap", "containment")
_SAMPLINGS = ("uniform", "critical")
_FIDELITIES = ("exact", "bounded", "auto")


@dataclass
class RunSpec(_SerializableConfig):
    """**What** to run -- one declarative experiment description.

    Pair experiments (:meth:`Session.sweep <repro.api.Session.sweep>`,
    :meth:`Session.worst_case <repro.api.Session.worst_case>`) use
    ``pair`` plus the sweep/spot-check knobs; scenario experiments
    (:meth:`Session.simulate <repro.api.Session.simulate>`,
    :meth:`Session.grid <repro.api.Session.grid>`) use ``scenario`` /
    ``grid`` plus the fidelity knobs.  Unused fields are ignored by the
    other verbs, so one spec can drive a sweep *and* its DES
    counterpart.
    """

    pair: Any = None
    """Pair description (see :func:`build_pair`) for sweep/worst-case."""
    scenario: Any = None
    """Scenario description (see :func:`build_scenario`) for simulate."""
    grid: Any = None
    """Grid description (see :func:`build_grid`) for grid."""
    offsets: list | None = None
    """Explicit phase offsets; ``None`` derives them via ``sampling``."""
    sampling: str = "uniform"
    """Offset derivation when ``offsets`` is None: ``"uniform"`` takes
    ``samples`` evenly spaced offsets over the pair hyperperiod,
    ``"critical"`` enumerates the exact critical-offset set."""
    samples: int = 2048
    """Uniform-sampling resolution for ``sampling="uniform"``."""
    horizon: int | None = None
    """Simulation/sweep horizon in microseconds; ``None`` derives it
    from the pair's natural latency scale times ``horizon_multiple``."""
    horizon_multiple: int = 3
    model: str = "point"
    """Reception model name (:class:`repro.simulation.ReceptionModel`)."""
    turnaround: int = 0
    advertising_jitter: int = 0
    seed: int = 0
    omega: int | None = None
    """Packet length for critical-offset enumeration (worst-case verb)."""
    des_spot_checks: int = 16
    """DES spot-check policy: replays cross-checked per worst-case run."""
    max_critical: int = 200_000
    fallback_samples: int = 4096
    fidelity: str = "exact"
    """Worst-case engine fidelity policy (the adaptive ladder):

    * ``"exact"`` (default) -- the full exact ladder: critical-offset
      enumeration, complete sweep, uniform DES spot checks.  Refuses a
      ``budget_ms`` (an exact answer cannot promise a latency budget).
    * ``"bounded"`` -- best bound within ``budget_ms`` (required): the
      planner prices each tier with the fitted scheduler cost weights
      and never *plans* work beyond the budget; the result carries a
      ``bound_interval`` and is marked exact only when the exact tier
      fit the budget.
    * ``"auto"`` -- exact when no ``budget_ms`` is given, budgeted
      (identical to ``"bounded"``) when one is.
    """
    budget_ms: float | None = None
    """Per-query compute budget in milliseconds for the worst-case
    ladder planner (``fidelity="bounded"``/``"auto"``); ``None`` means
    unbudgeted."""

    def __post_init__(self) -> None:
        try:
            self._validate()
        except SpecError:
            raise
        except (TypeError, ValueError) as exc:
            # Wrong-typed field values (e.g. samples = "x" from a spec
            # file) are config problems, not crashes.
            raise SpecError(f"invalid RunSpec field value: {exc}") from exc

    def _validate(self) -> None:
        if self.model not in _MODELS:
            raise SpecError(
                f"unknown reception model {self.model!r}; one of {_MODELS}"
            )
        if self.sampling not in _SAMPLINGS:
            raise SpecError(
                f"unknown sampling {self.sampling!r}; one of {_SAMPLINGS}"
            )
        for name in ("samples", "horizon_multiple"):
            if getattr(self, name) < 1:
                raise SpecError(f"RunSpec.{name} must be >= 1")
        for name in ("des_spot_checks", "max_critical", "fallback_samples",
                     "turnaround", "advertising_jitter"):
            if getattr(self, name) < 0:
                raise SpecError(f"RunSpec.{name} must be >= 0")
        if self.fidelity not in _FIDELITIES:
            raise SpecError(
                f"unknown fidelity {self.fidelity!r}; one of {_FIDELITIES}"
            )
        if self.budget_ms is not None and not float(self.budget_ms) > 0:
            raise SpecError(
                f"RunSpec.budget_ms must be a positive number of "
                f"milliseconds or None, got {self.budget_ms!r}"
            )
        if self.fidelity == "bounded" and self.budget_ms is None:
            raise SpecError(
                "fidelity='bounded' needs a budget_ms to bound against; "
                "use fidelity='exact' (or 'auto') for unbudgeted queries"
            )
        if self.fidelity == "exact" and self.budget_ms is not None:
            raise SpecError(
                "fidelity='exact' cannot honour a budget_ms; use "
                "fidelity='bounded' or 'auto' for budgeted queries"
            )

    # ------------------------------------------------------------------
    def reception_model(self):
        """The spec's model as a :class:`repro.simulation.ReceptionModel`."""
        from ..simulation import ReceptionModel

        return ReceptionModel(self.model)


# ----------------------------------------------------------------------
# RuntimeProfile
# ----------------------------------------------------------------------


@dataclass
class RuntimeProfile(_SerializableConfig):
    """**How** to run -- the runtime policy a :class:`~repro.api.Session`
    applies to every verb.

    One profile replaces the ``backend=``/``jobs=``/``schedule=``/
    ``mp_context=`` kwarg plumbing of PR 1-3: resolve it once per
    session, not once per call.  Profiles are plain data -- load one
    from TOML or JSON with :meth:`load`, or build the environment
    default with :meth:`default` (honouring ``REPRO_BACKEND``,
    ``REPRO_JOBS``, ``REPRO_SCHEDULE`` and ``REPRO_PROFILE``).
    """

    backend: Any = "auto"
    """Sweep-kernel selection (:mod:`repro.backends` name or instance)."""
    jobs: int | None = 1
    """Worker processes; ``None`` = CPU count, ``1`` = serial."""
    schedule: str = "steal"
    """Grid scheduling discipline: ``"steal"`` or ``"chunk"``."""
    mp_context: str | None = None
    """Multiprocessing start method; ``None`` = platform default."""
    chunks_per_job: int = 4
    shared_memory: bool = True
    """Ship listening patterns to per-sweep workers via shared memory."""
    cache_limit: int | None = None
    """Session-scoped cap on the listening-cache registry (LRU);
    ``None`` keeps the process default."""
    cache_policy: str = "retain"
    """``"retain"``: listening caches built during the session stay in
    the process-wide registry (warm for the next session);
    ``"release"``: on exit the session drops every cache registered
    while it was open (window-based ownership -- includes caches a
    nested session built inside that window; pre-existing entries are
    always preserved)."""
    cost_weights: Any = None
    """Fitted ``(beacon, window)`` grid-scheduler cost weights; the
    session installs them on entry and restores the previous pair on
    exit.  ``None`` keeps whatever is installed."""
    auto_calibrate: bool = False
    """Have :meth:`Session.grid <repro.api.Session.grid>` re-fit
    ``cost_weights`` from its own per-scenario timings and persist them
    into this profile."""
    store: str | None = None
    """Result-store directory for read-through/write-back caching of
    session verbs (:mod:`repro.store`); ``None`` disables the store.
    A runtime knob: never part of result fingerprints."""

    def __post_init__(self) -> None:
        try:
            self._validate()
        except SpecError:
            raise
        except (TypeError, ValueError) as exc:
            # Wrong-typed field values (e.g. jobs = "x" in a profile
            # file -- valid TOML, wrong type) are config problems, not
            # crashes.
            raise SpecError(f"invalid RuntimeProfile field value: {exc}") from exc

    def _validate(self) -> None:
        if self.schedule not in ("steal", "chunk"):
            raise SpecError(
                f"schedule must be 'steal' or 'chunk', got {self.schedule!r}"
            )
        if self.cache_policy not in ("retain", "release"):
            raise SpecError(
                f"cache_policy must be 'retain' or 'release', "
                f"got {self.cache_policy!r}"
            )
        if self.jobs is not None and self.jobs < 0:
            raise SpecError(f"jobs must be non-negative, got {self.jobs}")
        if self.chunks_per_job < 1:
            raise SpecError("chunks_per_job must be positive")
        if self.cache_limit is not None and self.cache_limit < 1:
            raise SpecError("cache_limit must be positive")
        if self.cost_weights is not None:
            weights = tuple(float(w) for w in self.cost_weights)
            if len(weights) != 2 or any(w < 0 for w in weights):
                raise SpecError(
                    f"cost_weights must be two non-negative numbers, "
                    f"got {self.cost_weights!r}"
                )
            self.cost_weights = weights

    # ------------------------------------------------------------------
    def replace(self, **overrides) -> "RuntimeProfile":
        """A copy with ``overrides`` applied (validation re-runs)."""
        return dataclasses.replace(self, **overrides)

    @classmethod
    def from_toml(cls, payload: str) -> "RuntimeProfile":
        import tomllib

        return cls.from_dict(tomllib.loads(payload))

    @classmethod
    def load(cls, path) -> "RuntimeProfile":
        """Load a profile from a ``.toml`` or ``.json`` file (the CLI's
        ``--profile`` flag).  Extension picks the parser; anything else
        tries JSON first, then TOML.  A missing file or unparseable
        content raises :class:`SpecError` -- a config problem, not a
        crash."""
        import tomllib

        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SpecError(f"cannot read profile {path}: {exc}") from exc
        suffix = path.suffix.lower()
        try:
            if suffix == ".toml":
                return cls.from_toml(text)
            if suffix == ".json":
                return cls.from_json(text)
            try:
                return cls.from_json(text)
            except json.JSONDecodeError:
                return cls.from_toml(text)
        except (json.JSONDecodeError, tomllib.TOMLDecodeError) as exc:
            raise SpecError(f"malformed profile {path}: {exc}") from exc

    def save(self, path) -> Path:
        """Write the profile to a ``.toml`` or ``.json`` file (extension
        picks the format; anything else writes TOML) such that
        :meth:`load` round-trips it exactly.

        This is the persistence half of ``auto_calibrate``: ``repro grid
        --calibrate --save-profile`` fits cost weights and writes them
        back to the profile file.  ``None``-valued fields are omitted
        from TOML output (TOML has no null); :meth:`load` restores them
        as the field defaults.  The one lossy case is an explicit
        ``jobs=None`` (CPU count), whose default is ``1`` -- use JSON
        when that distinction must survive.
        """
        path = Path(path)
        payload = self.to_dict()
        if path.suffix.lower() == ".json":
            text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        else:
            lines = []
            for key, value in payload.items():
                if value is None:
                    continue
                if isinstance(value, bool):
                    rendered = "true" if value else "false"
                elif isinstance(value, (int, float)):
                    rendered = repr(value)
                elif isinstance(value, str):
                    rendered = json.dumps(value)
                elif isinstance(value, (list, tuple)):
                    rendered = "[" + ", ".join(repr(v) for v in value) + "]"
                else:  # pragma: no cover - to_dict only emits plain data
                    raise SpecError(
                        f"cannot render profile field {key!r} = {value!r} "
                        f"as TOML"
                    )
                lines.append(f"{key} = {rendered}")
            text = "\n".join(lines) + "\n"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return path

    @classmethod
    def default(cls) -> "RuntimeProfile":
        """The environment-default profile.

        ``REPRO_PROFILE`` (a TOML/JSON path) seeds the profile;
        ``REPRO_BACKEND``, ``REPRO_JOBS`` and ``REPRO_SCHEDULE``
        override individual fields -- which is how CI exercises the
        examples under both the ``python`` and ``numpy`` kernels
        without touching their source.
        """
        profile_path = os.environ.get("REPRO_PROFILE")
        profile = cls.load(profile_path) if profile_path else cls()
        overrides: dict[str, Any] = {}
        if os.environ.get("REPRO_BACKEND"):
            overrides["backend"] = os.environ["REPRO_BACKEND"]
        if os.environ.get("REPRO_JOBS"):
            try:
                overrides["jobs"] = int(os.environ["REPRO_JOBS"])
            except ValueError as exc:
                raise SpecError(
                    f"REPRO_JOBS must be an integer, "
                    f"got {os.environ['REPRO_JOBS']!r}"
                ) from exc
        if os.environ.get("REPRO_SCHEDULE"):
            overrides["schedule"] = os.environ["REPRO_SCHEDULE"]
        return profile.replace(**overrides) if overrides else profile

    def cache_key(self) -> tuple:
        """A hashable identity for legacy-shim session sharing.

        Field-driven so a future profile field can never be silently
        omitted (which would alias two different profiles onto one
        shared legacy session); unhashable values -- backend instances
        -- key by object identity.
        """
        parts = []
        for profile_field in fields(self):
            value = getattr(self, profile_field.name)
            if not isinstance(
                value, (str, int, float, bool, tuple, type(None))
            ):
                value = ("instance", id(value))
            parts.append(value)
        return tuple(parts)
