"""The single legacy-compatibility path behind every deprecated shim.

PR 4 rebuilt the public surface around :class:`repro.api.Session`; the
old per-call runtime kwargs (``backend=``, ``jobs=``, ``schedule=``,
``mp_context=``) on ``evaluate_offsets`` / ``sweep_offsets`` /
``verified_worst_case`` / ``sweep_network_grid`` keep working as thin
shims over the facade, but every one of them funnels through this
module -- one warning category, one emit helper, one shared-session
cache -- so deprecation policy lives in exactly one place.

* :class:`LegacyRuntimeAPIWarning` is a :class:`DeprecationWarning`
  subclass: silent for end users by default, and the facade-only CI
  lane runs with ``-W error::DeprecationWarning`` so *internal* code
  can never regress into calling a shim.
* :func:`warn_legacy` is the only ``warnings.warn`` call the shims use.
* :func:`legacy_session` hands shims a process-shared, never-closed
  :class:`~repro.api.Session` per profile shape.  That preserves the
  PR-3 semantics legacy callers rely on -- e.g. repeated
  ``sweep_network_grid(backend="pooled")`` calls amortizing one
  persistent pool -- with the ``atexit`` backstop as their cleanup,
  exactly as before.  Code that wants deterministic shutdown uses a
  ``with Session(...)`` block instead; that is the whole point.
"""

from __future__ import annotations

import warnings

__all__ = ["LegacyRuntimeAPIWarning", "legacy_session", "warn_legacy"]


class LegacyRuntimeAPIWarning(DeprecationWarning):
    """A per-call runtime kwarg (``backend=``/``jobs=``/``schedule=``/
    ``mp_context=``) was used on a pre-Session entry point."""


def warn_legacy(entry_point: str, replacement: str, stacklevel: int = 3) -> None:
    """Emit the one deprecation warning every legacy shim shares."""
    warnings.warn(
        f"{entry_point} is deprecated: configure runtime behaviour once on "
        f"a repro.api.RuntimeProfile and call {replacement} instead",
        LegacyRuntimeAPIWarning,
        stacklevel=stacklevel,
    )


#: Shared sessions for the legacy shims, keyed by profile shape.  Never
#: closed explicitly -- legacy callers never had deterministic cleanup,
#: and closing per call would destroy the persistent-pool amortization
#: they rely on; the existing ``atexit`` backstop reaps any pools.
_LEGACY_SESSIONS: dict[tuple, "object"] = {}


def legacy_session(**profile_fields):
    """The shared facade session for one legacy runtime-kwarg shape."""
    from .session import Session
    from .spec import RuntimeProfile

    profile = RuntimeProfile(**profile_fields)
    key = profile.cache_key()
    session = _LEGACY_SESSIONS.get(key)
    if session is None:
        session = Session(profile)
        # Legacy callers keep the pre-Session pool semantics: shared
        # pools outlive any one call (atexit is their backstop), and a
        # shim must never pin a refcount that would stop a concurrent
        # `with Session(...)` from deterministically shutting down the
        # pool it owns.
        session._owns_pools = False
        _LEGACY_SESSIONS[key] = session
    return session
