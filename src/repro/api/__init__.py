"""The unified experiment API: declarative specs, one managed runtime.

This package is the single public entry point PR 4 built over the
runtime stack of PRs 1-3.  Two serializable dataclasses separate *what*
an experiment is from *how* it runs:

* :class:`RunSpec` -- protocols / scenario / grid, reception model,
  fidelity knobs, DES spot-check policy (:mod:`repro.api.spec`);
* :class:`RuntimeProfile` -- backend, jobs, schedule, mp context,
  cache/shm limits, fitted cost weights; loadable from TOML/JSON
  (``RuntimeProfile.load``, the CLI's ``--profile``);

and one context-managed facade runs them:

* :class:`Session` -- resolves the backend once, owns every resource it
  creates (persistent pools via refcounts, session-scoped cache caps
  and cost weights, cache fingerprints under ``cache_policy="release"``)
  and releases them deterministically on ``__exit__``;
* :class:`RunResult` -- what each verb returns: payload + provenance
  (spec, profile, resolved backend, timings), JSON round-trippable into
  ``results/``.

Sessions optionally attach a content-addressed
:class:`~repro.store.ResultStore` (``Session(store=...)`` or
``RuntimeProfile.store``) for read-through/write-back caching keyed by
spec fingerprint, and :mod:`repro.campaign` orchestrates whole
parameter lattices of specs resumably on top of that.

Worst-case queries carry a per-query **fidelity budget** (PR 10):
``RunSpec.fidelity`` selects the policy (``"exact"`` -- the default,
bit-identical to every prior release; ``"bounded"`` -- best bound
within ``RunSpec.budget_ms``; ``"auto"`` -- exact when unbudgeted,
budgeted otherwise), and the adaptive ladder behind
``Session.worst_case`` prices its tiers (analytic bound, critical
enumeration, dense low-discrepancy sweep, DES spot checks) with the
fitted cost weights of :mod:`repro.parallel.schedule`.  Every
:class:`~repro.simulation.PairWorstCase` carries the **provenance
contract**: ``fidelity`` of the verdict, the one-way ``bound_interval``
(``(w, w)`` when exact), the ``tiers`` that ran with their planner
estimates (never measured wall-clock, so identical queries produce
identical provenance), ``fallback_used``, and the ``budget_ms`` it was
answered under -- serialized under ``payload["provenance"]`` and
rehydrated by :func:`repro.api.result.rehydrate_raw`.

The pre-Session entry points (``evaluate_offsets(backend=)``,
``verified_worst_case(jobs=)``, ``sweep_network_grid(schedule=)``, ...)
remain as thin shims over this facade behind the single deprecation
path of :mod:`repro.api._compat`.

Quickstart::

    from repro.api import RunSpec, RuntimeProfile, Session

    with Session(RuntimeProfile(jobs=4)) as session:
        result = session.sweep(RunSpec(pair={"kind": "symmetric", "eta": 0.01}))
        print(result.raw.worst_one_way, result.backend, result.timings)
        result.save("results")
"""

from ._compat import LegacyRuntimeAPIWarning
from .result import RunResult
from .session import Session
from .spec import (
    build_grid,
    build_pair,
    build_scenario,
    RunSpec,
    RuntimeProfile,
    SpecError,
)

__all__ = [
    "build_grid",
    "build_pair",
    "build_scenario",
    "LegacyRuntimeAPIWarning",
    "RunResult",
    "RunSpec",
    "RuntimeProfile",
    "Session",
    "SpecError",
]
