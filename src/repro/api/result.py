"""Typed run results with provenance: what ran, how, and what came out.

Every :class:`~repro.api.Session` verb returns a :class:`RunResult`
carrying the full reproduction recipe -- the declarative spec snapshot,
the runtime profile, the *resolved* backend name (so ``"auto"`` is
pinned to what actually ran) and wall-clock timings -- next to a
JSON-shaped payload of the numbers.  ``to_json``/``from_json``
round-trip exactly, and :meth:`save` drops the result into
``results/`` beside the repository's committed CSV artifacts.

The live objects a verb produced (a :class:`SweepReport`, a
:class:`PairWorstCase`, :class:`NetworkResult` lists) stay reachable on
:attr:`RunResult.raw` for in-process consumers; ``raw`` is excluded
from serialization and equality, so a deserialized result compares
equal to the one that was saved.
"""

from __future__ import annotations

import copy
import dataclasses
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any

__all__ = [
    "RunResult",
    "network_result_payload",
    "rehydrate_raw",
    "sweep_report_payload",
]


def sweep_report_payload(report) -> dict:
    """JSON-shaped form of a :class:`repro.simulation.SweepReport`."""
    return dataclasses.asdict(report)


def network_result_payload(result) -> dict:
    """JSON-shaped form of a :class:`repro.simulation.NetworkResult`.

    ``discovery_times`` keys are ``(receiver, sender)`` tuples; they
    serialize as ``"receiver<-sender"`` strings.
    """
    return {
        "n_nodes": result.n_nodes,
        "horizon": result.horizon,
        "pairs_discovered": result.pairs_discovered,
        "pairs_expected": result.pairs_expected,
        "discovery_rate": result.discovery_rate,
        "total_transmissions": result.total_transmissions,
        "total_collisions": result.total_collisions,
        "packets_lost_to_collisions": result.packets_lost_to_collisions,
        "median_latency": result.quantile(0.5),
        "discovery_times": {
            f"{receiver}<-{sender}": time
            for (receiver, sender), time in sorted(
                result.discovery_times.items()
            )
        },
    }


def _network_from_payload(payload: dict):
    """Inverse of :func:`network_result_payload` (derived fields are
    properties and rebuild themselves)."""
    from ..simulation.runner import NetworkResult

    def _side(token: str):
        try:
            return int(token)
        except ValueError:
            return token

    discovery_times = {}
    for key, value in payload.get("discovery_times", {}).items():
        receiver, _, sender = key.partition("<-")
        discovery_times[(_side(receiver), _side(sender))] = value
    return NetworkResult(
        n_nodes=payload["n_nodes"],
        horizon=payload["horizon"],
        discovery_times=discovery_times,
        total_transmissions=payload["total_transmissions"],
        total_collisions=payload["total_collisions"],
        packets_lost_to_collisions=payload["packets_lost_to_collisions"],
    )


def rehydrate_raw(verb: str, payload: dict):
    """Best-effort reconstruction of :attr:`RunResult.raw` from a
    deserialized payload.

    The payloads are lossless projections of the live result objects
    (``raw`` is only excluded from serialization because an object graph
    is not provenance), so a store hit can hand consumers the same live
    types a fresh run would -- a :class:`SweepReport`, a
    :class:`PairWorstCase`, :class:`NetworkResult` (lists).  Returns
    ``None`` when the payload shape is not recognized; callers must
    treat ``raw`` as optional either way.
    """
    try:
        if verb == "sweep":
            from ..simulation.analytic import SweepReport

            names = {f.name for f in fields(SweepReport)}
            return SweepReport(
                **{k: v for k, v in payload.items() if k in names}
            )
        if verb == "worst_case":
            from ..simulation.analytic import SweepReport
            from ..simulation.runner import PairWorstCase

            # Pre-PR-10 payloads carry no provenance block; rebuild with
            # the dataclass defaults so old stores keep rehydrating.
            provenance = payload.get("provenance") or {}
            interval = provenance.get("bound_interval")
            return PairWorstCase(
                analytic=SweepReport(**payload["analytic"]),
                des_agrees=payload["des_agrees"],
                offsets_checked=payload["offsets_checked"],
                fidelity=provenance.get("fidelity", "exact"),
                bound_interval=tuple(interval)
                if interval is not None else None,
                tiers=tuple(dict(tier)
                            for tier in provenance.get("tiers", ())),
                fallback_used=provenance.get("fallback_used", False),
                budget_ms=provenance.get("budget_ms"),
            )
        if verb == "simulate":
            # The simulate payload embeds the network fields directly
            # (plus scenario/description, which the rebuild ignores).
            return _network_from_payload(payload)
        if verb == "grid":
            return [
                _network_from_payload(item) for item in payload["results"]
            ]
    except (KeyError, TypeError, ValueError, ImportError):
        return None
    return None


@dataclass
class RunResult:
    """One session verb's outcome plus its reproduction recipe."""

    verb: str
    """Which verb produced this: sweep / worst_case / grid / simulate."""
    spec: dict
    """Declarative :class:`~repro.api.RunSpec` snapshot (live objects
    degrade to reprs -- see :meth:`RunSpec.describe`)."""
    profile: dict
    """The :class:`~repro.api.RuntimeProfile` that ran it."""
    backend: str
    """The *resolved* kernel name (``"auto"`` pinned to what ran)."""
    timings: dict = field(default_factory=dict)
    """Wall-clock seconds per phase (``build``, ``run``, ``total``...)."""
    payload: dict = field(default_factory=dict)
    """The numbers, JSON-shaped (verb-specific layout)."""
    raw: Any = field(default=None, repr=False, compare=False)
    """The live result object(s); not serialized."""
    store_meta: Any = field(default=None, repr=False, compare=False)
    """Store provenance when a :class:`~repro.store.ResultStore` was in
    the loop: ``{"hit": bool, "fingerprint": ..., "lookup_seconds": ...}``.
    Not serialized (runtime provenance, not experiment identity)."""

    # ------------------------------------------------------------------
    def clone(self) -> "RunResult":
        """A detached deep copy of the *serialized* identity.

        The compare fields (spec/profile/timings/payload snapshots) are
        deep-copied so mutating the clone -- or the original -- cannot
        leak through; the runtime-only fields ``raw`` and ``store_meta``
        reset to ``None`` (they belong to one call site, not to the
        result's identity).  This is the isolation primitive behind
        :class:`~repro.store.ResultStore`'s copy semantics: the store
        remembers clones and hands out clones, so no two callers ever
        share a mutable result.
        """
        return RunResult(
            verb=self.verb,
            spec=copy.deepcopy(self.spec),
            profile=copy.deepcopy(self.profile),
            backend=self.backend,
            timings=copy.deepcopy(self.timings),
            payload=copy.deepcopy(self.payload),
            raw=None,
            store_meta=None,
        )

    def to_dict(self) -> dict:
        return {
            f.name: getattr(self, f.name) for f in fields(self) if f.compare
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        known = {f.name for f in fields(cls) if f.compare}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown RunResult field(s): {sorted(unknown)}"
            )
        return cls(**data)

    def to_json(self, **dumps_kwargs) -> str:
        dumps_kwargs.setdefault("indent", 2)
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, payload) -> "RunResult":
        """Rebuild from a JSON string or a path to a saved result."""
        if isinstance(payload, (Path,)) or (
            isinstance(payload, str) and "\n" not in payload
            and payload.lstrip()[:1] not in ("{", "[")
        ):
            payload = Path(payload).read_text(encoding="utf-8")
        return cls.from_dict(json.loads(payload))

    def save(self, directory="results", name: str | None = None) -> Path:
        """Write the result as JSON under ``directory`` (default the
        repository's ``results/``) and return the path.

        The default filename embeds a content digest of the serialized
        result, so the same result always lands at the same path (a
        re-run overwrites its own file, never a different result's).
        """
        import hashlib

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        payload = self.to_json()
        if name is None:
            digest = hashlib.sha256(payload.encode()).hexdigest()[:12]
            name = f"RUN_{self.verb}_{digest}.json"
        path = directory / name
        path.write_text(payload + "\n", encoding="utf-8")
        return path
