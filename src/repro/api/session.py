"""The lifecycle-managed experiment facade: :class:`Session`.

One session = one resolved runtime.  A :class:`Session` takes a
:class:`~repro.api.RuntimeProfile`, resolves the sweep backend **once**
(on first use, so merely constructing a session boots nothing), and
exposes the whole verb set over declarative
:class:`~repro.api.RunSpec` descriptions::

    from repro.api import RunSpec, RuntimeProfile, Session

    profile = RuntimeProfile(backend="pooled", jobs=4)
    with Session(profile) as session:
        sweep = session.sweep(RunSpec(pair={"kind": "symmetric", "eta": 0.01}))
        check = session.worst_case(RunSpec(pair={"kind": "symmetric", "eta": 0.01}))
        grid = session.grid(RunSpec(grid={
            "factory": "dense_network",
            "axes": {"n_devices": [3, 5], "eta": [0.02]},
        }))
    # <- every worker process the session created is gone here.

Resource ownership
------------------

The session *owns* what it creates and releases it deterministically on
``close()`` / ``__exit__`` -- no reliance on ``atexit``:

* **Persistent pools** -- a resolved pooled backend is reference-
  counted (:meth:`PooledBackend.retain`): nested sessions sharing one
  profile share one pool, and the pool shuts down exactly when the last
  session holding it exits.  Per-sweep pools were already
  context-managed inside :class:`repro.parallel.ParallelSweep`.
* **Shared-memory segments** -- per-sweep
  :class:`~repro.parallel.shm.SharedPatternStore` segments unlink on
  sweep exit by construction; a session therefore leaks no segments.
* **Listening-cache registry** -- with
  ``RuntimeProfile.cache_policy="release"`` the session snapshots the
  registry on activation and drops, on exit, every fingerprint
  registered during its open window (pre-existing entries always
  survive; a nested session's caches fall inside the window);
  ``"retain"`` (default) leaves everything warm for the next session.
  ``RuntimeProfile.cache_limit`` scopes the registry's LRU cap to the
  session (previous cap restored on close).
* **Scheduler cost weights** -- ``RuntimeProfile.cost_weights`` install
  on construction and the previous process-wide pair is restored on
  close; ``auto_calibrate`` lets :meth:`grid` re-fit them from its own
  measured per-scenario timings and persist them into the profile.

Every verb returns a :class:`~repro.api.RunResult` carrying the spec
and profile snapshots, the resolved backend name and phase timings --
the full reproduction recipe -- and results are **bit-identical** to
the legacy kwarg entry points for every backend/jobs/schedule
combination (pinned zoo-wide by
``tests/test_parallel_equivalence_zoo.py``).
"""

from __future__ import annotations

import math
import time
from pathlib import PurePath
from typing import Mapping

from .result import network_result_payload, RunResult, sweep_report_payload
from .spec import build_grid, build_pair, build_scenario, RunSpec, RuntimeProfile

__all__ = ["Session", "evaluate_offsets_with_backend"]


def evaluate_offsets_with_backend(
    protocol_e, protocol_f, offsets, horizon, model, turnaround, backend
):
    """Facade-internal in-process batch evaluation.

    The engine behind the ``evaluate_offsets(backend=...)`` legacy shim:
    resolve the kernel once and run it directly, exactly as the
    pre-Session entry point did (a pooled backend shards itself over its
    own persistent pool; stateless kernels run in-process).  Backend
    selection knowledge lives here, in the facade layer, not in
    :mod:`repro.simulation.analytic`.
    """
    from ..backends import resolve_backend, SweepParams

    return resolve_backend(backend).evaluate_offsets_batch(
        SweepParams(protocol_e, protocol_f, horizon, model, turnaround),
        list(offsets),
    )


def _as_spec(spec) -> RunSpec:
    if isinstance(spec, RunSpec):
        return spec
    if isinstance(spec, Mapping):
        return RunSpec.from_dict(spec)
    raise TypeError(f"expected a RunSpec or mapping, got {spec!r}")


class Session:
    """A context-managed experiment runtime (see module docstring).

    Parameters
    ----------
    profile:
        The :class:`RuntimeProfile` to run under; ``None`` uses
        :meth:`RuntimeProfile.default` (environment-aware).
    store:
        Opt-in read-through/write-back result caching: a
        :class:`~repro.store.ResultStore`, a store directory path, or
        ``None`` (also settable via ``RuntimeProfile.store``).  With a
        store attached every verb first looks up the spec's
        content-addressed fingerprint and only computes on a miss,
        writing the result back; hits skip *all* computation (including
        ``auto_calibrate`` refits on :meth:`grid`).  Specs holding live
        objects have no declarative identity and always compute.
    **overrides:
        Field overrides applied on top of ``profile`` via
        :meth:`RuntimeProfile.replace` -- ``Session(jobs=4)`` is the
        short spelling of a one-field profile tweak.
    """

    def __init__(
        self, profile: RuntimeProfile | None = None, store=None, **overrides
    ):
        if profile is None:
            profile = RuntimeProfile.default()
        elif isinstance(profile, Mapping):
            profile = RuntimeProfile.from_dict(profile)
        elif isinstance(profile, (str, PurePath)):
            # A profile *file* -- the natural companion mistake to
            # RuntimeProfile.load(); honour it instead of storing a
            # string that would fail opaquely at first use.
            profile = RuntimeProfile.load(profile)
        elif not isinstance(profile, RuntimeProfile):
            raise TypeError(
                f"profile must be a RuntimeProfile, mapping, path or None, "
                f"got {profile!r}"
            )
        if overrides:
            profile = profile.replace(**overrides)
        self.profile = profile
        self.store = self._resolve_store(store)
        self._closed = False
        self._sweeper = None
        self._backend = None
        self._retained_pool = None
        self._retain_token = None
        #: Whether this session takes a retain/release reference on a
        #: resolved pooled backend.  True for user sessions (the
        #: deterministic-shutdown contract); the never-closed legacy-shim
        #: sessions set it False so they keep the pre-Session semantics
        #: -- pools live until ``shutdown_pooled_backends()``/``atexit``
        #: -- without pinning a refcount that would block a concurrent
        #: ``with Session(...)`` from shutting its own pool down.
        self._owns_pools = True
        self._activated = False
        self._weights_installed = False
        self._previous_weights = None
        self._previous_cache_cap = None
        self._cache_baseline = None

    def _resolve_store(self, store):
        """Resolve the session's result store (explicit argument wins
        over ``profile.store``; ``None`` disables caching)."""
        if store is None:
            store = self.profile.store
        if store is None:
            return None
        from ..store import ResultStore

        if isinstance(store, ResultStore):
            return store
        if isinstance(store, (str, PurePath)):
            return ResultStore(store)
        raise TypeError(
            f"store must be a ResultStore, a directory path or None, "
            f"got {store!r}"
        )

    def _through_store(self, verb: str, spec: RunSpec, compute) -> RunResult:
        """Read-through/write-back dispatch for one verb call.

        A hit returns the stored result (with ``raw`` rehydrated by the
        store) and records ``store_meta.lookup_seconds`` -- the stored
        ``timings`` stay untouched, so they always describe the compute
        that originally produced the numbers.

        ``store_meta`` is strictly **per call**: the store's copy
        semantics guarantee ``get`` hands back a private
        :class:`RunResult` and ``put`` remembers a detached snapshot,
        so attaching provenance here -- or any caller mutating the
        result afterwards -- can never leak into another call's result
        or the persisted entry.
        """
        store = self.store
        if store is None:
            return compute(spec)
        from .spec import SpecError

        try:
            fingerprint = store.fingerprint(verb, spec)
        except SpecError:
            # Live objects in declarative slots: no stable identity.
            return compute(spec)
        t0 = time.perf_counter()
        cached = store.get(fingerprint)
        lookup = time.perf_counter() - t0
        if cached is not None:
            cached.store_meta = {
                "hit": True,
                "fingerprint": fingerprint,
                "lookup_seconds": lookup,
            }
            return cached
        result = compute(spec)
        store.put(fingerprint, result)
        result.store_meta = {
            "hit": False,
            "fingerprint": fingerprint,
            "lookup_seconds": lookup,
        }
        return result

    def _activate(self) -> None:
        """Install the profile's scoped process-wide knobs (cost
        weights, cache cap, cache-ownership baseline) exactly once.

        Deferred out of ``__init__`` to ``__enter__`` / the first verb,
        so a session that is constructed but never used mutates nothing;
        previous values are captured for the LIFO restore in
        :meth:`close` (correct for nested sessions).
        """
        if self._activated or self._closed:
            return
        self._activated = True
        from ..parallel.cache import (
            listening_cache_fingerprints,
            set_listening_cache_cap,
        )

        if self.profile.cost_weights is not None:
            self._install_weights(self.profile.cost_weights)
        if self.profile.cache_limit is not None:
            self._previous_cache_cap = set_listening_cache_cap(
                self.profile.cache_limit
            )
        if self.profile.cache_policy == "release":
            self._cache_baseline = listening_cache_fingerprints()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "Session":
        if self._closed:
            raise RuntimeError("Session is closed; create a new one")
        self._activate()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def worker(self) -> "Session":
        """A sibling session for a worker thread: same profile, same
        *shared* store instance, independent runtime state.

        A :class:`Session` is not thread-safe -- backend resolution,
        the cached sweeper and the scoped-knob bookkeeping all assume
        one caller -- so concurrent entry execution (the parallel
        :class:`~repro.campaign.CampaignRunner`) gives every worker
        thread its own session via this method.  Workers share:

        * the **store instance** (not merely the root path), so they
          also share its lock-protected in-process LRU and stats;
        * the **profile object**, so a pooled backend resolves to the
          same refcounted pool (shutdown when the last worker closes).

        Each worker must be closed like any other session; closing a
        worker never tears down state the parent still uses.
        """
        if self._closed:
            raise RuntimeError("Session is closed; create a new one")
        return Session(self.profile, store=self.store)

    def close(self) -> None:
        """Release everything this session created (idempotent).

        Deterministic by design: pooled workers are gone (or handed to
        an outer session still holding the shared pool) by the time
        this returns -- the ``atexit`` backstop exists only for
        non-session legacy callers.
        """
        if self._closed:
            return
        self._closed = True
        retained, self._retained_pool = self._retained_pool, None
        token, self._retain_token = self._retain_token, None
        try:
            if retained is not None:
                retained.release(token)
        finally:
            # The scoped-knob restores must run even if the pool
            # shutdown raised: _closed is already True, so this is the
            # only chance to hand the process-wide state back.
            from ..parallel.cache import (
                invalidate_listening_caches,
                listening_cache_fingerprints,
                set_listening_cache_cap,
            )
            from ..parallel.schedule import use_cost_weights

            if self._weights_installed:
                use_cost_weights(self._previous_weights)
                self._weights_installed = False
            if self._previous_cache_cap is not None:
                set_listening_cache_cap(self._previous_cache_cap)
                self._previous_cache_cap = None
            if self._cache_baseline is not None:
                for fingerprint in (
                    listening_cache_fingerprints() - self._cache_baseline
                ):
                    invalidate_listening_caches(fingerprint)
                self._cache_baseline = None

    # ------------------------------------------------------------------
    # Runtime resolution (once per session)
    # ------------------------------------------------------------------

    def _engine(self):
        """The session's :class:`~repro.parallel.ParallelSweep`, with the
        backend resolved exactly once (first verb).  Raises
        :class:`repro.backends.BackendUnavailable` for profiles naming a
        kernel this environment cannot run."""
        if self._closed:
            raise RuntimeError("Session is closed; create a new one")
        self._activate()
        if self._sweeper is None:
            from ..backends.pooled import PooledBackend
            from ..parallel import ParallelSweep

            sweeper = ParallelSweep.from_profile(self.profile)
            try:
                resolved = sweeper._resolve_backend()
            except KeyError as exc:
                # An unknown backend *name* (REPRO_BACKEND typo, profile
                # file) is a config problem; surface it as one instead
                # of a KeyError traceback.  BackendUnavailable (a known
                # name this environment cannot run) passes through.
                from .spec import SpecError

                raise SpecError(
                    f"RuntimeProfile.backend: {exc.args[0]}"
                ) from exc
            if self._owns_pools and isinstance(resolved, PooledBackend):
                self._retain_token = resolved.retain()
                self._retained_pool = resolved
            self._sweeper = sweeper
            self._backend = resolved
        return self._sweeper

    @property
    def backend(self):
        """The resolved :class:`repro.backends.SweepBackend` instance."""
        self._engine()
        return self._backend

    @property
    def backend_name(self) -> str:
        """The resolved kernel name (``"auto"`` pinned to what runs)."""
        return self.backend.name

    def _install_weights(self, weights) -> None:
        from ..parallel.schedule import use_cost_weights

        previous = use_cost_weights(weights)
        if not self._weights_installed:
            self._previous_weights = previous
            self._weights_installed = True

    # ------------------------------------------------------------------
    # Spec resolution helpers
    # ------------------------------------------------------------------

    def _pair_workload(self, spec: RunSpec):
        """(protocol_e, protocol_f, offsets, horizon, sampling) for a
        pair verb; ``sampling`` names what actually ran (``"explicit"``,
        ``"uniform"``, ``"critical"``, or ``"uniform-fallback"`` when a
        requested critical enumeration exceeded ``max_critical``)."""
        if spec.pair is None:
            raise ValueError("RunSpec.pair is required for this verb")
        protocol_e, protocol_f, base = build_pair(spec.pair)
        horizon = self._horizon_for(spec, base, protocol_e, protocol_f)
        if spec.offsets is not None:
            return protocol_e, protocol_f, list(spec.offsets), horizon, "explicit"
        offsets, sampling = self._derived_offsets(spec, protocol_e, protocol_f)
        return protocol_e, protocol_f, list(offsets), horizon, sampling

    @staticmethod
    def _pair_hyperperiod(protocol_e, protocol_f) -> int:
        return math.lcm(protocol_e.hyperperiod(), protocol_f.hyperperiod())

    def _horizon_for(self, spec: RunSpec, base, protocol_e, protocol_f) -> int:
        if spec.horizon is not None:
            return spec.horizon
        if base is None:
            base = self._pair_hyperperiod(protocol_e, protocol_f)
        return int(base) * spec.horizon_multiple

    def _derived_offsets(self, spec: RunSpec, protocol_e, protocol_f):
        """(offsets, sampling-actually-used) per the spec's policy.

        ``sampling="critical"`` enumerates through the session's
        resolved kernel (``critical_offsets(backend=...)``), so a numpy
        profile vectorizes the breakpoint generation as well as the
        sweep -- bit-identical offsets by the backend contract.
        """
        from ..simulation import critical_offsets, CriticalSetTooLarge

        sampling = spec.sampling
        if spec.sampling == "critical":
            try:
                return critical_offsets(
                    protocol_e,
                    protocol_f,
                    omega=spec.omega,
                    max_count=spec.max_critical,
                    backend=self.backend,
                    turnaround=spec.turnaround,
                ), "critical"
            except CriticalSetTooLarge:
                # Critical set exceeded max_critical: fall back to a
                # uniform sweep, and *say so* in the result payload --
                # a sampled sweep must never masquerade as exact.  Any
                # other ValueError is a genuine kernel bug and
                # propagates.
                sampling = "uniform-fallback"
        hyper = self._pair_hyperperiod(protocol_e, protocol_f)
        step = max(1, hyper // spec.samples)
        return range(0, hyper, step), sampling

    def _result(self, verb, spec, payload, raw, timings) -> RunResult:
        return RunResult(
            verb=verb,
            spec=spec.describe(),
            profile=self.profile.describe(),
            backend=self._backend.name,
            timings=timings,
            payload=payload,
            raw=raw,
        )

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def sweep(self, spec) -> RunResult:
        """Exact phase-offset sweep of a protocol pair.

        ``raw``: the :class:`repro.simulation.SweepReport`; ``payload``
        mirrors its fields plus the offset count.
        """
        return self._through_store("sweep", _as_spec(spec), self._sweep)

    def _sweep(self, spec: RunSpec) -> RunResult:
        t0 = time.perf_counter()
        protocol_e, protocol_f, offsets, horizon, sampling = (
            self._pair_workload(spec)
        )
        engine = self._engine()
        t1 = time.perf_counter()
        report = engine.sweep_offsets(
            protocol_e,
            protocol_f,
            offsets,
            horizon,
            spec.reception_model(),
            spec.turnaround,
        )
        t2 = time.perf_counter()
        payload = dict(
            sweep_report_payload(report),
            horizon=horizon,
            offsets=len(offsets),
            sampling=sampling,
            protocols=[protocol_e.name, protocol_f.name],
            eta=[protocol_e.eta, protocol_f.eta],
        )
        return self._result(
            "sweep",
            spec,
            payload=payload,
            raw=report,
            timings={"build": t1 - t0, "run": t2 - t1, "total": t2 - t0},
        )

    def worst_case(self, spec) -> RunResult:
        """Worst-case latency with DES spot-check cross-validation.

        ``raw``: the :class:`repro.simulation.PairWorstCase`.  The
        session's resolved kernel runs the whole pipeline -- critical
        enumeration (``critical_offsets(backend=...)``, vectorized
        under numpy), the sweep, and (for pooled profiles) the
        spot-check sharding over the arena-warmed persistent pool.

        Exact by default.  With ``spec.budget_ms`` set (and
        ``spec.fidelity`` ``"auto"``/``"bounded"``), the adaptive
        fidelity ladder answers within the budget instead: analytic
        bound first, the exact enumeration only when its priced sweep
        fits, a nested low-discrepancy dense tier over what remains,
        DES spot-checks allocated by disagreement.  The verdict
        (``fidelity``, ``bound_interval``) and per-tier provenance ride
        in both ``raw`` and ``payload["provenance"]``.
        """
        return self._through_store(
            "worst_case", _as_spec(spec), self._worst_case
        )

    def _worst_case(self, spec: RunSpec) -> RunResult:
        import dataclasses

        from ..simulation.runner import _verified_worst_case_impl

        t0 = time.perf_counter()
        if spec.pair is None:
            raise ValueError("RunSpec.pair is required for worst_case")
        protocol_e, protocol_f, base = build_pair(spec.pair)
        horizon = self._horizon_for(spec, base, protocol_e, protocol_f)
        engine = self._engine()
        t1 = time.perf_counter()
        outcome = _verified_worst_case_impl(
            protocol_e,
            protocol_f,
            horizon,
            omega=spec.omega,
            reception_model=spec.reception_model(),
            turnaround=spec.turnaround,
            max_critical=spec.max_critical,
            des_spot_checks=spec.des_spot_checks,
            fallback_samples=spec.fallback_samples,
            sweeper=engine,
            fidelity=spec.fidelity,
            budget_ms=spec.budget_ms,
            analytic_upper=base,
        )
        t2 = time.perf_counter()
        payload = {
            "analytic": dataclasses.asdict(outcome.analytic),
            "des_agrees": outcome.des_agrees,
            "offsets_checked": outcome.offsets_checked,
            "horizon": horizon,
            "protocols": [protocol_e.name, protocol_f.name],
            "eta": [protocol_e.eta, protocol_f.eta],
            "provenance": {
                "fidelity": outcome.fidelity,
                "bound_interval": list(outcome.bound_interval)
                if outcome.bound_interval is not None else None,
                "tiers": [dict(tier) for tier in outcome.tiers],
                "fallback_used": outcome.fallback_used,
                "budget_ms": outcome.budget_ms,
            },
        }
        return self._result(
            "worst_case",
            spec,
            payload=payload,
            raw=outcome,
            timings={"build": t1 - t0, "run": t2 - t1, "total": t2 - t0},
        )

    def grid(self, spec) -> RunResult:
        """Run a scenario grid through the event-driven simulator.

        ``raw``: the list of :class:`repro.simulation.NetworkResult`
        objects in grid order.  With ``profile.auto_calibrate`` the grid
        also measures per-scenario wall-clock, re-fits the scheduler's
        ``(beacon, window)`` cost weights from its *own* timings
        (:func:`repro.parallel.fit_cost_weights`) and persists them into
        ``profile.cost_weights`` -- replacing the manual
        bench-then-``use_cost_weights`` calibration step.  Fitted
        weights affect only future scheduling order; results are
        seed-stable regardless.
        """
        return self._through_store("grid", _as_spec(spec), self._grid)

    def _grid(self, spec: RunSpec) -> RunResult:
        t0 = time.perf_counter()
        if spec.grid is None:
            raise ValueError("RunSpec.grid is required for grid")
        scenarios = build_grid(spec.grid)
        engine = self._engine()
        t1 = time.perf_counter()
        calibration = None
        if self.profile.auto_calibrate:
            results, seconds = engine.map_scenarios(
                scenarios,
                base_seed=spec.seed,
                reception_model=spec.reception_model(),
                turnaround=spec.turnaround,
                advertising_jitter=spec.advertising_jitter,
                collect_timings=True,
            )
            calibration = self._calibrate(scenarios, seconds)
        else:
            results = engine.map_scenarios(
                scenarios,
                base_seed=spec.seed,
                reception_model=spec.reception_model(),
                turnaround=spec.turnaround,
                advertising_jitter=spec.advertising_jitter,
            )
        t2 = time.perf_counter()
        payload = {
            "scenarios": [scenario.name for scenario in scenarios],
            "results": [network_result_payload(result) for result in results],
        }
        if calibration is not None:
            payload["calibration"] = calibration
        return self._result(
            "grid",
            spec,
            payload=payload,
            raw=results,
            timings={"build": t1 - t0, "run": t2 - t1, "total": t2 - t0},
        )

    def _calibrate(self, scenarios, seconds) -> dict:
        """Re-fit cost weights from this grid's measured timings and
        persist them into the active profile (the ROADMAP follow-up:
        calibration without a separate bench step)."""
        from ..parallel.schedule import calibration_rows, fit_cost_weights

        rows = calibration_rows(scenarios, seconds)
        weights = fit_cost_weights(rows)
        self.profile.cost_weights = weights
        self._install_weights(weights)
        return {
            "cost_weights": list(weights),
            "samples": len(rows),
            "seconds": list(seconds),
        }

    def simulate(self, spec) -> RunResult:
        """Run one scenario through the event-driven simulator.

        ``raw``: the :class:`repro.simulation.NetworkResult`.
        """
        return self._through_store("simulate", _as_spec(spec), self._simulate)

    def _simulate(self, spec: RunSpec) -> RunResult:
        from ..simulation.runner import _run_scenario

        t0 = time.perf_counter()
        if spec.scenario is None:
            raise ValueError("RunSpec.scenario is required for simulate")
        scenario = build_scenario(spec.scenario)
        self._engine()  # resolve provenance even though DES needs no kernel
        t1 = time.perf_counter()
        result = _run_scenario(
            scenario,
            seed=spec.seed,
            reception_model=spec.reception_model(),
            turnaround=spec.turnaround,
            advertising_jitter=spec.advertising_jitter,
        )
        t2 = time.perf_counter()
        payload = dict(
            network_result_payload(result),
            scenario=scenario.name,
            description=scenario.description,
        )
        return self._result(
            "simulate",
            spec,
            payload=payload,
            raw=result,
            timings={"build": t1 - t0, "run": t2 - t1, "total": t2 - t0},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else (
            f"backend={self._backend.name}" if self._backend else "unresolved"
        )
        return f"Session(jobs={self.profile.jobs}, {state})"
