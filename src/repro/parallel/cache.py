"""Memoized listening-set evaluation for offset sweeps.

Every offset evaluated by :func:`repro.simulation.analytic.sweep_offsets`
re-derives the receiver's effective listening set (reception windows
minus own-transmission blocking) segment-by-segment for each candidate
beacon.  That work repeats heavily across a sweep: away from time zero
the listening set is *periodic* with the receiver's schedule hyperperiod
``H = lcm(T_C, T_B)`` and shifts rigidly with the phase, so a decode
decision depends only on the phase residue
``(packet_start - rx_phase) mod H`` (plus packet length and reception
model).  Translation invariance only breaks near time zero, where
beacons scheduled before boot never went on air: blocks of those beacons
all end before ``max_beacon_duration + turnaround``.

:class:`ListeningCache` therefore precomputes the periodic pattern once
-- two hyperperiods of exact listening segments, so any query interval
of length up to ``H`` falls inside the linear list -- and answers each
decode query with a binary search instead of rebuilding segments:

* queries with ``start >= max_beacon_duration + turnaround`` are past
  the boot boundary and answered from the precomputed pattern;
* earlier queries, non-integer schedules, and degenerate shapes (packet
  longer than the hyperperiod, pattern too large to precompute) take the
  uncached exact path;

so the cache is *bit-identical* to the direct computation by
construction.  The pattern stores segments exactly as
:func:`repro.simulation.analytic.listening_segments` returns them --
unmerged, abutting windows kept distinct -- because the CONTAINMENT
model's equality test distinguishes one spanning segment from two
abutting ones.

One cache per receiver is shared across all chunks a worker process
evaluates; :class:`CachedPairEvaluator` mirrors
:func:`repro.simulation.analytic.mutual_discovery_times` on top of it.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from ..core.sequences import NDProtocol
from ..simulation.analytic import (
    _packet_heard,
    DiscoveryOutcome,
    listening_segments,
    ReceptionModel,
)

__all__ = ["ListeningCache", "CachedPairEvaluator", "derive_seed"]


def derive_seed(base_seed: int, index: int) -> int:
    """A stable per-item seed for sharded runs.

    Hash-derived (not ``base_seed + index``) so neighbouring items do
    not get correlated RNG streams, and a pure function of the item's
    *global* index so results are independent of how items are chunked
    across workers -- the serial and parallel grid drivers both use it.
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _all_int(*values) -> bool:
    return all(isinstance(v, int) for v in values)


class ListeningCache:
    """Precomputed periodic listening pattern for one receiver protocol.

    Answers the same question as
    :func:`repro.simulation.analytic._packet_heard` -- "is a packet
    occupying ``[start, end)`` decoded by ``receiver`` at phase
    ``rx_phase``?" -- in ``O(log segments)`` where the pattern is
    translation-invariant, falling back to the exact per-query
    computation everywhere else.
    """

    def __init__(
        self,
        receiver: NDProtocol,
        turnaround: int = 0,
        max_segments: int = 1 << 22,
    ) -> None:
        self.receiver = receiver
        self.turnaround = turnaround
        self.hyper = 1
        self.threshold = 0
        self._starts: list[int] = []
        self._ends: list[int] = []
        self.enabled = self._analyze(max_segments)
        if self.enabled:
            base = -(-self.threshold // self.hyper) * self.hyper
            segments = listening_segments(
                receiver, 0, base, base + 2 * self.hyper, turnaround
            )
            self._starts = [a - base for a, _ in segments]
            self._ends = [b - base for _, b in segments]

    def _analyze(self, max_segments: int) -> bool:
        """Integer-grid + size preconditions for the precomputed path."""
        reception = self.receiver.reception
        if reception is None or not isinstance(reception.period, int):
            return False
        if not all(
            _all_int(w.start, w.duration) for w in reception.windows
        ):
            return False
        threshold = 0
        n_segments = 0
        beacons = self.receiver.beacons
        if beacons is not None:
            if not isinstance(beacons.period, int) or not all(
                _all_int(b.time, b.duration) for b in beacons.beacons
            ):
                return False
            # Blocks of beacons scheduled before time 0 (which never went
            # on air) end strictly before max-duration + guard; at or
            # past that instant the listening set equals its
            # doubly-infinite periodic extension.
            threshold = (
                max(int(b.duration) for b in beacons.beacons)
                + self.turnaround
            )
        hyper = self.receiver.hyperperiod()
        if beacons is not None:
            n_segments += hyper // int(beacons.period) * beacons.n_beacons
        n_segments += hyper // int(reception.period) * reception.n_windows
        if 2 * n_segments > max_segments:
            return False
        self.hyper = hyper
        self.threshold = threshold
        return True

    def packet_heard(
        self, rx_phase: int, start: int, end: int, model: ReceptionModel
    ) -> bool:
        """Decode decision, bit-identical to the uncached computation."""
        duration = end - start
        if (
            not self.enabled
            or start < self.threshold
            or duration > self.hyper
            or type(start) is not int
            or type(end) is not int
            or type(rx_phase) is not int
        ):
            return _packet_heard(
                self.receiver, rx_phase, start, end, model, self.turnaround
            )
        lo = (start - rx_phase) % self.hyper
        hi = lo + duration
        starts, ends = self._starts, self._ends
        i = bisect_right(starts, lo) - 1
        covers_lo = i >= 0 and ends[i] > lo
        if model is ReceptionModel.POINT:
            return covers_lo
        if model is ReceptionModel.ANY_OVERLAP:
            if covers_lo:
                return True
            return i + 1 < len(starts) and starts[i + 1] < hi
        # CONTAINMENT: one pattern segment spans the whole packet (two
        # abutting segments do not count, matching the exact equality
        # test in ``_packet_heard``).
        return i >= 0 and ends[i] >= hi

    @property
    def pattern_segments(self) -> int:
        """Number of precomputed segments (0 when disabled)."""
        return len(self._starts)


class CachedPairEvaluator:
    """Drop-in replacement for per-offset pair evaluation.

    ``evaluate(offset)`` returns exactly what
    :func:`repro.simulation.analytic.mutual_discovery_times` returns for
    the same arguments; the two directions share one
    :class:`ListeningCache` per receiver across all offsets evaluated by
    this instance.
    """

    def __init__(
        self,
        protocol_e: NDProtocol,
        protocol_f: NDProtocol,
        horizon: int,
        model: ReceptionModel = ReceptionModel.POINT,
        turnaround: int = 0,
    ) -> None:
        self.protocol_e = protocol_e
        self.protocol_f = protocol_f
        self.horizon = horizon
        self.model = model
        self.cache_e = ListeningCache(protocol_e, turnaround)
        self.cache_f = ListeningCache(protocol_f, turnaround)

    def _first_discovery(
        self,
        transmitter: NDProtocol,
        cache: ListeningCache,
        tx_phase: int,
        rx_phase: int,
    ) -> int | None:
        # Inlined ``BeaconSchedule.iter_beacons_infinite``: same
        # doubly-infinite enumeration and identical arithmetic --
        # ``reduced + instance * period`` multiplication, never a
        # running ``+= period`` sum, which would drift off the exact
        # enumeration for non-integer periods -- minus one
        # Beacon-object construction per candidate on this hot path.
        schedule = transmitter.beacons
        period = schedule.period
        pattern = [(b.time, b.duration) for b in schedule.beacons]
        horizon = self.horizon
        model = self.model
        heard = cache.packet_heard
        reduced = tx_phase % period
        instance = -1
        while True:
            base = reduced + instance * period
            if base >= horizon:
                return None
            for tau, duration in pattern:
                time = base + tau
                if 0 <= time < horizon and heard(
                    rx_phase, time, time + duration, model
                ):
                    return time
            instance += 1

    def evaluate(self, offset: int) -> DiscoveryOutcome:
        """Both-direction discovery at one phase offset (E at 0, F at
        ``offset``), exactly as the uncached analytic computation."""
        e_by_f = None
        f_by_e = None
        if (
            self.protocol_e.beacons is not None
            and self.protocol_f.reception is not None
        ):
            e_by_f = self._first_discovery(
                self.protocol_e, self.cache_f, tx_phase=0, rx_phase=offset
            )
        if (
            self.protocol_f.beacons is not None
            and self.protocol_e.reception is not None
        ):
            f_by_e = self._first_discovery(
                self.protocol_f, self.cache_e, tx_phase=offset, rx_phase=0
            )
        return DiscoveryOutcome(
            offset=offset, e_discovered_by_f=e_by_f, f_discovered_by_e=f_by_e
        )
