"""Memoized listening-set evaluation for offset sweeps.

Every offset evaluated by :func:`repro.simulation.analytic.sweep_offsets`
re-derives the receiver's effective listening set (reception windows
minus own-transmission blocking) segment-by-segment for each candidate
beacon.  That work repeats heavily across a sweep: away from time zero
the listening set is *periodic* with the receiver's schedule hyperperiod
``H = lcm(T_C, T_B)`` and shifts rigidly with the phase, so a decode
decision depends only on the phase residue
``(packet_start - rx_phase) mod H`` (plus packet length and reception
model).  Translation invariance only breaks near time zero, where
beacons scheduled before boot never went on air: blocks of those beacons
all end before ``max_beacon_duration + turnaround``.

:class:`ListeningCache` therefore precomputes the periodic pattern once
-- two hyperperiods of exact listening segments, so any query interval
of length up to ``H`` falls inside the linear list -- and answers each
decode query with a binary search instead of rebuilding segments:

* queries with ``start >= max_beacon_duration + turnaround`` are past
  the boot boundary and answered from the precomputed pattern;
* earlier queries, non-integer schedules, and degenerate shapes (packet
  longer than the hyperperiod, pattern too large to precompute) take the
  uncached exact path;

so the cache is *bit-identical* to the direct computation by
construction.  The pattern stores segments exactly as
:func:`repro.simulation.analytic.listening_segments` returns them --
unmerged, abutting windows kept distinct -- because the CONTAINMENT
model's equality test distinguishes one spanning segment from two
abutting ones.

One cache per receiver is shared across all chunks a worker process
evaluates; the sweep kernels of :mod:`repro.backends` (where the
``CachedPairEvaluator`` hot loop moved in PR 3) mirror
:func:`repro.simulation.analytic.mutual_discovery_times` on top of it.

Process-wide keyed registry (PR 2)
----------------------------------

Building a pattern costs two hyperperiods of exact segment arithmetic,
and sweep drivers used to rebuild it for every
``verified_worst_case``/``sweep_offsets`` call even when the protocol
zoo never changed.  :func:`get_listening_cache` therefore memoizes
caches process-wide, keyed by :func:`protocol_fingerprint` -- a SHA-256
digest of the *schedule contents* (beacon times/durations/period,
window starts/durations/period, the turnaround guard and the pattern
size limit).  The invalidation contract:

* **Keys cannot go stale.**  :class:`repro.core.sequences.NDProtocol`
  and both schedule classes are immutable (frozen dataclasses over
  tuples), so a fingerprint permanently identifies the exact listening
  behaviour it was computed from.  Two protocol objects with equal
  schedules share one cache; mutating a protocol is impossible without
  constructing a new object, which gets a new fingerprint.
* **Explicit invalidation exists for memory, not correctness.**
  :func:`invalidate_listening_caches` drops one fingerprint or the
  whole registry -- use it to reclaim memory after sweeping
  large-hyperperiod protocols, or to force a cold rebuild in
  benchmarks.  The registry also self-bounds (LRU eviction past
  ``_REGISTRY_CAP`` entries), so pathological zoos degrade to PR-1
  per-sweep rebuilds instead of growing without bound.
* **Fork-safety.**  Worker processes forked mid-session inherit the
  parent's registry; entries are immutable after construction, so the
  copies stay correct.  Spawned workers start empty and are seeded via
  :mod:`repro.parallel.shm` shared-memory segments instead (see
  :func:`register_listening_cache`, the hook the attach path uses).
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_right

from ..core.sequences import NDProtocol
from ..simulation.analytic import (
    listening_segments,
    packet_heard as _packet_heard,
    ReceptionModel,
)

__all__ = [
    "ListeningCache",
    "CachedPairEvaluator",
    "derive_seed",
    "protocol_fingerprint",
    "get_listening_cache",
    "register_listening_cache",
    "invalidate_listening_caches",
    "listening_cache_stats",
    "listening_cache_fingerprints",
    "set_listening_cache_cap",
]


def derive_seed(base_seed: int, index: int) -> int:
    """A stable per-item seed for sharded runs.

    Hash-derived (not ``base_seed + index``) so neighbouring items do
    not get correlated RNG streams, and a pure function of the item's
    *global* index so results are independent of how items are chunked
    across workers -- the serial and parallel grid drivers both use it.
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _all_int(*values) -> bool:
    return all(isinstance(v, int) for v in values)


# ----------------------------------------------------------------------
# Process-wide keyed registry: protocol fingerprint -> ListeningCache
# ----------------------------------------------------------------------

_DEFAULT_MAX_SEGMENTS = 1 << 22
_MEMO_CAP = 1 << 18
# Patterns below this size answer queries by direct bisect: on short
# segment lists the binary search is as cheap as a dict probe, so the
# residue memo would only pay insertion overhead.
_MEMO_MIN_SEGMENTS = 256
_REGISTRY: dict[str, "ListeningCache"] = {}
_DEFAULT_REGISTRY_CAP = 64
_REGISTRY_CAP = _DEFAULT_REGISTRY_CAP
_STATS = {"hits": 0, "misses": 0, "evictions": 0, "invalidations": 0}
# Guards _REGISTRY/_STATS/_REGISTRY_CAP: concurrent store-backed worker
# sessions (repro.campaign's parallel entry execution) share this
# registry from many threads.  Pattern *builds* stay outside the lock
# -- a lost race costs one redundant build, never a torn registry.
_REGISTRY_LOCK = threading.RLock()


def protocol_fingerprint(
    receiver: NDProtocol,
    turnaround: int = 0,
    max_segments: int = _DEFAULT_MAX_SEGMENTS,
) -> str:
    """Stable content key of a receiver's listening behaviour.

    Hashes exactly the inputs :class:`ListeningCache` reads -- schedule
    times, durations and periods (``repr`` keeps ``100`` and ``100.0``
    distinct, matching the cache's integer-grid preconditions), the
    turnaround guard and the pattern size limit.  Identity, ``alpha``
    and the protocol's display name are deliberately excluded: equal
    schedules share one pattern.
    """
    parts = [repr(turnaround), repr(max_segments)]
    beacons = receiver.beacons
    if beacons is None:
        parts.append("B=None")
    else:
        parts.append(
            f"B={beacons.period!r}:"
            + ";".join(f"{b.time!r},{b.duration!r}" for b in beacons.beacons)
        )
    reception = receiver.reception
    if reception is None:
        parts.append("C=None")
    else:
        parts.append(
            f"C={reception.period!r}:"
            + ";".join(
                f"{w.start!r},{w.duration!r}" for w in reception.windows
            )
        )
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def get_listening_cache(
    receiver: NDProtocol,
    turnaround: int = 0,
    max_segments: int = _DEFAULT_MAX_SEGMENTS,
) -> "ListeningCache":
    """The process-wide cache for ``receiver``, building it on first use.

    Repeated sweeps over the same protocol zoo hit the registry instead
    of re-deriving two hyperperiods of segments per call; see the module
    docstring for the invalidation contract.
    """
    fingerprint = protocol_fingerprint(receiver, turnaround, max_segments)
    with _REGISTRY_LOCK:
        cache = _REGISTRY.pop(fingerprint, None)
        if cache is not None:
            _STATS["hits"] += 1
            _REGISTRY[fingerprint] = cache  # re-insert: LRU recency order
            return cache
        _STATS["misses"] += 1
    # Build outside the lock: derivation can take seconds, and a losing
    # racer merely registers an equivalent pattern over the winner's.
    cache = ListeningCache(receiver, turnaround, max_segments)
    register_listening_cache(fingerprint, cache)
    return cache


def register_listening_cache(
    fingerprint: str, cache: "ListeningCache"
) -> None:
    """Install a pre-built cache under ``fingerprint`` (evicting LRU
    entries past the registry cap).

    The shared-memory attach path uses this to seed worker registries
    with segment-backed patterns; it also replaces any fork-inherited
    private copy so explicitly-requested shared memory actually wins.
    """
    with _REGISTRY_LOCK:
        _REGISTRY.pop(fingerprint, None)
        _REGISTRY[fingerprint] = cache
        while len(_REGISTRY) > _REGISTRY_CAP:
            _REGISTRY.pop(next(iter(_REGISTRY)))
            _STATS["evictions"] += 1


def invalidate_listening_caches(fingerprint: str | None = None) -> int:
    """Drop one fingerprint (or all of them) from the registry.

    Returns the number of entries removed.  Needed only to reclaim
    memory or force cold rebuilds -- protocols are immutable, so stale
    entries cannot exist (module docstring has the full contract).
    """
    with _REGISTRY_LOCK:
        if fingerprint is None:
            removed = len(_REGISTRY)
            _REGISTRY.clear()
        else:
            removed = 1 if _REGISTRY.pop(fingerprint, None) is not None else 0
        _STATS["invalidations"] += removed
        return removed


def listening_cache_stats() -> dict:
    """Registry counters (hits/misses/evictions/invalidations) + size."""
    with _REGISTRY_LOCK:
        return dict(_STATS, size=len(_REGISTRY))


def listening_cache_fingerprints() -> set[str]:
    """The fingerprints currently registered.

    :class:`repro.api.Session` snapshots this on entry so a
    ``cache_policy="release"`` profile can drop, on exit, the caches
    registered *during its open window*.  Ownership is window-based,
    not per-caller: caches that existed before the session opened are
    always preserved, while anything registered while it was open --
    including by a nested session running inside that window -- is
    released.  Entries are rebuild-on-demand memoization, so a release
    only ever costs a cold rebuild; prefer ``cache_policy="retain"``
    when concurrent sessions share a zoo.
    """
    with _REGISTRY_LOCK:
        return set(_REGISTRY)


def set_listening_cache_cap(cap: int | None = None) -> int:
    """Install a new registry LRU cap; ``None`` restores the default.

    Returns the *previous* cap so scoped callers (a session applying
    ``RuntimeProfile.cache_limit``) can restore it.  Lowering the cap
    evicts LRU entries immediately.
    """
    global _REGISTRY_CAP
    if cap is None:
        cap = _DEFAULT_REGISTRY_CAP
    cap = int(cap)
    if cap < 1:
        raise ValueError(f"cache cap must be positive, got {cap}")
    with _REGISTRY_LOCK:
        previous = _REGISTRY_CAP
        _REGISTRY_CAP = cap
        while len(_REGISTRY) > _REGISTRY_CAP:
            _REGISTRY.pop(next(iter(_REGISTRY)))
            _STATS["evictions"] += 1
        return previous


class ListeningCache:
    """Precomputed periodic listening pattern for one receiver protocol.

    Answers the same question as
    :func:`repro.simulation.analytic._packet_heard` -- "is a packet
    occupying ``[start, end)`` decoded by ``receiver`` at phase
    ``rx_phase``?" -- in ``O(log segments)`` where the pattern is
    translation-invariant, falling back to the exact per-query
    computation everywhere else.
    """

    def __init__(
        self,
        receiver: NDProtocol,
        turnaround: int = 0,
        max_segments: int = _DEFAULT_MAX_SEGMENTS,
    ) -> None:
        self.receiver = receiver
        self.turnaround = turnaround
        self.hyper = 1
        self.threshold = 0
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._memo_point: dict[int, bool] = {}
        self._memo_span: dict[tuple, bool] = {}
        self._np_pattern = None
        self.enabled = self._analyze(max_segments)
        if self.enabled:
            base = -(-self.threshold // self.hyper) * self.hyper
            segments = listening_segments(
                receiver, 0, base, base + 2 * self.hyper, turnaround
            )
            self._starts = [a - base for a, _ in segments]
            self._ends = [b - base for _, b in segments]
        self._use_memo = len(self._starts) >= _MEMO_MIN_SEGMENTS

    @classmethod
    def from_pattern(
        cls,
        receiver: NDProtocol,
        turnaround: int,
        hyper: int,
        threshold: int,
        starts,
        ends,
    ) -> "ListeningCache":
        """An enabled cache over an externally owned pattern.

        ``starts``/``ends`` may be any int sequence supporting indexing,
        ``len`` and :func:`bisect.bisect_right` -- in particular the
        ``int64`` memoryviews :mod:`repro.parallel.shm` carves out of a
        shared-memory segment, so workers map the pattern instead of
        copying it.  The caller guarantees the values equal what
        ``__init__`` would have computed; decisions are then
        bit-identical by construction.
        """
        cache = cls.__new__(cls)
        cache.receiver = receiver
        cache.turnaround = turnaround
        cache.hyper = hyper
        cache.threshold = threshold
        cache._starts = starts
        cache._ends = ends
        cache._memo_point = {}
        cache._memo_span = {}
        cache._np_pattern = None
        cache.enabled = True
        cache._use_memo = len(starts) >= _MEMO_MIN_SEGMENTS
        return cache

    def _analyze(self, max_segments: int) -> bool:
        """Integer-grid + size preconditions for the precomputed path."""
        reception = self.receiver.reception
        if reception is None or not isinstance(reception.period, int):
            return False
        if not all(
            _all_int(w.start, w.duration) for w in reception.windows
        ):
            return False
        threshold = 0
        n_segments = 0
        beacons = self.receiver.beacons
        if beacons is not None:
            if not isinstance(beacons.period, int) or not all(
                _all_int(b.time, b.duration) for b in beacons.beacons
            ):
                return False
            # Blocks of beacons scheduled before time 0 (which never went
            # on air) end strictly before max-duration + guard; at or
            # past that instant the listening set equals its
            # doubly-infinite periodic extension.
            threshold = (
                max(int(b.duration) for b in beacons.beacons)
                + self.turnaround
            )
        hyper = self.receiver.hyperperiod()
        if beacons is not None:
            n_segments += hyper // int(beacons.period) * beacons.n_beacons
        n_segments += hyper // int(reception.period) * reception.n_windows
        if 2 * n_segments > max_segments:
            return False
        self.hyper = hyper
        self.threshold = threshold
        return True

    def packet_heard(
        self, rx_phase: int, start: int, end: int, model: ReceptionModel
    ) -> bool:
        """Decode decision, bit-identical to the uncached computation.

        Past the boot threshold the decision is a pure function of the
        phase residue ``(start - rx_phase) mod H`` (plus duration and
        model), so each distinct residue is resolved against the pattern
        once and memoized -- sweeps revisit the same residues constantly
        (beacon grids and offset grids are both periodic), and a dict
        hit is several times cheaper than even the binary search.  The
        memo is capped so adversarial hyperperiods degrade to plain
        bisect instead of unbounded memory.
        """
        duration = end - start
        if (
            not self.enabled
            or start < self.threshold
            or duration > self.hyper
            or type(start) is not int
            or type(end) is not int
            or type(rx_phase) is not int
        ):
            return _packet_heard(
                self.receiver, rx_phase, start, end, model, self.turnaround
            )
        lo = (start - rx_phase) % self.hyper
        use_memo = self._use_memo
        if model is ReceptionModel.POINT:
            # POINT ignores the packet length: key on the residue alone.
            if use_memo:
                memo = self._memo_point
                cached = memo.get(lo)
                if cached is None:
                    i = bisect_right(self._starts, lo) - 1
                    cached = i >= 0 and self._ends[i] > lo
                    if len(memo) < _MEMO_CAP:
                        memo[lo] = cached
                return cached
            i = bisect_right(self._starts, lo) - 1
            return i >= 0 and self._ends[i] > lo
        if use_memo:
            key = (lo, duration, model is ReceptionModel.ANY_OVERLAP)
            memo = self._memo_span
            cached = memo.get(key)
            if cached is not None:
                return cached
        hi = lo + duration
        starts, ends = self._starts, self._ends
        i = bisect_right(starts, lo) - 1
        covers_lo = i >= 0 and ends[i] > lo
        if model is ReceptionModel.ANY_OVERLAP:
            result = covers_lo or (
                i + 1 < len(starts) and starts[i + 1] < hi
            )
        else:
            # CONTAINMENT: one pattern segment spans the whole packet
            # (two abutting segments do not count, matching the exact
            # equality test in ``packet_heard``).
            result = i >= 0 and ends[i] >= hi
        if use_memo and len(memo) < _MEMO_CAP:
            memo[key] = result
        return result

    @property
    def pattern_segments(self) -> int:
        """Number of precomputed segments (0 when disabled)."""
        return len(self._starts)

    def pattern_arrays(self):
        """The pattern as ``(starts, ends)`` int64 NumPy arrays.

        The one sanctioned path every array-consuming kernel (``numpy``,
        ``native``, the incremental strided engine) resolves patterns
        through -- built once per cache object, on first use, and owned
        by the cache so its lifetime *is* the invalidation contract:
        caches are immutable after construction (fingerprint-keyed, see
        the module docstring), so the arrays can never go stale while
        the cache lives, and dropping the cache (registry LRU eviction,
        :func:`invalidate_listening_caches`) drops them with it.

        Always copies -- also out of the shared-memory memoryviews a
        :meth:`from_pattern` cache wraps -- because the arrays must
        outlive any zero-copy segment view a worker releases at exit.
        Requires NumPy; raises ``BackendUnavailable`` without it (only
        vectorizing kernels, which already guard on NumPy, call this).
        """
        arrays = self._np_pattern
        if arrays is None:
            from ..backends import _np

            np = _np.np
            if np is None:
                from ..backends.base import BackendUnavailable

                raise BackendUnavailable(
                    "pattern_arrays() needs NumPy; install the [fast] "
                    "extra or use the list-backed pattern directly"
                )
            arrays = (
                np.array(self._starts, dtype=np.int64),
                np.array(self._ends, dtype=np.int64),
            )
            self._np_pattern = arrays
        return arrays


def __getattr__(name: str):
    # Backward-compatible lazy re-export: the evaluator hot loop moved
    # to ``repro.backends.python_loop`` (the reference sweep kernel) in
    # PR 3.  Lazy so importing this module never pulls in the backends
    # package -- the dependency now points the other way.
    if name == "CachedPairEvaluator":
        from ..backends.python_loop import CachedPairEvaluator

        return CachedPairEvaluator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
