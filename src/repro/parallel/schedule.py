"""Cost-model-sorted work-stealing schedule for scenario grids.

Grid scenarios vary wildly in cost -- a dense 20-device run simulates
hundreds of times more channel events than a sparse pair over the same
horizon -- so PR 1's uniform contiguous chunks left tail chunks running
long after every other worker went idle.  PR 2 replaces them for grids
with the classic longest-processing-time-first discipline over a shared
queue: scenarios are *submitted* individually in descending estimated
cost, idle workers steal the next pending index from the pool's shared
task queue, and results are merged back by original grid index.

Scheduling order is a pure wall-clock concern: each scenario's RNG seed
derives from its *grid* index (:func:`repro.parallel.cache.derive_seed`)
and the merge is index-stable, so any schedule -- chunked, stolen, or
serial -- produces bit-identical result lists.

The cost model is deliberately cheap and deterministic: it only has to
rank scenarios, not predict wall-clock.  The event-driven simulator's
work is one heap event per beacon/window edge plus an O(devices) channel
interaction per transmission, which :func:`estimate_scenario_cost`
mirrors from the schedules alone.  Scenario objects may also carry their
own ``cost_hint()`` (see :class:`repro.workloads.Scenario`), which takes
precedence.
"""

from __future__ import annotations

__all__ = [
    "default_simulation_cost",
    "estimate_scenario_cost",
    "plan_longest_first",
]


def default_simulation_cost(protocols, horizon) -> float:
    """Event-rate cost model for one event-driven simulation.

    The simulator pays one heap event per beacon or window edge plus an
    O(devices) channel interaction per transmission, so the estimate is
    horizon times the summed event rate with beacons weighted by the
    device count.  Only the *ranking* across scenarios matters, not
    absolute accuracy.  The single copy of the formula --
    :meth:`repro.workloads.Scenario.cost_hint` delegates here.
    """
    n = len(protocols)
    rate = 0.0
    for proto in protocols:
        if proto.beacons is not None:
            rate += proto.beacons.n_beacons / float(proto.beacons.period) * n
        if proto.reception is not None:
            rate += proto.reception.n_windows / float(proto.reception.period)
    return float(horizon) * rate


def estimate_scenario_cost(scenario) -> float:
    """Deterministic relative cost of one grid scenario.

    Uses the scenario's own ``cost_hint()`` when available (the
    override point for custom scenario types), otherwise falls back to
    :func:`default_simulation_cost` over the duck-typed
    ``protocols``/``horizon`` attributes.
    """
    hint = getattr(scenario, "cost_hint", None)
    if callable(hint):
        return float(hint())
    return default_simulation_cost(scenario.protocols, scenario.horizon)


def plan_longest_first(scenarios) -> list[int]:
    """Submission order: indices by descending cost, ties by grid index.

    Deterministic (ties break toward the earlier scenario) so repeated
    runs submit identically -- only completion order may vary, and the
    index-stable merge hides even that.
    """
    costs = [estimate_scenario_cost(s) for s in scenarios]
    return sorted(range(len(costs)), key=lambda i: (-costs[i], i))
