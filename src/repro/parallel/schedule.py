"""Cost-model-sorted work-stealing schedule for scenario grids.

Grid scenarios vary wildly in cost -- a dense 20-device run simulates
hundreds of times more channel events than a sparse pair over the same
horizon -- so PR 1's uniform contiguous chunks left tail chunks running
long after every other worker went idle.  PR 2 replaces them for grids
with the classic longest-processing-time-first discipline over a shared
queue: scenarios are *submitted* individually in descending estimated
cost, idle workers steal the next pending index from the pool's shared
task queue, and results are merged back by original grid index.

Scheduling order is a pure wall-clock concern: each scenario's RNG seed
derives from its *grid* index (:func:`repro.parallel.cache.derive_seed`)
and the merge is index-stable, so any schedule -- chunked, stolen, or
serial -- produces bit-identical result lists.

The cost model is deliberately cheap and deterministic: it only has to
rank scenarios, not predict wall-clock.  The event-driven simulator's
work is one heap event per beacon/window edge plus an O(devices) channel
interaction per transmission, which :func:`estimate_scenario_cost`
mirrors from the schedules alone.  Scenario objects may also carry their
own ``cost_hint()`` (see :class:`repro.workloads.Scenario`), which takes
precedence.

Since PR 3 the two event-rate components (beacon-side, window-side) are
separately weighted, and the weights can be **calibrated from real
timings**: ``benchmarks/bench_parallel_speedup.py`` records measured
per-scenario wall-clock (plus the two components) into
``results/BENCH_parallel.json``, and :func:`fit_cost_weights` solves the
least-squares fit ``seconds ~ w_beacon * beacon + w_window * window``
over those rows.  Install the result with :func:`use_cost_weights` to
have every ``cost_hint()`` (and therefore work-stealing submission
order) reflect the measured machine; scheduling order remains a pure
wall-clock concern, so results stay bit-identical under any weights.
"""

from __future__ import annotations

import json

__all__ = [
    "calibration_rows",
    "cost_components",
    "cost_weights",
    "default_simulation_cost",
    "estimate_scenario_cost",
    "fit_cost_weights",
    "plan_longest_first",
    "use_cost_weights",
]

#: (beacon-side, window-side) event weights.  The defaults weigh both
#: equally -- the pre-calibration PR-2 model.
_DEFAULT_COST_WEIGHTS = (1.0, 1.0)
_cost_weights = _DEFAULT_COST_WEIGHTS


def cost_components(protocols, horizon) -> tuple[float, float]:
    """The two raw event-rate components of one simulation's cost.

    ``(beacon_component, window_component)``: horizon times the summed
    beacon rate (weighted by the device count -- each transmission is an
    O(devices) channel interaction) and horizon times the summed window
    rate.  :func:`fit_cost_weights` regresses measured wall-clock onto
    exactly these two numbers.
    """
    n = len(protocols)
    beacon_rate = 0.0
    window_rate = 0.0
    for proto in protocols:
        if proto.beacons is not None:
            beacon_rate += (
                proto.beacons.n_beacons / float(proto.beacons.period) * n
            )
        if proto.reception is not None:
            window_rate += (
                proto.reception.n_windows / float(proto.reception.period)
            )
    return float(horizon) * beacon_rate, float(horizon) * window_rate


def default_simulation_cost(protocols, horizon, weights=None) -> float:
    """Event-rate cost model for one event-driven simulation.

    The weighted sum of :func:`cost_components`; ``weights`` defaults to
    the process-wide pair installed by :func:`use_cost_weights`.  Only
    the *ranking* across scenarios matters, not absolute accuracy.  The
    single copy of the formula --
    :meth:`repro.workloads.Scenario.cost_hint` delegates here.
    """
    w_beacon, w_window = weights if weights is not None else _cost_weights
    beacon_component, window_component = cost_components(protocols, horizon)
    return w_beacon * beacon_component + w_window * window_component


def cost_weights() -> tuple[float, float]:
    """The currently installed ``(beacon, window)`` cost weights."""
    return _cost_weights


def use_cost_weights(weights=None) -> tuple[float, float]:
    """Install process-wide cost weights; ``None`` restores defaults.

    Returns the *previous* pair so callers (benchmarks, tests) can
    restore it.  Affects only scheduling order -- results are seed- and
    index-stable regardless.
    """
    global _cost_weights
    previous = _cost_weights
    if weights is None:
        _cost_weights = _DEFAULT_COST_WEIGHTS
    else:
        w_beacon, w_window = float(weights[0]), float(weights[1])
        if w_beacon < 0 or w_window < 0:
            raise ValueError(f"cost weights must be non-negative: {weights}")
        _cost_weights = (w_beacon, w_window)
    return previous


def fit_cost_weights(bench) -> tuple[float, float]:
    """Calibrate ``(beacon, window)`` weights from measured timings.

    ``bench`` is ``results/BENCH_parallel.json`` content (a dict, a JSON
    string, or a path to the file) whose ``per_scenario`` rows carry
    ``beacon_component``/``window_component``/``seconds`` -- exactly
    what ``benchmarks/bench_parallel_speedup.py`` records.  Solves the
    unregularized least squares ``seconds ~ w_b * beacon + w_w * window``
    via the 2x2 normal equations (pure python: calibration must not
    require the optional NumPy extra), clamping negative solutions to
    zero; degenerate inputs (collinear components, too few rows) fall
    back to one shared scale so the fit can only refine the ranking,
    never destroy it.  Install the result with :func:`use_cost_weights`.
    """
    if isinstance(bench, (str, bytes)) and bench.lstrip()[:1] in (
        "{", "[", b"{", b"[",
    ):
        bench = json.loads(bench)
    elif not isinstance(bench, (dict, list)):
        with open(bench, encoding="utf-8") as handle:
            bench = json.load(handle)
    if isinstance(bench, dict):
        rows = bench.get("per_scenario")
        if rows is None:
            raise ValueError(
                "bench payload has no 'per_scenario' rows -- re-run "
                "benchmarks/bench_parallel_speedup.py (PR 3+) to record "
                "measured per-scenario timings"
            )
    else:
        rows = bench
    samples = [
        (
            float(row["beacon_component"]),
            float(row["window_component"]),
            float(row["seconds"]),
        )
        for row in rows
    ]
    if not samples:
        raise ValueError("fit_cost_weights needs at least one sample row")
    s_bb = sum(b * b for b, _, _ in samples)
    s_ww = sum(w * w for _, w, _ in samples)
    s_bw = sum(b * w for b, w, _ in samples)
    s_bs = sum(b * s for b, _, s in samples)
    s_ws = sum(w * s for _, w, s in samples)
    det = s_bb * s_ww - s_bw * s_bw
    scale_norm = sum((b + w) ** 2 for b, w, _ in samples)
    if len(samples) < 2 or det <= 1e-12 * max(s_bb * s_ww, 1e-300):
        # Collinear or underdetermined: one shared scale.
        shared = (
            sum((b + w) * s for b, w, s in samples) / scale_norm
            if scale_norm
            else 1.0
        )
        shared = max(shared, 0.0)
        return (shared, shared)
    w_beacon = (s_bs * s_ww - s_ws * s_bw) / det
    w_window = (s_ws * s_bb - s_bs * s_bw) / det
    return (max(w_beacon, 0.0), max(w_window, 0.0))


def calibration_rows(scenarios, seconds) -> list[dict]:
    """Pair scenarios with their measured wall-clock into fit rows.

    The bridge between a grid run's own timings
    (``ParallelSweep.map_scenarios(collect_timings=True)``) and
    :func:`fit_cost_weights`: each row carries the scenario's two
    event-rate components plus its measured seconds, exactly the
    ``per_scenario`` layout the benchmark records.  This is what lets
    :meth:`repro.api.Session.grid` auto-calibrate without a separate
    bench step.
    """
    scenarios = list(scenarios)
    seconds = list(seconds)
    if len(scenarios) != len(seconds):
        raise ValueError(
            f"scenarios and seconds must align "
            f"({len(scenarios)} vs {len(seconds)})"
        )
    rows = []
    for scenario, measured in zip(scenarios, seconds):
        beacon_component, window_component = cost_components(
            scenario.protocols, scenario.horizon
        )
        rows.append(
            {
                "scenario": getattr(scenario, "name", ""),
                "beacon_component": beacon_component,
                "window_component": window_component,
                "seconds": float(measured),
            }
        )
    return rows


def estimate_scenario_cost(scenario) -> float:
    """Deterministic relative cost of one grid scenario.

    Uses the scenario's own ``cost_hint()`` when available (the
    override point for custom scenario types), otherwise falls back to
    :func:`default_simulation_cost` over the duck-typed
    ``protocols``/``horizon`` attributes.
    """
    hint = getattr(scenario, "cost_hint", None)
    if callable(hint):
        return float(hint())
    return default_simulation_cost(scenario.protocols, scenario.horizon)


def plan_longest_first(scenarios) -> list[int]:
    """Submission order: indices by descending cost, ties by grid index.

    Deterministic (ties break toward the earlier scenario) so repeated
    runs submit identically -- only completion order may vary, and the
    index-stable merge hides even that.
    """
    costs = [estimate_scenario_cost(s) for s in scenarios]
    return sorted(range(len(costs)), key=lambda i: (-costs[i], i))
