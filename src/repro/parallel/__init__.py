"""Parallel orchestration of independent simulation runs.

The sweep workloads behind the paper's validation experiments are
embarrassingly parallel -- one exact computation per phase offset, one
DES replay per spot-check, one event-driven run per scenario grid
point.  This package shards them across worker processes while
guaranteeing results *bit-identical* to the serial path (same iteration
order, same tie-breaking, same derived seeds), so everything downstream
-- tier-1 tests, paper-figure reproductions -- is unchanged, only
faster.

* :class:`ParallelSweep` -- the executor: chunked offset sweeps with
  order-stable merging, one-submission-per-offset DES spot-checks, and
  cost-model-sorted work-stealing scenario grids
  (:mod:`repro.parallel.schedule`).
* :class:`ListeningCache` / :class:`CachedPairEvaluator` -- memoized
  listening-set evaluation, bit-identical to the exact computation by
  construction.
* :func:`get_listening_cache` -- the process-wide keyed registry
  (protocol fingerprint -> pattern) behind every evaluator.
* :mod:`repro.parallel.shm` -- shared-memory pattern transport, so
  workers map the parent's int64 pattern arrays instead of copying.
* :func:`derive_seed` -- chunking- and scheduling-invariant per-item
  seeding.

Cache invalidation contract
---------------------------

Registry keys are :func:`protocol_fingerprint` content hashes of
immutable schedule objects, so **entries can never go stale**: a
protocol cannot be mutated, only replaced by a new object with a new
fingerprint.  :func:`invalidate_listening_caches` exists to reclaim
memory (or force cold rebuilds in benchmarks), never for correctness;
the registry additionally self-bounds via LRU eviction.  Forked workers
inherit the parent registry (safe: entries are immutable); spawned
workers start empty and are seeded through shared memory.

Shared-memory lifecycle contract
--------------------------------

For each pooled sweep the parent packs every enabled pattern into one
``multiprocessing.shared_memory`` int64 segment via
:class:`repro.parallel.shm.SharedPatternStore`, a context manager that
**always unlinks the segment when the sweep exits** (success or error).
Workers receive the segment *name* through the pool initializer (fork-
and spawn-safe), map it once, and register zero-copy pattern views in
their own registries; their mappings are released by an ``atexit`` hook,
and POSIX keeps mapped memory valid past the unlink, so no ordering
hazard exists between parent teardown and in-flight chunks.  Pass
``ParallelSweep(shared_memory=False)`` for the PR-1 copy-per-worker
behaviour; results are bit-identical either way.
"""

from .cache import (
    CachedPairEvaluator,
    derive_seed,
    get_listening_cache,
    invalidate_listening_caches,
    ListeningCache,
    listening_cache_stats,
    protocol_fingerprint,
)
from .executor import ParallelSweep
from .schedule import estimate_scenario_cost, plan_longest_first
from .shm import PatternHandle, SharedPatternStore

__all__ = [
    "CachedPairEvaluator",
    "derive_seed",
    "estimate_scenario_cost",
    "get_listening_cache",
    "invalidate_listening_caches",
    "ListeningCache",
    "listening_cache_stats",
    "ParallelSweep",
    "PatternHandle",
    "plan_longest_first",
    "protocol_fingerprint",
    "SharedPatternStore",
]
