"""Parallel orchestration of independent simulation runs.

The sweep workloads behind the paper's validation experiments are
embarrassingly parallel -- one exact computation per phase offset, one
DES replay per spot-check, one event-driven run per scenario grid
point.  This package shards them across worker processes while
guaranteeing results *bit-identical* to the serial path (same iteration
order, same tie-breaking, same derived seeds), so everything downstream
-- tier-1 tests, paper-figure reproductions -- is unchanged, only
faster.

* :class:`ParallelSweep` -- the executor: chunked offset sweeps with
  order-stable merging, one-submission-per-offset DES spot-checks, and
  cost-model-sorted work-stealing scenario grids
  (:mod:`repro.parallel.schedule`).  Since PR 3 the *kernel* each
  worker runs is a pluggable :mod:`repro.backends` selection
  (``backend="auto"|"python"|"numpy"|"pooled"``): this package owns
  process orchestration, the backends package owns the math.
* :class:`ListeningCache` -- the memoized listening-set pattern,
  bit-identical to the exact computation by construction (the
  ``CachedPairEvaluator`` hot loop on top of it now lives in
  :mod:`repro.backends.python_loop`; the name re-exports from here for
  compatibility).
* :func:`get_listening_cache` -- the process-wide keyed registry
  (protocol fingerprint -> pattern) behind every kernel.
* :mod:`repro.parallel.shm` -- shared-memory pattern transport, so
  workers map the parent's int64 pattern arrays instead of copying.
* :func:`derive_seed` -- chunking- and scheduling-invariant per-item
  seeding.
* :func:`fit_cost_weights` / :func:`use_cost_weights` -- calibrate the
  grid scheduler's event-rate cost model from measured per-scenario
  wall-clock (``results/BENCH_parallel.json``).

Cache invalidation contract
---------------------------

Registry keys are :func:`protocol_fingerprint` content hashes of
immutable schedule objects, so **entries can never go stale**: a
protocol cannot be mutated, only replaced by a new object with a new
fingerprint.  :func:`invalidate_listening_caches` exists to reclaim
memory (or force cold rebuilds in benchmarks), never for correctness;
the registry additionally self-bounds via LRU eviction.  Forked workers
inherit the parent registry (safe: entries are immutable); spawned
workers start empty and are seeded through shared memory.

Shared-memory lifecycle contract
--------------------------------

For each pooled sweep the parent packs every enabled pattern into one
``multiprocessing.shared_memory`` int64 segment via
:class:`repro.parallel.shm.SharedPatternStore`, a context manager that
**always unlinks the segment when the sweep exits** (success or error).
Workers receive the segment *name* through the pool initializer (fork-
and spawn-safe), map it once, and register zero-copy pattern views in
their own registries; their mappings are released by an ``atexit`` hook,
and POSIX keeps mapped memory valid past the unlink, so no ordering
hazard exists between parent teardown and in-flight chunks.  Pass
``ParallelSweep(shared_memory=False)`` for the PR-1 copy-per-worker
behaviour; results are bit-identical either way.

Persistent-pool lifecycle contract
----------------------------------

``ParallelSweep(backend="pooled")`` (and the CLI's
``--backend pooled``) swaps the per-sweep pool for the **persistent**
one of :mod:`repro.backends.pooled`, shared per
``(inner kernel, jobs, mp_context)`` shape: created lazily on the
first sharded batch, reused across offset sweeps, DES spot-check
batches *and* scenario grids, shut down explicitly via
``PooledBackend.close()`` / ``shutdown_pooled_backends()`` with an
``atexit`` backstop so no interpreter exit leaks worker processes.
Persistent workers hold no per-sweep initializer state: work arrives
fully parameterized and patterns resolve through each worker's own
keyed registry, which stays warm across sweeps.  Since PR 5 the
persistent pool additionally pins a pool-lifetime shared-memory
**pattern arena** (:class:`repro.parallel.shm.PatternArena`): the
parent publishes each pair's registry patterns into append-only int64
segments and every sweep chunk carries the covering handles, so even
spawn-start workers map their patterns zero-copy instead of paying one
cold rebuild per protocol.  Arena segments are released exactly when
the owning pool closes (``Session.__exit__`` /
``shutdown_pooled_backends``) -- the per-sweep
:class:`~repro.parallel.shm.SharedPatternStore` contract (unlink on
sweep exit) is unchanged for per-sweep pools.
"""

from .cache import (
    derive_seed,
    get_listening_cache,
    invalidate_listening_caches,
    ListeningCache,
    listening_cache_fingerprints,
    listening_cache_stats,
    protocol_fingerprint,
    set_listening_cache_cap,
)
from .executor import ParallelSweep
from .schedule import (
    calibration_rows,
    cost_weights,
    estimate_scenario_cost,
    fit_cost_weights,
    plan_longest_first,
    use_cost_weights,
)
from .shm import PatternArena, PatternHandle, SharedPatternStore

__all__ = [
    "CachedPairEvaluator",
    "calibration_rows",
    "cost_weights",
    "derive_seed",
    "estimate_scenario_cost",
    "fit_cost_weights",
    "get_listening_cache",
    "invalidate_listening_caches",
    "ListeningCache",
    "listening_cache_fingerprints",
    "listening_cache_stats",
    "ParallelSweep",
    "PatternArena",
    "PatternHandle",
    "plan_longest_first",
    "protocol_fingerprint",
    "set_listening_cache_cap",
    "SharedPatternStore",
    "use_cost_weights",
]


def __getattr__(name: str):
    # Lazy back-compat re-export; see repro.parallel.cache.__getattr__.
    if name == "CachedPairEvaluator":
        from ..backends.python_loop import CachedPairEvaluator

        return CachedPairEvaluator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
