"""Parallel orchestration of independent simulation runs.

The sweep workloads behind the paper's validation experiments are
embarrassingly parallel -- one exact computation per phase offset, one
event-driven run per scenario grid point.  This package shards them
across worker processes while guaranteeing results *bit-identical* to
the serial path (same iteration order, same tie-breaking, same derived
seeds), so everything downstream -- tier-1 tests, paper-figure
reproductions -- is unchanged, only faster.

* :class:`ParallelSweep` -- chunked multiprocessing executor with
  order-stable merging.
* :class:`ListeningCache` / :class:`CachedPairEvaluator` -- memoized
  listening-set evaluation keyed on phase residue, shared within and
  across chunks inside each worker.
* :func:`derive_seed` -- chunking-invariant per-item seeding.
"""

from .cache import CachedPairEvaluator, derive_seed, ListeningCache
from .executor import ParallelSweep

__all__ = [
    "CachedPairEvaluator",
    "derive_seed",
    "ListeningCache",
    "ParallelSweep",
]
