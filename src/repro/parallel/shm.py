"""Shared-memory transport for precomputed listening patterns.

A :class:`repro.parallel.cache.ListeningCache` pattern is two flat int
arrays (segment starts/ends over two receiver hyperperiods).  PR 1's
workers each rebuilt -- or, under ``fork``, copy-on-wrote -- their own
copy; for large hyperperiods that multiplies both init time and resident
memory by the worker count.  This module packs every enabled pattern of
a sweep into **one** ``multiprocessing.shared_memory`` segment of int64
words, so workers map the parent's arrays instead of copying them.

Lifecycle contract
------------------

* The **parent** owns the segment.  :class:`SharedPatternStore` is a
  context manager: ``publish()`` creates the segment and copies the
  pattern words in; leaving the ``with`` block (or calling ``close()``)
  closes the mapping and **unlinks** the segment, so a sweep can never
  leak kernel objects past its own lifetime -- also not on error paths.
* **Workers** receive a picklable :class:`PatternHandle` (segment name
  plus per-fingerprint offsets) through the pool initializer -- names
  travel through ``initargs``, so the scheme works under both ``fork``
  and ``spawn`` start methods.  :func:`attach_pattern_caches` maps the
  segment once per worker and registers zero-copy
  ``ListeningCache.from_pattern`` views (int64 memoryview slices) in the
  worker's keyed registry, replacing any fork-inherited private copies.
* Workers never unlink; their mappings are released by an ``atexit``
  hook (memoryviews first, then the segment) so pool shutdown stays
  warning-free.  POSIX keeps a mapped segment's memory valid even after
  the parent unlinks the name, so in-flight chunks are always safe.
"""

from __future__ import annotations

import atexit
from array import array
from dataclasses import dataclass
from multiprocessing import shared_memory

from .cache import ListeningCache, protocol_fingerprint, register_listening_cache

__all__ = [
    "PatternEntry",
    "PatternHandle",
    "SharedPatternStore",
    "attach_pattern_caches",
]

# Patterns below this many segments are copied out of the segment into
# plain lists on attach: list indexing beats memoryview indexing on the
# query hot path, and the copy costs microseconds and kilobytes.  At or
# above it, workers keep zero-copy int64 views -- per-worker memory and
# attach time are what shared memory is for, and exactly the
# large-hyperperiod patterns that dominate memory cross this line.
ZERO_COPY_MIN_SEGMENTS = 4096


@dataclass(frozen=True)
class PatternEntry:
    """Where one receiver's pattern lives inside the shared segment."""

    fingerprint: str
    hyper: int
    threshold: int
    offset: int
    """Index of the first ``starts`` word in the int64 segment."""
    length: int
    """Segments in the pattern; ``ends`` follows at ``offset + length``."""


@dataclass(frozen=True)
class PatternHandle:
    """Picklable description of a published segment (sent via initargs)."""

    shm_name: str
    total_words: int
    entries: tuple[PatternEntry, ...]


class SharedPatternStore:
    """Parent-side owner of one shared pattern segment per sweep."""

    def __init__(self) -> None:
        self._shm: shared_memory.SharedMemory | None = None
        self.handle: PatternHandle | None = None

    def publish(
        self, caches: dict[str, ListeningCache]
    ) -> PatternHandle | None:
        """Pack all *enabled* patterns into one int64 segment.

        Returns ``None`` (and allocates nothing) when no cache has a
        precomputable pattern -- non-integer schedules and oversized
        hyperperiods then simply keep their per-query fallback path.
        """
        if self._shm is not None:
            raise RuntimeError("store already holds a published segment")
        enabled = {
            fp: cache
            for fp, cache in caches.items()
            if cache.enabled and cache.pattern_segments
        }
        if not enabled:
            return None
        total_words = sum(2 * c.pattern_segments for c in enabled.values())
        shm = shared_memory.SharedMemory(create=True, size=8 * total_words)
        entries = []
        try:
            view = shm.buf.cast("q")
            try:
                offset = 0
                for fp in sorted(enabled):
                    cache = enabled[fp]
                    n = cache.pattern_segments
                    view[offset : offset + n] = array("q", cache._starts)
                    view[offset + n : offset + 2 * n] = array("q", cache._ends)
                    entries.append(
                        PatternEntry(
                            fingerprint=fp,
                            hyper=cache.hyper,
                            threshold=cache.threshold,
                            offset=offset,
                            length=n,
                        )
                    )
                    offset += 2 * n
            finally:
                # The parent only writes; releasing the view immediately
                # keeps close()/unlink() free of exported-pointer errors.
                view.release()
        except BaseException:
            # Packing failed (e.g. a pattern value outside int64): the
            # no-leak contract still holds -- tear the segment down
            # before propagating.
            shm.close()
            shm.unlink()
            raise
        self._shm = shm
        self.handle = PatternHandle(shm.name, total_words, tuple(entries))
        return self.handle

    def close(self) -> None:
        """Release the mapping and unlink the segment name (idempotent)."""
        shm, self._shm = self._shm, None
        self.handle = None
        if shm is None:
            return
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double-unlink race
            pass

    def __enter__(self) -> "SharedPatternStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

# Mapped segments and every exported memoryview, kept alive for the
# worker's lifetime and torn down (views before segments) at exit.
_ATTACHED_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
_ATTACHED_VIEWS: list[memoryview] = []
_ATEXIT_REGISTERED = False


def _release_attached() -> None:
    global _ATEXIT_REGISTERED
    for view in reversed(_ATTACHED_VIEWS):
        view.release()
    _ATTACHED_VIEWS.clear()
    for shm in _ATTACHED_SEGMENTS.values():
        try:
            shm.close()
        except BufferError:  # pragma: no cover - stray external view
            pass
    _ATTACHED_SEGMENTS.clear()
    _ATEXIT_REGISTERED = False


def _map_segment(handle: PatternHandle) -> memoryview:
    global _ATEXIT_REGISTERED
    shm = _ATTACHED_SEGMENTS.get(handle.shm_name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=handle.shm_name)
        _ATTACHED_SEGMENTS[handle.shm_name] = shm
        if not _ATEXIT_REGISTERED:
            atexit.register(_release_attached)
            _ATEXIT_REGISTERED = True
    view = shm.buf.cast("q")
    _ATTACHED_VIEWS.append(view)
    return view


def attach_pattern_caches(handle: PatternHandle, receivers) -> int:
    """Register segment-backed caches for ``receivers`` in this process.

    ``receivers`` is an iterable of ``(protocol, turnaround)`` pairs;
    each one whose fingerprint appears in ``handle`` gets a
    :meth:`ListeningCache.from_pattern` over the mapped segment --
    zero-copy int64 memoryview slices for patterns of at least
    ``ZERO_COPY_MIN_SEGMENTS`` segments, a plain-list copy below that
    (the segment is still the single transport; only the per-query
    representation differs) -- installed via
    :func:`repro.parallel.cache.register_listening_cache`, deliberately
    replacing fork-inherited private copies.  Returns the number of
    caches registered.
    """
    by_fp = {entry.fingerprint: entry for entry in handle.entries}
    matched = {}
    for protocol, turnaround in receivers:
        fingerprint = protocol_fingerprint(protocol, turnaround)
        entry = by_fp.get(fingerprint)
        if entry is not None:
            matched[fingerprint] = (protocol, turnaround, entry)
    if not matched:
        return 0
    view = _map_segment(handle)
    for fingerprint, (protocol, turnaround, entry) in matched.items():
        lo, n = entry.offset, entry.length
        starts = view[lo : lo + n]
        ends = view[lo + n : lo + 2 * n]
        if n >= ZERO_COPY_MIN_SEGMENTS:
            _ATTACHED_VIEWS.extend((starts, ends))
        else:
            starts = list(starts)
            ends = list(ends)
        register_listening_cache(
            fingerprint,
            ListeningCache.from_pattern(
                protocol, turnaround, entry.hyper, entry.threshold, starts, ends
            ),
        )
    return len(matched)
