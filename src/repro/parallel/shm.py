"""Shared-memory transport for precomputed listening patterns.

A :class:`repro.parallel.cache.ListeningCache` pattern is two flat int
arrays (segment starts/ends over two receiver hyperperiods).  PR 1's
workers each rebuilt -- or, under ``fork``, copy-on-wrote -- their own
copy; for large hyperperiods that multiplies both init time and resident
memory by the worker count.  This module packs every enabled pattern of
a sweep into **one** ``multiprocessing.shared_memory`` segment of int64
words, so workers map the parent's arrays instead of copying them.

Lifecycle contract
------------------

* The **parent** owns the segment.  :class:`SharedPatternStore` is a
  context manager: ``publish()`` creates the segment and copies the
  pattern words in; leaving the ``with`` block (or calling ``close()``)
  closes the mapping and **unlinks** the segment, so a sweep can never
  leak kernel objects past its own lifetime -- also not on error paths.
* **Workers** receive a picklable :class:`PatternHandle` (segment name
  plus per-fingerprint offsets) through the pool initializer -- names
  travel through ``initargs``, so the scheme works under both ``fork``
  and ``spawn`` start methods.  :func:`attach_pattern_caches` maps the
  segment once per worker and registers zero-copy
  ``ListeningCache.from_pattern`` views (int64 memoryview slices) in the
  worker's keyed registry, replacing any fork-inherited private copies.
* Workers never unlink; their mappings are released by an ``atexit``
  hook (memoryviews first, then the segment) so pool shutdown stays
  warning-free.  POSIX keeps a mapped segment's memory valid even after
  the parent unlinks the name, so in-flight chunks are always safe.
* For **persistent pools** the per-sweep lifetime is wrong by design:
  :class:`PatternArena` (PR 5) owns append-only segments for the
  pool's lifetime instead, published incrementally from the keyed
  cache registry and attached idempotently per chunk
  (:func:`attach_pattern_arena`), released when the owning
  :class:`repro.backends.pooled.PooledBackend` closes.
"""

from __future__ import annotations

import atexit
from array import array
from dataclasses import dataclass
from multiprocessing import shared_memory

from .cache import ListeningCache, protocol_fingerprint, register_listening_cache

__all__ = [
    "PatternArena",
    "PatternEntry",
    "PatternHandle",
    "SharedPatternStore",
    "attach_pattern_arena",
    "attach_pattern_caches",
]

# Patterns below this many segments are copied out of the segment into
# plain lists on attach: list indexing beats memoryview indexing on the
# query hot path, and the copy costs microseconds and kilobytes.  At or
# above it, workers keep zero-copy int64 views -- per-worker memory and
# attach time are what shared memory is for, and exactly the
# large-hyperperiod patterns that dominate memory cross this line.
ZERO_COPY_MIN_SEGMENTS = 4096


@dataclass(frozen=True)
class PatternEntry:
    """Where one receiver's pattern lives inside the shared segment."""

    fingerprint: str
    hyper: int
    threshold: int
    offset: int
    """Index of the first ``starts`` word in the int64 segment."""
    length: int
    """Segments in the pattern; ``ends`` follows at ``offset + length``."""


@dataclass(frozen=True)
class PatternHandle:
    """Picklable description of a published segment (sent via initargs)."""

    shm_name: str
    total_words: int
    entries: tuple[PatternEntry, ...]


class SharedPatternStore:
    """Parent-side owner of one shared pattern segment per sweep."""

    def __init__(self) -> None:
        self._shm: shared_memory.SharedMemory | None = None
        self.handle: PatternHandle | None = None

    def publish(
        self, caches: dict[str, ListeningCache]
    ) -> PatternHandle | None:
        """Pack all *enabled* patterns into one int64 segment.

        Returns ``None`` (and allocates nothing) when no cache has a
        precomputable pattern -- non-integer schedules and oversized
        hyperperiods then simply keep their per-query fallback path.
        """
        if self._shm is not None:
            raise RuntimeError("store already holds a published segment")
        enabled = {
            fp: cache
            for fp, cache in caches.items()
            if cache.enabled and cache.pattern_segments
        }
        if not enabled:
            return None
        total_words = sum(2 * c.pattern_segments for c in enabled.values())
        shm = shared_memory.SharedMemory(create=True, size=8 * total_words)
        entries = []
        try:
            view = shm.buf.cast("q")
            try:
                offset = 0
                for fp in sorted(enabled):
                    cache = enabled[fp]
                    n = cache.pattern_segments
                    view[offset : offset + n] = array("q", cache._starts)
                    view[offset + n : offset + 2 * n] = array("q", cache._ends)
                    entries.append(
                        PatternEntry(
                            fingerprint=fp,
                            hyper=cache.hyper,
                            threshold=cache.threshold,
                            offset=offset,
                            length=n,
                        )
                    )
                    offset += 2 * n
            finally:
                # The parent only writes; releasing the view immediately
                # keeps close()/unlink() free of exported-pointer errors.
                view.release()
        except BaseException:
            # Packing failed (e.g. a pattern value outside int64): the
            # no-leak contract still holds -- tear the segment down
            # before propagating.
            shm.close()
            shm.unlink()
            raise
        self._shm = shm
        self.handle = PatternHandle(shm.name, total_words, tuple(entries))
        return self.handle

    def close(self) -> None:
        """Release the mapping and unlink the segment name (idempotent)."""
        shm, self._shm = self._shm, None
        self.handle = None
        if shm is None:
            return
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double-unlink race
            pass

    def __enter__(self) -> "SharedPatternStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PatternArena:
    """Long-lived, incrementally grown pattern store for persistent pools.

    A :class:`SharedPatternStore` is per-sweep by contract: one segment,
    published once, unlinked when the sweep exits.  A persistent
    :class:`repro.backends.pooled.PooledBackend` has the opposite
    lifetime -- its workers survive across sweeps, and under ``spawn``
    each one used to rebuild every listening pattern once per protocol
    before the keyed registry went warm.  The arena pins the patterns to
    the *pool's* lifetime instead: the parent packs each batch of
    not-yet-published patterns (resolved through the keyed
    listening-cache registry) into an additional immutable segment, and
    workers map the segments zero-copy on first use
    (:func:`attach_pattern_arena`), so even a spawn-start worker's first
    chunk finds its patterns already built.

    Segments are append-only -- shared memory cannot grow in place, so
    new fingerprints get a new segment rather than a repack -- and the
    arena never unlinks until :meth:`close`, which the owning pool calls
    from its own ``close()`` (reached via ``Session.__exit__`` releasing
    the last retain reference, or ``shutdown_pooled_backends``).  Worker
    mappings are released by the same ``atexit`` hook as per-sweep
    segments; POSIX keeps mapped memory valid past the unlink, so
    teardown order cannot race in-flight chunks.
    """

    def __init__(self) -> None:
        self._stores: list[SharedPatternStore] = []
        self._by_fingerprint: dict[str, PatternHandle] = {}

    @property
    def segments(self) -> int:
        """Published shared-memory segments currently owned."""
        return len(self._stores)

    @property
    def fingerprints(self) -> frozenset[str]:
        """Fingerprints whose patterns live in some arena segment."""
        return frozenset(self._by_fingerprint)

    def ensure(self, caches: dict[str, ListeningCache]) -> int:
        """Publish one new segment covering the not-yet-arena'd entries
        of ``caches`` (fingerprint -> cache).  Disabled or pattern-less
        caches are skipped -- their per-query fallback path needs no
        transport.  Returns the number of patterns newly published;
        0 means every enabled pattern was already covered (the warm
        path, a dict probe per fingerprint).
        """
        fresh = {
            fingerprint: cache
            for fingerprint, cache in caches.items()
            if fingerprint not in self._by_fingerprint
            and cache.enabled
            and cache.pattern_segments
        }
        if not fresh:
            return 0
        store = SharedPatternStore()
        handle = store.publish(fresh)
        if handle is None:  # pragma: no cover - fresh is pre-filtered
            return 0
        self._stores.append(store)
        for entry in handle.entries:
            self._by_fingerprint[entry.fingerprint] = handle
        return len(handle.entries)

    def handles_for(self, fingerprints) -> tuple[PatternHandle, ...]:
        """The minimal handle set covering ``fingerprints`` (patterns
        published together share a segment and therefore a handle);
        unknown fingerprints are simply not covered."""
        handles: list[PatternHandle] = []
        seen: set[str] = set()
        for fingerprint in fingerprints:
            handle = self._by_fingerprint.get(fingerprint)
            if handle is not None and handle.shm_name not in seen:
                seen.add(handle.shm_name)
                handles.append(handle)
        return tuple(handles)

    def close(self) -> None:
        """Unlink every owned segment (idempotent)."""
        stores, self._stores = self._stores, []
        self._by_fingerprint.clear()
        for store in stores:
            store.close()

    def __enter__(self) -> "PatternArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

# Mapped segments and every exported memoryview, kept alive for the
# worker's lifetime and torn down (views before segments) at exit.
_ATTACHED_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
_ATTACHED_VIEWS: list[memoryview] = []
# Fingerprints this process already registered from an arena segment:
# the guard that makes attach_pattern_arena idempotent per chunk, so a
# worker's segment-backed caches (and their residue memos) survive
# instead of being rebuilt on every submission.
_ARENA_REGISTERED: set[str] = set()
_ATEXIT_REGISTERED = False


def _release_attached() -> None:
    global _ATEXIT_REGISTERED
    for view in reversed(_ATTACHED_VIEWS):
        view.release()
    _ATTACHED_VIEWS.clear()
    for shm in _ATTACHED_SEGMENTS.values():
        try:
            shm.close()
        except BufferError:  # pragma: no cover - stray external view
            pass
    _ATTACHED_SEGMENTS.clear()
    _ARENA_REGISTERED.clear()
    _ATEXIT_REGISTERED = False


def _map_segment(handle: PatternHandle) -> memoryview:
    global _ATEXIT_REGISTERED
    shm = _ATTACHED_SEGMENTS.get(handle.shm_name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=handle.shm_name)
        _ATTACHED_SEGMENTS[handle.shm_name] = shm
        if not _ATEXIT_REGISTERED:
            atexit.register(_release_attached)
            _ATEXIT_REGISTERED = True
    view = shm.buf.cast("q")
    _ATTACHED_VIEWS.append(view)
    return view


def _register_from_handle(
    handle: PatternHandle, receivers, skip: frozenset | set = frozenset()
) -> set[str]:
    """Register segment-backed caches for every receiver whose
    fingerprint appears in ``handle`` and not in ``skip``; returns the
    fingerprints registered (the shared body behind both attach
    entry points)."""
    by_fp = {entry.fingerprint: entry for entry in handle.entries}
    matched = {}
    for protocol, turnaround in receivers:
        fingerprint = protocol_fingerprint(protocol, turnaround)
        if fingerprint in skip:
            continue
        entry = by_fp.get(fingerprint)
        if entry is not None:
            matched[fingerprint] = (protocol, turnaround, entry)
    if not matched:
        return set()
    view = _map_segment(handle)
    for fingerprint, (protocol, turnaround, entry) in matched.items():
        lo, n = entry.offset, entry.length
        starts = view[lo : lo + n]
        ends = view[lo + n : lo + 2 * n]
        if n >= ZERO_COPY_MIN_SEGMENTS:
            _ATTACHED_VIEWS.extend((starts, ends))
        else:
            starts = list(starts)
            ends = list(ends)
        register_listening_cache(
            fingerprint,
            ListeningCache.from_pattern(
                protocol, turnaround, entry.hyper, entry.threshold, starts, ends
            ),
        )
    return set(matched)


def attach_pattern_caches(handle: PatternHandle, receivers) -> int:
    """Register segment-backed caches for ``receivers`` in this process.

    ``receivers`` is an iterable of ``(protocol, turnaround)`` pairs;
    each one whose fingerprint appears in ``handle`` gets a
    :meth:`ListeningCache.from_pattern` over the mapped segment --
    zero-copy int64 memoryview slices for patterns of at least
    ``ZERO_COPY_MIN_SEGMENTS`` segments, a plain-list copy below that
    (the segment is still the single transport; only the per-query
    representation differs) -- installed via
    :func:`repro.parallel.cache.register_listening_cache`, deliberately
    replacing fork-inherited private copies.  Returns the number of
    caches registered.
    """
    return len(_register_from_handle(handle, receivers))


def attach_pattern_arena(
    handles: tuple[PatternHandle, ...], receivers
) -> int:
    """Idempotently register arena-backed caches in this worker.

    Unlike :func:`attach_pattern_caches` (one call per pool boot,
    through the initializer), this runs on **every** pooled chunk -- a
    persistent pool has no per-sweep initializer -- so it must be a
    cheap no-op once a pattern is installed: fingerprints already
    registered from an arena are skipped (preserving the worker's warm
    residue memos), and only genuinely new ones map their segment and
    register.  Returns the number of caches newly registered.
    """
    registered = 0
    for handle in handles:
        fresh = _register_from_handle(handle, receivers, _ARENA_REGISTERED)
        _ARENA_REGISTERED.update(fresh)
        registered += len(fresh)
    return registered
