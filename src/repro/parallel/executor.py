"""Multiprocessing executor for offset sweeps, spot-checks and grids.

The experiments behind every bound-validation figure reduce to many
*independent* evaluations -- one exact pair computation per phase
offset, one DES replay per spot-check offset, or one event-driven
network run per grid point.  :class:`ParallelSweep` shards them across a
pool of worker processes while preserving the serial path's results
exactly:

* workers return *per-offset outcomes*, and the final report is built
  by the very same :func:`repro.simulation.analytic.summarize_outcomes`
  the serial sweep uses, over the same offset order -- aggregation
  rules (strict-``>`` tie-breaking, left-to-right mean summation) exist
  in one place, so the parallel path cannot drift from them;
* seeded runs derive each item's seed from its *global* index via
  :func:`repro.parallel.cache.derive_seed`, never from its chunk or
  submission slot, so scheduling is invisible to the RNG.

Offset sweeps stay contiguously chunked (per-offset cost is near
uniform); the parent builds the listening patterns once through the
keyed registry and ships them to workers as a shared-memory segment
(:mod:`repro.parallel.shm`), so workers map instead of rebuild.  Grid
scenarios instead go through the cost-model-sorted work-stealing
schedule of :mod:`repro.parallel.schedule`: one submission per scenario,
longest first, merged back by grid index.  DES spot-checks follow the
same one-submission-per-offset pattern.

Worker payloads are plain protocols/offsets sent through module-level
functions; nothing closes over simulator state, so everything pickles
under both fork and spawn start methods.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import multiprocessing

from ..core.sequences import NDProtocol
from ..simulation.analytic import (
    DiscoveryOutcome,
    mutual_discovery_times,
    ReceptionModel,
    summarize_outcomes,
    SweepReport,
)
from .cache import (
    CachedPairEvaluator,
    derive_seed,
    get_listening_cache,
    protocol_fingerprint,
)
from .schedule import default_simulation_cost, plan_longest_first
from .shm import attach_pattern_caches, SharedPatternStore

__all__ = ["ParallelSweep"]

# Estimated simulated-event floor below which DES spot-checks stay
# in-process even with jobs > 1: pool startup costs tens of
# milliseconds, so a handful of short replays finishes serially before
# a pool would boot -- on any core count.  Roughly one second of
# serial replay work at typical event throughput.
_SPOT_POOL_MIN_EVENTS = 100_000


# ----------------------------------------------------------------------
# Worker-side state and entry points (module-level: picklable by name)
# ----------------------------------------------------------------------

_PAIR_EVALUATOR: CachedPairEvaluator | None = None
_NETWORK_CONFIG: dict | None = None
_SPOT_CONFIG: dict | None = None


def _init_pair_worker(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    horizon: int,
    model: ReceptionModel,
    turnaround: int,
    handle,
) -> None:
    global _PAIR_EVALUATOR
    if handle is not None:
        # Map the parent's pattern segment before the evaluator resolves
        # its caches, so the keyed registry hands out segment-backed
        # patterns instead of rebuilding (spawn) or CoW-copying (fork).
        attach_pattern_caches(
            handle, [(protocol_e, turnaround), (protocol_f, turnaround)]
        )
    _PAIR_EVALUATOR = CachedPairEvaluator(
        protocol_e, protocol_f, horizon, model, turnaround
    )


def _sweep_chunk(offsets: list[int]) -> list[tuple]:
    """Evaluate one offset chunk in order.

    Outcomes travel back as plain ``(offset, e_by_f, f_by_e)`` tuples --
    pickling a dataclass costs several times a tuple, and at thousands
    of outcomes per sweep the difference is measurable.  The parent
    rebuilds :class:`DiscoveryOutcome` field-for-field, so callers see
    exactly the serial path's objects.
    """
    evaluator = _PAIR_EVALUATOR
    assert evaluator is not None, "worker not initialized"
    results = []
    for offset in offsets:
        outcome = evaluator.evaluate(offset)
        results.append(
            (outcome.offset, outcome.e_discovered_by_f, outcome.f_discovered_by_e)
        )
    return results


def _init_spot_worker(config: dict) -> None:
    global _SPOT_CONFIG
    _SPOT_CONFIG = config


def _spot_check_replay(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    offset: int,
    horizon: int,
    model: ReceptionModel,
    turnaround: int,
) -> tuple[DiscoveryOutcome, DiscoveryOutcome]:
    """One spot check: exact analytic outcome plus a full DES replay.

    The analytic side deliberately uses the *uncached*
    :func:`repro.simulation.analytic.mutual_discovery_times`, keeping
    the spot check an independent cross-validation of both the DES and
    the pattern-cache layers the sweep itself ran through.  The single
    shared body is what makes the pooled and in-process spot-check
    paths identical by construction.
    """
    from ..simulation.runner import simulate_pair

    analytic = mutual_discovery_times(
        protocol_e, protocol_f, offset, horizon, model, turnaround
    )
    des = simulate_pair(
        protocol_e, protocol_f, offset, horizon, model, turnaround
    )
    return analytic, des


def _spot_check_one(offset: int) -> tuple[DiscoveryOutcome, DiscoveryOutcome]:
    """Worker entry point: replay one offset from the initializer config."""
    config = _SPOT_CONFIG
    assert config is not None, "worker not initialized"
    return _spot_check_replay(
        config["protocol_e"],
        config["protocol_f"],
        offset,
        config["horizon"],
        config["model"],
        config["turnaround"],
    )


def _init_network_worker(config: dict) -> None:
    global _NETWORK_CONFIG
    _NETWORK_CONFIG = config


def _network_one(item: tuple[int, object]):
    """Run one (global_index, scenario) network simulation.

    The global index rides along only to derive the scenario's
    schedule-invariant seed; result placement uses the index map kept by
    the submitting side.
    """
    from ..simulation.runner import _run_scenario

    config = _NETWORK_CONFIG
    assert config is not None, "worker not initialized"
    global_index, scenario = item
    return _run_scenario(
        scenario,
        seed=derive_seed(config["base_seed"], global_index),
        reception_model=config["reception_model"],
        turnaround=config["turnaround"],
        advertising_jitter=config["advertising_jitter"],
    )


def _network_chunk(items: list[tuple[int, object]]) -> list:
    """Run one chunk of (global_index, scenario) network simulations."""
    return [_network_one(item) for item in items]


def _chunk(items: list, n_chunks: int) -> list[list]:
    """Contiguous, order-preserving partition into at most ``n_chunks``."""
    n = len(items)
    n_chunks = max(1, min(n_chunks, n))
    size, extra = divmod(n, n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        stop = start + size + (1 if i < extra else 0)
        chunks.append(items[start:stop])
        start = stop
    return chunks


class ParallelSweep:
    """Shard independent evaluations across worker processes.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` uses the CPU count, ``<= 1`` runs the
        plain serial path in-process.
    chunks_per_job:
        Chunks submitted per worker for offset sweeps (smaller chunks
        balance load, larger ones amortize IPC); the default of 4 keeps
        every worker busy without measurable pickling overhead.
    mp_context:
        ``multiprocessing`` start-method name; defaults to ``fork``
        where available (Linux) and ``spawn`` elsewhere.  Results are
        identical either way -- workers hold no inherited mutable state.
    shared_memory:
        Ship precomputed listening patterns to sweep workers as one
        int64 ``multiprocessing.shared_memory`` segment (workers map
        instead of copy).  ``False`` keeps PR-1 behaviour where each
        worker resolves patterns through its own registry.  Results are
        bit-identical either way.
    schedule:
        Grid scheduling discipline for :meth:`map_scenarios`:
        ``"steal"`` (default) submits scenarios individually in
        longest-estimated-first order over the pool's shared queue;
        ``"chunk"`` keeps PR-1 uniform contiguous chunks.  Results are
        bit-identical either way -- seeds derive from grid indices and
        merging is index-stable.
    """

    def __init__(
        self,
        jobs: int | None = None,
        chunks_per_job: int = 4,
        mp_context: str | None = None,
        shared_memory: bool = True,
        schedule: str = "steal",
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 0:
            raise ValueError(f"jobs must be non-negative, got {jobs}")
        self.jobs = jobs
        if chunks_per_job < 1:
            raise ValueError("chunks_per_job must be positive")
        self.chunks_per_job = chunks_per_job
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.mp_context = mp_context
        self.shared_memory = shared_memory
        if schedule not in ("steal", "chunk"):
            raise ValueError(
                f"schedule must be 'steal' or 'chunk', got {schedule!r}"
            )
        self.schedule = schedule

    # ------------------------------------------------------------------
    def sweep_offsets(
        self,
        protocol_e: NDProtocol,
        protocol_f: NDProtocol,
        offsets: list[int],
        horizon: int,
        model: ReceptionModel = ReceptionModel.POINT,
        turnaround: int = 0,
    ) -> SweepReport:
        """Parallel :func:`repro.simulation.analytic.sweep_offsets`,
        bit-identical to the serial call."""
        return summarize_outcomes(
            self.evaluate_offsets(
                protocol_e, protocol_f, offsets, horizon, model, turnaround
            )
        )

    # ------------------------------------------------------------------
    def evaluate_offsets(
        self,
        protocol_e: NDProtocol,
        protocol_f: NDProtocol,
        offsets: list[int],
        horizon: int,
        model: ReceptionModel = ReceptionModel.POINT,
        turnaround: int = 0,
    ) -> list[DiscoveryOutcome]:
        """Parallel :func:`repro.simulation.analytic.evaluate_offsets`:
        per-offset outcomes in input order, merged from chunk results in
        chunk-index order."""
        offsets = list(offsets)
        if self.jobs <= 1 or len(offsets) < 2:
            # In-process fallback still goes through the cached
            # evaluator: same results, and callers get the pattern
            # speedup without any pool overhead.
            evaluator = CachedPairEvaluator(
                protocol_e, protocol_f, horizon, model, turnaround
            )
            return [evaluator.evaluate(offset) for offset in offsets]
        chunks = _chunk(offsets, self.jobs * self.chunks_per_job)
        ctx = multiprocessing.get_context(self.mp_context)
        with SharedPatternStore() as store:
            handle = None
            if self.shared_memory:
                # Build (or registry-hit) the patterns once in the
                # parent and publish them; workers map the segment.
                caches = {
                    protocol_fingerprint(receiver, turnaround):
                        get_listening_cache(receiver, turnaround)
                    for receiver in (protocol_e, protocol_f)
                }
                handle = store.publish(caches)
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(chunks)),
                mp_context=ctx,
                initializer=_init_pair_worker,
                initargs=(
                    protocol_e, protocol_f, horizon, model, turnaround, handle,
                ),
            ) as pool:
                # pool.map yields chunk results in submission order, so
                # flattening preserves the input offset order exactly.
                return [
                    DiscoveryOutcome(
                        offset=offset,
                        e_discovered_by_f=e_by_f,
                        f_discovered_by_e=f_by_e,
                    )
                    for chunk in pool.map(_sweep_chunk, chunks)
                    for offset, e_by_f, f_by_e in chunk
                ]

    # ------------------------------------------------------------------
    def spot_check_pairs(
        self,
        protocol_e: NDProtocol,
        protocol_f: NDProtocol,
        offsets: list[int],
        horizon: int,
        model: ReceptionModel = ReceptionModel.POINT,
        turnaround: int = 0,
    ) -> list[tuple[DiscoveryOutcome, DiscoveryOutcome]]:
        """Per-offset ``(analytic, DES)`` outcome pairs, in input order.

        The DES replays dominate ``verified_worst_case`` once sweeps are
        fast; each offset is an independent simulation, so they shard
        one-per-submission like the work-stealing grid path.  Both the
        serial and the pooled path run identical computations per
        offset, so the result list is independent of ``jobs``.

        Batches whose estimated simulated-event count falls below
        ``_SPOT_POOL_MIN_EVENTS`` run in-process regardless of ``jobs``:
        short replays (small horizons, sparse schedules, few offsets)
        finish serially faster than a pool can boot.  Long-horizon
        validations -- where the replays actually dominate -- clear the
        floor and shard.
        """
        offsets = list(offsets)
        estimated_events = len(offsets) * default_simulation_cost(
            [protocol_e, protocol_f], horizon
        )
        if (
            self.jobs <= 1
            or len(offsets) < 2
            or estimated_events < _SPOT_POOL_MIN_EVENTS
        ):
            return [
                _spot_check_replay(
                    protocol_e, protocol_f, offset, horizon, model, turnaround
                )
                for offset in offsets
            ]
        config = {
            "protocol_e": protocol_e,
            "protocol_f": protocol_f,
            "horizon": horizon,
            "model": model,
            "turnaround": turnaround,
        }
        ctx = multiprocessing.get_context(self.mp_context)
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(offsets)),
            mp_context=ctx,
            initializer=_init_spot_worker,
            initargs=(config,),
        ) as pool:
            return list(pool.map(_spot_check_one, offsets))

    # ------------------------------------------------------------------
    def map_scenarios(
        self,
        scenarios: list,
        base_seed: int = 0,
        reception_model: ReceptionModel = ReceptionModel.POINT,
        turnaround: int = 0,
        advertising_jitter: int = 0,
    ) -> list:
        """Run one network simulation per scenario, in input order.

        Each scenario's RNG seed derives from its global index, so the
        returned list is identical whatever ``jobs`` or ``schedule`` is
        (including the in-process serial path used for ``jobs <= 1``).
        """
        from ..simulation.runner import _run_scenario

        scenarios = list(scenarios)
        if self.jobs <= 1 or len(scenarios) < 2:
            return [
                _run_scenario(
                    scenario,
                    seed=derive_seed(base_seed, i),
                    reception_model=reception_model,
                    turnaround=turnaround,
                    advertising_jitter=advertising_jitter,
                )
                for i, scenario in enumerate(scenarios)
            ]
        config = {
            "base_seed": base_seed,
            "reception_model": reception_model,
            "turnaround": turnaround,
            "advertising_jitter": advertising_jitter,
        }
        ctx = multiprocessing.get_context(self.mp_context)
        if self.schedule == "chunk":
            chunks = _chunk(
                list(enumerate(scenarios)), self.jobs * self.chunks_per_job
            )
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(chunks)),
                mp_context=ctx,
                initializer=_init_network_worker,
                initargs=(config,),
            ) as pool:
                return [
                    result
                    for chunk in pool.map(_network_chunk, chunks)
                    for result in chunk
                ]
        # Work stealing: submit longest-estimated-first, one scenario
        # per task, and let idle workers pull from the shared queue;
        # results land back at their grid index.
        order = plan_longest_first(scenarios)
        results: list = [None] * len(scenarios)
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(scenarios)),
            mp_context=ctx,
            initializer=_init_network_worker,
            initargs=(config,),
        ) as pool:
            futures = {
                index: pool.submit(_network_one, (index, scenarios[index]))
                for index in order
            }
            for index, future in futures.items():
                results[index] = future.result()
        return results
