"""Chunked multiprocessing executor for offset sweeps and scenario grids.

The experiments behind every bound-validation figure reduce to many
*independent* evaluations -- one exact pair computation per phase
offset, or one event-driven network run per grid point.
:class:`ParallelSweep` shards those lists into contiguous chunks,
evaluates the chunks in a pool of worker processes, and merges the
partial results back in chunk order, preserving the serial path's
results exactly:

* workers return *per-offset outcomes*, and the final report is built
  by the very same :func:`repro.simulation.analytic.summarize_outcomes`
  the serial sweep uses, over the same offset order -- aggregation
  rules (strict-``>`` tie-breaking, left-to-right mean summation) exist
  in one place, so the parallel path cannot drift from them;
* seeded runs derive each item's seed from its *global* index via
  :func:`repro.parallel.cache.derive_seed`, never from its chunk, so
  chunking is invisible to the RNG.

Workers evaluate offsets through :class:`CachedPairEvaluator`, sharing
the memoized listening-set cache across all chunks a worker receives --
on a single core this cache, not the process count, is the speedup.

Worker payloads are plain protocols/offsets sent through module-level
functions; nothing closes over simulator state, so everything pickles
under both fork and spawn start methods.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import multiprocessing

from ..core.sequences import NDProtocol
from ..simulation.analytic import (
    DiscoveryOutcome,
    ReceptionModel,
    summarize_outcomes,
    SweepReport,
)
from .cache import CachedPairEvaluator, derive_seed

__all__ = ["ParallelSweep"]


# ----------------------------------------------------------------------
# Worker-side state and entry points (module-level: picklable by name)
# ----------------------------------------------------------------------

_PAIR_EVALUATOR: CachedPairEvaluator | None = None
_NETWORK_CONFIG: dict | None = None


def _init_pair_worker(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    horizon: int,
    model: ReceptionModel,
    turnaround: int,
) -> None:
    global _PAIR_EVALUATOR
    _PAIR_EVALUATOR = CachedPairEvaluator(
        protocol_e, protocol_f, horizon, model, turnaround
    )


def _sweep_chunk(offsets: list[int]) -> list[DiscoveryOutcome]:
    """Evaluate one offset chunk in order."""
    evaluator = _PAIR_EVALUATOR
    assert evaluator is not None, "worker not initialized"
    return [evaluator.evaluate(offset) for offset in offsets]


def _init_network_worker(config: dict) -> None:
    global _NETWORK_CONFIG
    _NETWORK_CONFIG = config


def _network_chunk(items: list[tuple[int, object]]) -> list:
    """Run one chunk of (global_index, scenario) network simulations.

    The global index rides along only to derive the scenario's
    chunking-invariant seed; ordering comes from ``pool.map``.
    """
    from ..simulation.runner import _run_scenario

    config = _NETWORK_CONFIG
    assert config is not None, "worker not initialized"
    return [
        _run_scenario(
            scenario,
            seed=derive_seed(config["base_seed"], global_index),
            reception_model=config["reception_model"],
            turnaround=config["turnaround"],
            advertising_jitter=config["advertising_jitter"],
        )
        for global_index, scenario in items
    ]


def _chunk(items: list, n_chunks: int) -> list[list]:
    """Contiguous, order-preserving partition into at most ``n_chunks``."""
    n = len(items)
    n_chunks = max(1, min(n_chunks, n))
    size, extra = divmod(n, n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        stop = start + size + (1 if i < extra else 0)
        chunks.append(items[start:stop])
        start = stop
    return chunks


class ParallelSweep:
    """Shard independent evaluations across worker processes.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` uses the CPU count, ``<= 1`` runs the
        plain serial path in-process.
    chunks_per_job:
        Chunks submitted per worker (smaller chunks balance load,
        larger ones amortize IPC); the default of 4 keeps every worker
        busy without measurable pickling overhead.
    mp_context:
        ``multiprocessing`` start-method name; defaults to ``fork``
        where available (Linux) and ``spawn`` elsewhere.  Results are
        identical either way -- workers hold no inherited mutable state.
    """

    def __init__(
        self,
        jobs: int | None = None,
        chunks_per_job: int = 4,
        mp_context: str | None = None,
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 0:
            raise ValueError(f"jobs must be non-negative, got {jobs}")
        self.jobs = jobs
        if chunks_per_job < 1:
            raise ValueError("chunks_per_job must be positive")
        self.chunks_per_job = chunks_per_job
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.mp_context = mp_context

    # ------------------------------------------------------------------
    def sweep_offsets(
        self,
        protocol_e: NDProtocol,
        protocol_f: NDProtocol,
        offsets: list[int],
        horizon: int,
        model: ReceptionModel = ReceptionModel.POINT,
        turnaround: int = 0,
    ) -> SweepReport:
        """Parallel :func:`repro.simulation.analytic.sweep_offsets`,
        bit-identical to the serial call."""
        return summarize_outcomes(
            self.evaluate_offsets(
                protocol_e, protocol_f, offsets, horizon, model, turnaround
            )
        )

    # ------------------------------------------------------------------
    def evaluate_offsets(
        self,
        protocol_e: NDProtocol,
        protocol_f: NDProtocol,
        offsets: list[int],
        horizon: int,
        model: ReceptionModel = ReceptionModel.POINT,
        turnaround: int = 0,
    ) -> list[DiscoveryOutcome]:
        """Parallel :func:`repro.simulation.analytic.evaluate_offsets`:
        per-offset outcomes in input order, merged from chunk results in
        chunk-index order."""
        offsets = list(offsets)
        if self.jobs <= 1 or len(offsets) < 2:
            # In-process fallback still goes through the cached
            # evaluator: same results, and callers get the pattern
            # speedup without any pool overhead.
            evaluator = CachedPairEvaluator(
                protocol_e, protocol_f, horizon, model, turnaround
            )
            return [evaluator.evaluate(offset) for offset in offsets]
        chunks = _chunk(offsets, self.jobs * self.chunks_per_job)
        ctx = multiprocessing.get_context(self.mp_context)
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(chunks)),
            mp_context=ctx,
            initializer=_init_pair_worker,
            initargs=(protocol_e, protocol_f, horizon, model, turnaround),
        ) as pool:
            # pool.map yields chunk results in submission order, so
            # flattening preserves the input offset order exactly.
            return [
                outcome
                for chunk in pool.map(_sweep_chunk, chunks)
                for outcome in chunk
            ]

    # ------------------------------------------------------------------
    def map_scenarios(
        self,
        scenarios: list,
        base_seed: int = 0,
        reception_model: ReceptionModel = ReceptionModel.POINT,
        turnaround: int = 0,
        advertising_jitter: int = 0,
    ) -> list:
        """Run one network simulation per scenario, in input order.

        Each scenario's RNG seed derives from its global index, so the
        returned list is identical whatever ``jobs`` is (including the
        in-process serial path used for ``jobs <= 1``).
        """
        from ..simulation.runner import _run_scenario

        scenarios = list(scenarios)
        if self.jobs <= 1 or len(scenarios) < 2:
            return [
                _run_scenario(
                    scenario,
                    seed=derive_seed(base_seed, i),
                    reception_model=reception_model,
                    turnaround=turnaround,
                    advertising_jitter=advertising_jitter,
                )
                for i, scenario in enumerate(scenarios)
            ]
        config = {
            "base_seed": base_seed,
            "reception_model": reception_model,
            "turnaround": turnaround,
            "advertising_jitter": advertising_jitter,
        }
        chunks = _chunk(
            list(enumerate(scenarios)), self.jobs * self.chunks_per_job
        )
        ctx = multiprocessing.get_context(self.mp_context)
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(chunks)),
            mp_context=ctx,
            initializer=_init_network_worker,
            initargs=(config,),
        ) as pool:
            return [
                result
                for chunk in pool.map(_network_chunk, chunks)
                for result in chunk
            ]
