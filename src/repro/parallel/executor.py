"""Multiprocessing executor for offset sweeps, spot-checks and grids.

The experiments behind every bound-validation figure reduce to many
*independent* evaluations -- one exact pair computation per phase
offset, one DES replay per spot-check offset, or one event-driven
network run per grid point.  :class:`ParallelSweep` shards them across a
pool of worker processes while preserving the serial path's results
exactly:

* workers return *per-offset outcomes*, and the final report is built
  by the very same :func:`repro.simulation.analytic.summarize_outcomes`
  the serial sweep uses, over the same offset order -- aggregation
  rules (strict-``>`` tie-breaking, left-to-right mean summation) exist
  in one place, so the parallel path cannot drift from them;
* seeded runs derive each item's seed from its *global* index via
  :func:`repro.parallel.cache.derive_seed`, never from its chunk or
  submission slot, so scheduling is invisible to the RNG.

Offset sweeps stay contiguously chunked (per-offset cost is near
uniform); the parent builds the listening patterns once through the
keyed registry and ships them to workers as a shared-memory segment
(:mod:`repro.parallel.shm`), so workers map instead of rebuild.  The
*kernel* each worker (or the in-process path) runs is a pluggable
:class:`repro.backends.SweepBackend` selected by name -- ``"auto"``
resolves to the vectorized NumPy kernel when NumPy is importable and
the pure-python reference otherwise, and ``"pooled"`` swaps the
per-sweep pool for the lazily created persistent one so many-small-
sweep workloads stop paying pool startup.  Grid scenarios go through
the cost-model-sorted work-stealing schedule of
:mod:`repro.parallel.schedule`: one submission per scenario, longest
first, merged back by grid index.  DES spot-checks follow the same
one-submission-per-offset pattern.

Worker payloads are plain protocols/offsets sent through module-level
functions; nothing closes over simulator state, so everything pickles
under both fork and spawn start methods.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import multiprocessing

from ..core.sequences import NDProtocol
from ..simulation.analytic import (
    DiscoveryOutcome,
    mutual_discovery_times,
    ReceptionModel,
    summarize_outcomes,
    SweepReport,
)
from .cache import (
    derive_seed,
    get_listening_cache,
    protocol_fingerprint,
)
from .schedule import default_simulation_cost, plan_longest_first
from .shm import attach_pattern_caches, SharedPatternStore

__all__ = ["ParallelSweep"]

# Estimated simulated-event floor below which DES spot-checks stay
# in-process even with jobs > 1: pool startup costs tens of
# milliseconds, so a handful of short replays finishes serially before
# a pool would boot -- on any core count.  Roughly one second of
# serial replay work at typical event throughput.
_SPOT_POOL_MIN_EVENTS = 100_000


# ----------------------------------------------------------------------
# Worker-side state and entry points (module-level: picklable by name)
# ----------------------------------------------------------------------

_PAIR_BACKEND = None
_PAIR_PARAMS = None
_NETWORK_CONFIG: dict | None = None
_SPOT_CONFIG: dict | None = None


def _init_pair_worker(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    horizon: int,
    model: ReceptionModel,
    turnaround: int,
    handle,
    backend_name: str = "python",
) -> None:
    global _PAIR_BACKEND, _PAIR_PARAMS
    from ..backends import get_backend, SweepParams

    if handle is not None:
        # Map the parent's pattern segment before the kernel resolves
        # its caches, so the keyed registry hands out segment-backed
        # patterns instead of rebuilding (spawn) or CoW-copying (fork).
        attach_pattern_caches(
            handle, [(protocol_e, turnaround), (protocol_f, turnaround)]
        )
    _PAIR_BACKEND = get_backend(backend_name)
    _PAIR_PARAMS = SweepParams(
        protocol_e, protocol_f, horizon, model, turnaround
    )


def _sweep_chunk(offsets: list[int]) -> list[tuple]:
    """Evaluate one offset chunk in order through the worker's kernel.

    Outcomes travel back in the shared tuple wire format
    (:func:`repro.backends.base.encode_outcomes`); the parent rebuilds
    :class:`DiscoveryOutcome` field-for-field, so callers see exactly
    the serial path's objects.
    """
    from ..backends.base import encode_outcomes

    backend = _PAIR_BACKEND
    assert backend is not None, "worker not initialized"
    return encode_outcomes(
        backend.evaluate_offsets_batch(_PAIR_PARAMS, offsets)
    )


def _init_spot_worker(config: dict) -> None:
    global _SPOT_CONFIG
    _SPOT_CONFIG = config


def _spot_check_replay(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    offset: int,
    horizon: int,
    model: ReceptionModel,
    turnaround: int,
) -> tuple[DiscoveryOutcome, DiscoveryOutcome]:
    """One spot check: exact analytic outcome plus a full DES replay.

    The analytic side deliberately uses the *uncached*
    :func:`repro.simulation.analytic.mutual_discovery_times`, keeping
    the spot check an independent cross-validation of both the DES and
    the pattern-cache layers the sweep itself ran through.  The single
    shared body is what makes the pooled and in-process spot-check
    paths identical by construction.
    """
    from ..simulation.runner import simulate_pair

    analytic = mutual_discovery_times(
        protocol_e, protocol_f, offset, horizon, model, turnaround
    )
    des = simulate_pair(
        protocol_e, protocol_f, offset, horizon, model, turnaround
    )
    return analytic, des


def _spot_check_one(offset: int) -> tuple[DiscoveryOutcome, DiscoveryOutcome]:
    """Worker entry point: replay one offset from the initializer config."""
    config = _SPOT_CONFIG
    assert config is not None, "worker not initialized"
    return _spot_check_replay(
        config["protocol_e"],
        config["protocol_f"],
        offset,
        config["horizon"],
        config["model"],
        config["turnaround"],
    )


def _init_network_worker(config: dict) -> None:
    global _NETWORK_CONFIG
    _NETWORK_CONFIG = config


def _network_one(item: tuple[int, object]):
    """Run one (global_index, scenario) network simulation.

    The global index rides along only to derive the scenario's
    schedule-invariant seed; result placement uses the index map kept by
    the submitting side.
    """
    config = _NETWORK_CONFIG
    assert config is not None, "worker not initialized"
    return _network_one_cfg(config, item)


def _network_chunk(items: list[tuple[int, object]]) -> list:
    """Run one chunk of (global_index, scenario) network simulations."""
    return [_network_one(item) for item in items]


def _network_one_cfg(config: dict, item: tuple[int, object]):
    """Initializer-free variant of :func:`_network_one` for persistent
    pools, whose workers outlive any single grid's configuration."""
    from ..simulation.runner import _run_scenario

    global_index, scenario = item
    return _run_scenario(
        scenario,
        seed=derive_seed(config["base_seed"], global_index),
        reception_model=config["reception_model"],
        turnaround=config["turnaround"],
        advertising_jitter=config["advertising_jitter"],
    )


# Timed variants: identical computation wrapped in one perf_counter
# pair, so per-scenario wall-clock rides back next to the result for
# cost-model auto-calibration (``map_scenarios(collect_timings=True)``)
# without perturbing results -- the simulation is seed-deterministic
# and never reads the clock.


def _network_one_cfg_timed(config: dict, item: tuple[int, object]):
    import time

    started = time.perf_counter()
    result = _network_one_cfg(config, item)
    return result, time.perf_counter() - started


def _network_one_timed(item: tuple[int, object]):
    import time

    started = time.perf_counter()
    result = _network_one(item)
    return result, time.perf_counter() - started


def _network_chunk_timed(items: list[tuple[int, object]]) -> list:
    return [_network_one_timed(item) for item in items]


def _steal_merge(scenarios: list, submit) -> list:
    """The work-stealing discipline, defined once for both pool kinds.

    Submit every scenario index longest-estimated-first through
    ``submit(index) -> Future`` (idle workers then steal from the
    pool's shared queue) and merge results back at their grid index --
    the index-stable merge that keeps scheduling invisible to callers.
    """
    order = plan_longest_first(scenarios)
    results: list = [None] * len(scenarios)
    futures = {index: submit(index) for index in order}
    for index, future in futures.items():
        results[index] = future.result()
    return results


def _estimated_spot_events(protocols, horizon, n_offsets: int) -> float:
    """Estimated simulated events for a DES spot-check batch.

    Unit weights on purpose: the ``_SPOT_POOL_MIN_EVENTS`` floor is an
    absolute event-count threshold, and calibrated cost weights
    (:func:`repro.parallel.use_cost_weights`) are seconds-per-event
    scales that must only affect scheduling *order*, never whether a
    batch shards.
    """
    return n_offsets * default_simulation_cost(
        protocols, horizon, weights=(1.0, 1.0)
    )


def _chunk(items: list, n_chunks: int) -> list[list]:
    """Contiguous, order-preserving partition into at most ``n_chunks``
    (the one chunking rule, shared with the persistent pool)."""
    from ..backends.base import chunk_evenly

    return chunk_evenly(items, n_chunks)


class ParallelSweep:
    """Shard independent evaluations across worker processes.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` uses the CPU count, ``<= 1`` runs the
        plain serial path in-process.
    chunks_per_job:
        Chunks submitted per worker for offset sweeps (smaller chunks
        balance load, larger ones amortize IPC); the default of 4 keeps
        every worker busy without measurable pickling overhead.
    mp_context:
        ``multiprocessing`` start-method name; defaults to ``fork``
        where available (Linux) and ``spawn`` elsewhere.  Results are
        identical either way -- workers hold no inherited mutable state.
    shared_memory:
        Ship precomputed listening patterns to sweep workers as one
        int64 ``multiprocessing.shared_memory`` segment (workers map
        instead of copy).  ``False`` keeps PR-1 behaviour where each
        worker resolves patterns through its own registry.  Results are
        bit-identical either way.
    schedule:
        Grid scheduling discipline for :meth:`map_scenarios`:
        ``"steal"`` (default) submits scenarios individually in
        longest-estimated-first order over the pool's shared queue;
        ``"chunk"`` keeps PR-1 uniform contiguous chunks.  Results are
        bit-identical either way -- seeds derive from grid indices and
        merging is index-stable.
    backend:
        Sweep-kernel selection (:mod:`repro.backends`): a registered
        name (``"python"``, ``"numpy"``, ``"pooled"``), ``"auto"``
        (default: NumPy kernel when importable, python reference
        otherwise), or a :class:`repro.backends.SweepBackend` instance.
        ``"pooled"`` replaces the per-sweep worker pool with the shared
        persistent pool for this ``(jobs, mp_context)`` shape --
        ``shared_memory`` then has no effect, because persistent
        workers keep warm pattern registries across sweeps instead.
        Results are bit-identical for every selection.
    """

    def __init__(
        self,
        jobs: int | None = None,
        chunks_per_job: int = 4,
        mp_context: str | None = None,
        shared_memory: bool = True,
        schedule: str = "steal",
        backend="auto",
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 0:
            raise ValueError(f"jobs must be non-negative, got {jobs}")
        self.jobs = jobs
        if chunks_per_job < 1:
            raise ValueError("chunks_per_job must be positive")
        self.chunks_per_job = chunks_per_job
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.mp_context = mp_context
        self.shared_memory = shared_memory
        if schedule not in ("steal", "chunk"):
            raise ValueError(
                f"schedule must be 'steal' or 'chunk', got {schedule!r}"
            )
        self.schedule = schedule
        self.backend = backend

    # ------------------------------------------------------------------
    @classmethod
    def from_profile(cls, profile) -> "ParallelSweep":
        """Construct the executor one :class:`repro.api.RuntimeProfile`
        describes.

        The one mapping between the declarative runtime configuration
        and this engine's constructor knobs -- :class:`repro.api.Session`
        builds its engine here, so profile fields and executor
        parameters cannot drift apart silently.
        """
        return cls(
            jobs=profile.jobs,
            chunks_per_job=profile.chunks_per_job,
            mp_context=profile.mp_context,
            shared_memory=profile.shared_memory,
            schedule=profile.schedule,
            backend=profile.backend,
        )

    # ------------------------------------------------------------------
    def _resolve_backend(self):
        """The kernel instance this sweep runs (pooled pools are shared
        per shape, so repeated sweeps reuse warm workers)."""
        from ..backends import resolve_backend

        return resolve_backend(
            self.backend, jobs=self.jobs, mp_context=self.mp_context
        )

    # ------------------------------------------------------------------
    def sweep_offsets(
        self,
        protocol_e: NDProtocol,
        protocol_f: NDProtocol,
        offsets: list[int],
        horizon: int,
        model: ReceptionModel = ReceptionModel.POINT,
        turnaround: int = 0,
    ) -> SweepReport:
        """Parallel :func:`repro.simulation.analytic.sweep_offsets`,
        bit-identical to the serial call."""
        return summarize_outcomes(
            self.evaluate_offsets(
                protocol_e, protocol_f, offsets, horizon, model, turnaround
            )
        )

    # ------------------------------------------------------------------
    def evaluate_offsets(
        self,
        protocol_e: NDProtocol,
        protocol_f: NDProtocol,
        offsets: list[int],
        horizon: int,
        model: ReceptionModel = ReceptionModel.POINT,
        turnaround: int = 0,
    ) -> list[DiscoveryOutcome]:
        """Parallel :func:`repro.simulation.analytic.evaluate_offsets`:
        per-offset outcomes in input order, merged from chunk results in
        chunk-index order."""
        from ..backends import SweepParams
        from ..backends.pooled import PooledBackend

        offsets = list(offsets)
        params = SweepParams(protocol_e, protocol_f, horizon, model, turnaround)
        resolved = self._resolve_backend()
        if isinstance(resolved, PooledBackend):
            # The persistent pool is its own sharding executor; it
            # lazily boots workers on first sharded batch and keeps
            # their pattern registries warm across sweeps.  The
            # chunks_per_job knob rides along per call, since the
            # pooled instance itself is shared across sweeps.
            return resolved.evaluate_offsets_batch(
                params, offsets, chunks_per_job=self.chunks_per_job
            )
        if self.jobs <= 1 or len(offsets) < 2:
            # In-process path still goes through the selected kernel:
            # same results, and callers get the pattern (and, under
            # auto-detection, the vectorization) speedup without any
            # pool overhead.
            return resolved.evaluate_offsets_batch(params, offsets)
        from ..backends.base import is_registered

        if not is_registered(resolved.name):
            # A custom unregistered kernel instance cannot be resolved
            # by name inside workers; let it run (and shard) itself.
            return resolved.evaluate_offsets_batch(params, offsets)
        chunks = _chunk(offsets, self.jobs * self.chunks_per_job)
        ctx = multiprocessing.get_context(self.mp_context)
        with SharedPatternStore() as store:
            handle = None
            if self.shared_memory:
                # Build (or registry-hit) the patterns once in the
                # parent and publish them; workers map the segment.
                caches = {
                    protocol_fingerprint(receiver, turnaround):
                        get_listening_cache(receiver, turnaround)
                    for receiver in (protocol_e, protocol_f)
                }
                handle = store.publish(caches)
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(chunks)),
                mp_context=ctx,
                initializer=_init_pair_worker,
                initargs=(
                    protocol_e, protocol_f, horizon, model, turnaround,
                    handle, resolved.name,
                ),
            ) as pool:
                from ..backends.base import decode_outcomes

                # pool.map yields chunk results in submission order, so
                # flattening preserves the input offset order exactly.
                return decode_outcomes(
                    row
                    for chunk in pool.map(_sweep_chunk, chunks)
                    for row in chunk
                )

    # ------------------------------------------------------------------
    def spot_check_pairs(
        self,
        protocol_e: NDProtocol,
        protocol_f: NDProtocol,
        offsets: list[int],
        horizon: int,
        model: ReceptionModel = ReceptionModel.POINT,
        turnaround: int = 0,
    ) -> list[tuple[DiscoveryOutcome, DiscoveryOutcome]]:
        """Per-offset ``(analytic, DES)`` outcome pairs, in input order.

        The DES replays dominate ``verified_worst_case`` once sweeps are
        fast; each offset is an independent simulation, so they shard
        one-per-submission like the work-stealing grid path.  Both the
        serial and the pooled path run identical computations per
        offset, so the result list is independent of ``jobs``.

        Batches whose estimated simulated-event count falls below
        ``_SPOT_POOL_MIN_EVENTS`` run in-process regardless of ``jobs``:
        short replays (small horizons, sparse schedules, few offsets)
        finish serially faster than a pool can boot.  Long-horizon
        validations -- where the replays actually dominate -- clear the
        floor and shard.  With ``backend="pooled"`` the floor does not
        apply: the persistent pool's startup is already paid (or about
        to be amortized over the session), so every multi-offset batch
        shards over its warm workers.
        """
        from ..backends.pooled import PooledBackend

        offsets = list(offsets)
        resolved = self._resolve_backend()
        if (
            isinstance(resolved, PooledBackend)
            and resolved.jobs > 1
            and len(offsets) >= 2
        ):
            futures = [
                resolved.submit(
                    _spot_check_replay,
                    protocol_e, protocol_f, offset, horizon, model, turnaround,
                )
                for offset in offsets
            ]
            return [future.result() for future in futures]
        estimated_events = _estimated_spot_events(
            [protocol_e, protocol_f], horizon, len(offsets)
        )
        if (
            self.jobs <= 1
            or len(offsets) < 2
            or estimated_events < _SPOT_POOL_MIN_EVENTS
        ):
            return [
                _spot_check_replay(
                    protocol_e, protocol_f, offset, horizon, model, turnaround
                )
                for offset in offsets
            ]
        config = {
            "protocol_e": protocol_e,
            "protocol_f": protocol_f,
            "horizon": horizon,
            "model": model,
            "turnaround": turnaround,
        }
        ctx = multiprocessing.get_context(self.mp_context)
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(offsets)),
            mp_context=ctx,
            initializer=_init_spot_worker,
            initargs=(config,),
        ) as pool:
            return list(pool.map(_spot_check_one, offsets))

    # ------------------------------------------------------------------
    def map_scenarios(
        self,
        scenarios: list,
        base_seed: int = 0,
        reception_model: ReceptionModel = ReceptionModel.POINT,
        turnaround: int = 0,
        advertising_jitter: int = 0,
        collect_timings: bool = False,
    ) -> list:
        """Run one network simulation per scenario, in input order.

        Each scenario's RNG seed derives from its global index, so the
        returned list is identical whatever ``jobs``, ``schedule`` or
        ``backend`` is (including the in-process serial path used for
        ``jobs <= 1``).  With ``backend="pooled"`` the grid reuses the
        persistent worker pool (always in work-stealing submission
        order -- there is no per-grid initializer to chunk around), so
        successive small grids stop paying pool startup.

        ``collect_timings=True`` returns ``(results, seconds)`` instead:
        per-scenario wall-clock measured *inside* the worker that ran
        each scenario, grid-ordered like the results.  This feeds
        :meth:`repro.api.Session.grid`'s cost-weight auto-calibration;
        the results list is bit-identical either way (the timing wrapper
        only reads the clock around an unchanged computation).
        """
        from ..backends.pooled import PooledBackend
        from ..simulation.runner import _run_scenario

        scenarios = list(scenarios)
        if self.jobs <= 1 or len(scenarios) < 2:
            import time

            timed: list[tuple] = []
            for i, scenario in enumerate(scenarios):
                started = time.perf_counter()
                result = _run_scenario(
                    scenario,
                    seed=derive_seed(base_seed, i),
                    reception_model=reception_model,
                    turnaround=turnaround,
                    advertising_jitter=advertising_jitter,
                )
                timed.append((result, time.perf_counter() - started))
            return self._split_timings(timed, collect_timings)
        config = {
            "base_seed": base_seed,
            "reception_model": reception_model,
            "turnaround": turnaround,
            "advertising_jitter": advertising_jitter,
        }
        resolved = self._resolve_backend()
        if isinstance(resolved, PooledBackend) and resolved.jobs > 1:
            worker = _network_one_cfg_timed if collect_timings else _network_one_cfg
            merged = _steal_merge(
                scenarios,
                lambda index: resolved.submit(
                    worker, config, (index, scenarios[index])
                ),
            )
            return self._split_timings(merged, collect_timings, wrapped=collect_timings)
        ctx = multiprocessing.get_context(self.mp_context)
        if self.schedule == "chunk":
            chunks = _chunk(
                list(enumerate(scenarios)), self.jobs * self.chunks_per_job
            )
            chunk_worker = (
                _network_chunk_timed if collect_timings else _network_chunk
            )
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(chunks)),
                mp_context=ctx,
                initializer=_init_network_worker,
                initargs=(config,),
            ) as pool:
                merged = [
                    result
                    for chunk in pool.map(chunk_worker, chunks)
                    for result in chunk
                ]
            return self._split_timings(merged, collect_timings, wrapped=collect_timings)
        # Work stealing: submit longest-estimated-first, one scenario
        # per task, and let idle workers pull from the shared queue;
        # results land back at their grid index.
        one_worker = _network_one_timed if collect_timings else _network_one
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(scenarios)),
            mp_context=ctx,
            initializer=_init_network_worker,
            initargs=(config,),
        ) as pool:
            merged = _steal_merge(
                scenarios,
                lambda index: pool.submit(
                    one_worker, (index, scenarios[index])
                ),
            )
        return self._split_timings(merged, collect_timings, wrapped=collect_timings)

    @staticmethod
    def _split_timings(items: list, collect_timings: bool, wrapped: bool = True):
        """Unzip ``(result, seconds)`` pairs when timings were requested;
        otherwise return the bare result list unchanged."""
        if not collect_timings:
            return [item[0] for item in items] if wrapped else items
        results = [result for result, _ in items]
        seconds = [seconds for _, seconds in items]
        return results, seconds
