"""The sweep service: an async serving daemon with single-flight dedup
over the content-addressed result store.

Promotes :class:`~repro.api.Session` from a library facade to a
serving layer (ROADMAP direction 1): a long-lived
:class:`SweepService` accepts ``(verb, RunSpec)`` jobs, answers store
hits in O(lookup), and coalesces concurrent identical misses onto one
computation.  :class:`SweepServer` exposes it over TCP;
:class:`ServiceClient` / :class:`RemoteClient` are the in-process and
wire clients; ``repro-nd serve`` / ``repro-nd submit`` are the CLI.

Quickstart::

    import asyncio
    from repro.api import RuntimeProfile
    from repro.service import ServiceClient, SweepService

    async def main():
        async with SweepService(
            RuntimeProfile(backend="pooled", jobs=4),
            store="results/store", workers=2,
        ) as service:
            client = ServiceClient(service)
            result = await client.submit("sweep", {
                "pair": {"kind": "symmetric", "eta": 0.01},
                "samples": 256,
            })
            print(result.payload["worst_one_way"])

    asyncio.run(main())

Budgeted queries keep tail latency flat under load: a ``worst_case``
spec with ``budget_ms`` set answers with the best bound the adaptive
fidelity ladder can prove in that budget (``fidelity: "auto"`` falls
back to exact when the exact tier is affordable), and the service
derives each attempt's timeout from the budget so a budgeted job can
never ride the global ``job_timeout``::

    result = await client.submit("worst_case", {
        "pair": {"kind": "zoo", "protocol": "Disco",
                 "params": {"prime1": 3, "prime2": 5}},
        "fidelity": "auto",
        "budget_ms": 100.0,
    })
    provenance = result.payload["provenance"]
    print(provenance["fidelity"], provenance["bound_interval"])
    # e.g. "exact" [2184, 2184] -- or a widening interval under
    # tighter budgets, with the priced tier decisions in
    # provenance["tiers"].

Wire-protocol contract
======================

**Framing.**  JSON lines over TCP: one frame is one JSON *object*
encoded compactly and terminated by a single ``\\n``.  Requests and
responses use the same framing; frames above
:data:`~repro.service.protocol.MAX_FRAME_BYTES` (8 MiB) are rejected.
A connection handles one request at a time, strictly in order.

**Requests.**  Every request names an ``op``:

========  ============================================  =================
op        request fields                                response
========  ============================================  =================
submit    ``verb`` (sweep / worst_case / grid /         with ``wait``
          simulate), ``spec`` (RunSpec mapping),        (default true): a
          optional ``priority`` (int, higher first),    result envelope;
          optional ``wait``                             else the admitted
                                                        job snapshot
status    ``id`` (job id)                               ``{"ok", "job"}``
result    ``id``                                        result envelope
                                                        (blocks until
                                                        terminal)
stream    ``id``                                        one ``{"ok",
                                                        "event"}`` frame
                                                        per job event
                                                        (history first,
                                                        then live), then
                                                        ``{"ok", "done",
                                                        "job"}``
stats     --                                            ``{"ok",
                                                        "stats"}``:
                                                        service counters
                                                        + store stats
========  ============================================  =================

A **result envelope** is ``{"ok": true, "job": <snapshot>, "result":
<RunResult.to_dict()>, "store_meta": {"hit", "fingerprint",
"lookup_seconds"}}``.

**Error envelopes.**  Every failure is ``{"ok": false, "error":
{"type": <exception class name>, "message": <text>}}`` -- e.g.
``SpecError`` (invalid spec / unknown verb), ``ServiceOverload`` (the
bounded queue is full: back off and retry), ``JobFailed`` (the job
exhausted its retries; the envelope also carries ``job``),
``ServiceError`` (unknown job id), ``ProtocolError`` (malformed
frame; the server answers once, then closes the connection, since the
line discipline is lost).  Errors are per-request: the connection --
and the service -- keep serving.

**At-most-once execution per fingerprint.**  Admission computes the
store fingerprint of ``(verb, spec)`` (the
:mod:`repro.store` contract: ``RuntimeProfile`` never enters the
digest).  A stored fingerprint is answered from the store without
executing; an in-flight fingerprint coalesces onto the existing job
(one compute, results fan out to every waiter as private clones); only
a cold fingerprint enqueues a new computation, whose result is written
back exactly once.  Across N concurrent submissions of one cold spec
the compute therefore runs exactly once -- the single-flight property
the load bench asserts as a hard gate.  Specs holding live objects
have no fingerprint and always compute (and cannot cross the wire at
all).  Crash-retried jobs re-execute their *incomplete* work only:
grid jobs resume from their per-scenario checkpoint, and a timed-out
attempt's late store write is harmless (last-writer-wins under a
content-addressed key, both writers carrying the same numbers).
"""

from .client import RemoteClient, RemoteError, ServiceClient
from .jobs import (
    Job,
    JobFailed,
    ServiceClosed,
    ServiceError,
    ServiceOverload,
)
from .protocol import MAX_FRAME_BYTES, ProtocolError
from .server import SweepServer
from .service import SweepService

__all__ = [
    "Job",
    "JobFailed",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "RemoteClient",
    "RemoteError",
    "ServiceClient",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverload",
    "SweepServer",
    "SweepService",
]
