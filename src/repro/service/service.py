"""The :class:`SweepService`: single-flight serving over the store.

The serving layer the ROADMAP's "millions of users" direction calls
for: a long-lived ``asyncio`` front-end over the store-backed
:class:`~repro.api.Session`.  Admission computes the content-addressed
fingerprint, answers store hits immediately, and **single-flights**
misses -- concurrent submissions of one fingerprint coalesce onto one
in-flight :class:`~repro.service.jobs.Job` whose result fans out to
every waiter and is written back exactly once.

Architecture (SRMCA-style decoupling: accept / dispatch / compute are
separate parties, so one failing component degrades instead of
killing the service):

* **Admission** (:meth:`SweepService.submit`) runs on the event loop:
  fingerprint, store lookup, single-flight dedup, bounded-queue
  back-pressure (:class:`ServiceOverload` when full -- retries of
  already-admitted jobs bypass the bound).
* **Dispatch**: a priority queue (higher ``priority`` first, FIFO
  within a level) feeds ``workers`` asyncio worker tasks.
* **Compute**: each worker runs jobs through a thread-local sibling
  :class:`~repro.api.Session` (one per executor thread --
  ``Session.worker()`` semantics: shared store instance, shared
  refcounted pooled backend) via ``loop.run_in_executor``, under an
  optional per-job timeout.
* **Recovery**: crash-class failures (a SIGKILLed pool child surfacing
  as ``BrokenProcessPool``, broken pipes, timeouts) re-queue the job
  with exponential backoff up to ``max_retries``; the broken pool is
  force-closed so the next attempt boots a fresh one lazily.  Compute
  errors (``ValueError``, :class:`~repro.api.SpecError`...) fail
  permanently -- retrying a deterministic error burns workers for
  nothing.  A worker *task* that dies mid-job has its job re-queued by
  the supervisor and a replacement worker spawned.
* **Grid checkpointing**: grid jobs run per-scenario (each scenario
  seeded by :func:`repro.parallel.derive_seed` from its global index,
  exactly like :meth:`Session.grid <repro.api.Session.grid>`, so the
  assembled payload is bit-identical) and record every finished
  scenario in ``job.checkpoint`` -- a re-queued grid resumes from the
  last completed scenario instead of restarting.

A cancelled ``run_in_executor`` thread keeps running to completion
(stdlib executor semantics); a timed-out attempt's late store write is
harmless -- last-writer-wins under a content-addressed key.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import PurePath
from typing import Mapping

from ..api.result import network_result_payload, RunResult
from ..api.session import Session
from ..api.spec import build_grid, RunSpec, RuntimeProfile, SpecError
from ..backends.pooled import PooledBackend
from ..campaign.campaign import VERBS
from ..parallel.executor import _network_one_cfg
from .jobs import (
    DONE,
    FAILED,
    Job,
    JobFailed,
    QUEUED,
    RUNNING,
    ServiceClosed,
    ServiceError,
    ServiceOverload,
)

__all__ = ["SweepService"]

#: Failure classes worth retrying: the *runtime* broke (a killed pool
#: child, a torn pipe, a timeout), not the computation.  ``OSError``
#: subsumes ``ConnectionError``/``BrokenPipeError``; ``TimeoutError``
#: is what ``asyncio.wait_for`` raises on the per-job deadline.
RETRYABLE = (BrokenProcessPool, EOFError, OSError, TimeoutError)

#: How many finished jobs stay addressable for status/result lookups.
JOB_HISTORY = 1024

#: Budget-derived attempt deadline: wall-clock slack over the spec's
#: ``budget_ms`` (planner prices are estimates, not guarantees) plus a
#: floor covering session/pool warm-up.  See ``_attempt_timeout``.
BUDGET_TIMEOUT_SLACK = 4.0
BUDGET_TIMEOUT_FLOOR = 1.0


class SweepService:
    """Async serving daemon over a store-backed session (module docs).

    Parameters
    ----------
    profile:
        The :class:`~repro.api.RuntimeProfile` every worker session
        runs under (mapping / path forms accepted, like ``Session``).
    store:
        The shared :class:`~repro.store.ResultStore` (or directory
        path).  ``None`` disables caching -- every submission computes,
        and single-flight dedup is off (no fingerprints).
    workers:
        Concurrent compute slots: one thread (with its own sibling
        session) per worker, fed by that many asyncio worker tasks.
    queue_limit:
        Bounded-admission depth; a full queue raises
        :class:`ServiceOverload`.  Retries/re-queues bypass the bound
        (an admitted job must never be lost to back-pressure).
    job_timeout:
        Per-attempt wall-clock deadline in seconds (``None`` = none).
    max_retries:
        Crash-class attempts beyond the first (so a job runs at most
        ``max_retries + 1`` times).
    retry_backoff:
        Base of the exponential backoff between attempts (seconds).
    """

    def __init__(
        self,
        profile: RuntimeProfile | Mapping | str | None = None,
        store=None,
        *,
        workers: int = 2,
        queue_limit: int = 64,
        job_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
    ) -> None:
        if profile is None:
            profile = RuntimeProfile.default()
        elif isinstance(profile, Mapping):
            profile = RuntimeProfile.from_dict(profile)
        elif isinstance(profile, (str, PurePath)):
            profile = RuntimeProfile.load(profile)
        self.profile = profile
        self.store = self._resolve_store(store)
        self.workers = int(workers)
        self.queue_limit = int(queue_limit)
        self.job_timeout = job_timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)

        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._seq = itertools.count()
        self._job_ids = itertools.count(1)
        #: fingerprint -> the one in-flight Job (the single-flight map).
        self._inflight: dict[str, Job] = {}
        #: id -> Job for every job still addressable (bounded history).
        self._jobs: dict[str, Job] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._worker_tasks: dict[int, asyncio.Task] = {}
        self._supervisor: asyncio.Task | None = None
        self._aux_tasks: set[asyncio.Task] = set()
        self._current: dict[int, Job] = {}
        self._worker_seq = itertools.count(1)
        self._closing = False
        self._started = False

        self._local = threading.local()
        self._sessions: list[Session] = []
        self._sessions_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        #: Job ids in the order compute actually started (test hook for
        #: priority ordering; append is atomic under the GIL).
        self.execution_order: list[str] = []
        self._stats = {
            "submitted": 0,
            "hits": 0,
            "coalesced": 0,
            "computed": 0,
            "completed": 0,
            "failed": 0,
            "retries": 0,
            "timeouts": 0,
            "requeued": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SweepService":
        """Boot the worker group and supervisor (idempotent)."""
        if self._started:
            return self
        self._started = True
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-svc"
        )
        for _ in range(self.workers):
            self._spawn_worker()
        self._supervisor = asyncio.create_task(
            self._supervise(), name="repro-svc-supervisor"
        )
        return self

    async def stop(self) -> None:
        """Drain nothing, stop everything: cancel workers, fail still
        pending jobs with :class:`ServiceClosed`, close every thread
        session (idempotent)."""
        if self._closing:
            return
        self._closing = True
        if self._supervisor is not None:
            self._supervisor.cancel()
        for task in list(self._worker_tasks.values()):
            task.cancel()
        for task in list(self._aux_tasks):
            task.cancel()
        pending = [
            task for task in (
                *self._worker_tasks.values(),
                *( (self._supervisor,) if self._supervisor else () ),
                *self._aux_tasks,
            )
        ]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._worker_tasks.clear()
        self._aux_tasks.clear()
        for job in list(self._inflight.values()):
            if not job.future.done():
                job.state = FAILED
                job.error = "service stopped"
                job.future.set_exception(
                    ServiceClosed(f"service stopped before {job.id} finished")
                )
                job.future.exception()  # mark retrieved
                job.emit(FAILED, {"error": job.error})
        self._inflight.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        with self._sessions_lock:
            sessions, self._sessions = self._sessions, []
        for session in sessions:
            try:
                session.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass

    async def __aenter__(self) -> "SweepService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Admission (the single-flight front door)
    # ------------------------------------------------------------------
    def submit(self, verb: str, spec, *, priority: int = 0) -> Job:
        """Admit one ``(verb, spec)``; returns the tracking :class:`Job`.

        * Store **hit**: an already-terminal job carrying the stored
          result (``source="hit"``) -- no queueing, no compute.
        * Fingerprint already **in flight**: the existing job (the
          caller becomes one more waiter; ``coalesced`` counts them).
        * **Miss**: a new queued job, registered in the single-flight
          map so later identical submissions coalesce onto it.

        Raises :class:`ServiceOverload` when the bounded queue is full
        and :class:`~repro.api.SpecError` for unknown verbs / invalid
        specs.  Must be called on the event-loop thread (every service
        front end -- in-process client, TCP server, CLI -- does).
        """
        if self._closing:
            raise ServiceClosed("service is stopped")
        if verb not in VERBS:
            raise SpecError(
                f"unknown service verb {verb!r}; one of {list(VERBS)}"
            )
        if not isinstance(spec, RunSpec):
            spec = RunSpec.from_dict(spec)
        self._stats["submitted"] += 1
        fingerprint = None
        if self.store is not None:
            try:
                fingerprint = self.store.fingerprint(verb, spec)
            except SpecError:
                fingerprint = None  # live objects: no identity, no dedup
        if fingerprint is not None:
            inflight = self._inflight.get(fingerprint)
            if inflight is not None:
                inflight.coalesced += 1
                self._stats["coalesced"] += 1
                return inflight
            t0 = time.perf_counter()
            cached = self.store.get(fingerprint)
            if cached is not None:
                cached.store_meta = {
                    "hit": True,
                    "fingerprint": fingerprint,
                    "lookup_seconds": time.perf_counter() - t0,
                }
                self._stats["hits"] += 1
                return self._hit_job(verb, spec, fingerprint, cached)
        if self._queue.qsize() >= self.queue_limit:
            raise ServiceOverload(
                f"job queue is full ({self.queue_limit} queued); retry later"
            )
        job = Job(
            f"job-{next(self._job_ids):06d}", verb, spec, fingerprint,
            priority=priority,
        )
        self._register(job)
        if fingerprint is not None:
            self._inflight[fingerprint] = job
        job.emit("submitted", {"fingerprint": fingerprint})
        self._enqueue(job)
        return job

    def _hit_job(self, verb, spec, fingerprint, result: RunResult) -> Job:
        job = Job(f"job-{next(self._job_ids):06d}", verb, spec, fingerprint)
        job.state = DONE
        job.source = "hit"
        job.result = result
        job.finished = time.time()  # display; durations use monotonic
        job.finished_mono = time.monotonic()
        job.future.set_result(result)
        self._register(job)
        job.emit("submitted", {"fingerprint": fingerprint})
        job.emit(DONE, {"source": "hit"})
        return job

    def _register(self, job: Job) -> None:
        self._jobs[job.id] = job
        while len(self._jobs) > JOB_HISTORY:
            oldest = next(iter(self._jobs))
            if self._jobs[oldest].state not in (DONE, FAILED):
                break  # never forget a live job
            del self._jobs[oldest]

    def _enqueue(self, job: Job) -> None:
        self._queue.put_nowait((-job.priority, next(self._seq), job))

    def job(self, job_id: str) -> Job:
        """The tracked job for ``job_id``; raises ``ServiceError`` for
        unknown (or aged-out) ids."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job id {job_id!r}") from None

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Service counters plus the shared store's
        :meth:`~repro.store.ResultStore.stats_payload` (the ``stats``
        wire verb's payload)."""
        with self._counter_lock:
            counters = dict(self._stats)
        payload = {
            "service": dict(
                counters,
                queue_depth=self._queue.qsize(),
                inflight=len(self._inflight),
                workers=self.workers,
                running=len(self._current),
                started=self._started,
                closing=self._closing,
            ),
        }
        if self.store is not None:
            payload["store"] = self.store.stats_payload()
        return payload

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> int:
        wid = next(self._worker_seq)
        self._worker_tasks[wid] = asyncio.create_task(
            self._worker(wid), name=f"repro-svc-worker-{wid}"
        )
        return wid

    async def _worker(self, wid: int) -> None:
        while not self._closing:
            _, _, job = await self._queue.get()
            if job.state in (DONE, FAILED):
                continue  # superseded (e.g. double re-queue after a crash)
            # Deliberately NOT a try/finally: if this task dies mid-job
            # (cancelled, or a dispatch-layer bug), the entry must stay
            # in ``_current`` so the supervisor can re-queue the job.
            self._current[wid] = job
            await self._run_job(job)
            self._current.pop(wid, None)

    async def _supervise(self) -> None:
        """Re-queue the job of any worker task that dies unexpectedly
        and spawn a replacement -- compute must survive dispatch-layer
        failure (the SRMCA decoupling)."""
        while not self._closing:
            tasks = dict(self._worker_tasks)
            if not tasks:
                return
            done, _ = await asyncio.wait(
                tasks.values(), return_when=asyncio.FIRST_COMPLETED
            )
            if self._closing:
                return
            for wid, task in tasks.items():
                if task not in done:
                    continue
                self._worker_tasks.pop(wid, None)
                job = self._current.pop(wid, None)
                if job is not None and not job.future.done():
                    job.requeues += 1
                    with self._counter_lock:
                        self._stats["requeued"] += 1
                    job.state = QUEUED
                    job.emit("requeued", {"worker": wid})
                    self._enqueue(job)
                self._spawn_worker()

    def _attempt_timeout(self, job: Job) -> float | None:
        """Per-attempt deadline in seconds: the service-wide
        ``job_timeout``, *tightened* (never loosened) by the spec's own
        compute budget -- a budgeted submission must not hold a worker
        past its deadline tier even when the service allows longer jobs.

        The planner's budget prices estimated compute, not wall-clock
        guarantees, so the deadline grants a fixed slack factor plus a
        floor covering session/pool warm-up before declaring a timeout.
        """
        budget_ms = getattr(job.spec, "budget_ms", None)
        if budget_ms is None:
            return self.job_timeout
        budgeted = (
            float(budget_ms) / 1000.0 * BUDGET_TIMEOUT_SLACK
            + BUDGET_TIMEOUT_FLOOR
        )
        if self.job_timeout is None:
            return budgeted
        return min(self.job_timeout, budgeted)

    async def _run_job(self, job: Job) -> None:
        job.attempts += 1
        job.state = RUNNING
        job.started = time.time()  # display; durations use monotonic
        job.started_mono = time.monotonic()
        job.emit(RUNNING, {"attempt": job.attempts})
        loop = asyncio.get_running_loop()
        try:
            future = loop.run_in_executor(self._pool, self._compute, job)
            result = await asyncio.wait_for(
                future, timeout=self._attempt_timeout(job)
            )
        except asyncio.CancelledError:
            raise  # worker shutdown / supervisor path, not a job failure
        except Exception as exc:
            self._dispose_failure(job, exc)
        else:
            self._finish(job, result)

    def _dispose_failure(self, job: Job, exc: Exception) -> None:
        timeout = isinstance(exc, (TimeoutError, asyncio.TimeoutError))
        if timeout:
            with self._counter_lock:
                self._stats["timeouts"] += 1
        retryable = isinstance(exc, RETRYABLE) and not isinstance(
            exc, (SpecError, ValueError)
        )
        if retryable and job.attempts <= self.max_retries:
            with self._counter_lock:
                self._stats["retries"] += 1
            delay = self.retry_backoff * (2 ** (job.attempts - 1))
            job.state = QUEUED
            job.emit(
                "retry",
                {
                    "attempt": job.attempts,
                    "error": f"{type(exc).__name__}: {exc}",
                    "backoff_seconds": delay,
                    "checkpointed": len(job.checkpoint),
                },
            )
            self._track(asyncio.create_task(self._requeue_later(job, delay)))
            return
        job.state = FAILED
        job.finished = time.time()  # display; durations use monotonic
        job.finished_mono = time.monotonic()
        job.error = f"{type(exc).__name__}: {exc}"
        if job.fingerprint is not None:
            self._inflight.pop(job.fingerprint, None)
        with self._counter_lock:
            self._stats["failed"] += 1
        if not job.future.done():
            job.future.set_exception(
                JobFailed(job, f"{job.id} failed: {job.error}")
            )
            job.future.exception()  # mark retrieved for lone submitters
        job.emit(FAILED, {"error": job.error, "attempts": job.attempts})

    async def _requeue_later(self, job: Job, delay: float) -> None:
        if delay > 0:
            await asyncio.sleep(delay)
        if not self._closing and not job.future.done():
            self._enqueue(job)

    def _track(self, task: asyncio.Task) -> None:
        self._aux_tasks.add(task)
        task.add_done_callback(self._aux_tasks.discard)

    def _finish(self, job: Job, result: RunResult) -> None:
        job.state = DONE
        job.finished = time.time()  # display; durations use monotonic
        job.finished_mono = time.monotonic()
        if job.source is None:
            job.source = (
                "hit"
                if result.store_meta and result.store_meta.get("hit")
                else "computed"
            )
        job.result = result
        job.checkpoint.clear()
        if job.fingerprint is not None:
            self._inflight.pop(job.fingerprint, None)
        with self._counter_lock:
            self._stats["completed"] += 1
        if not job.future.done():
            job.future.set_result(result)
        job.emit(
            DONE,
            {
                "source": job.source,
                "attempts": job.attempts,
                "coalesced": job.coalesced,
            },
        )

    # ------------------------------------------------------------------
    # Compute (executor threads)
    # ------------------------------------------------------------------
    def _resolve_store(self, store):
        if store is None:
            store = self.profile.store
        if store is None:
            return None
        from ..store import ResultStore

        if isinstance(store, ResultStore):
            return store
        if isinstance(store, (str, PurePath)):
            return ResultStore(store)
        raise TypeError(
            f"store must be a ResultStore, a directory path or None, "
            f"got {store!r}"
        )

    def _thread_session(self) -> Session:
        """This executor thread's sibling session (``Session.worker()``
        semantics: shared store instance, shared pooled backend)."""
        session = getattr(self._local, "session", None)
        if session is None or session.closed:
            session = Session(self.profile, store=self.store)
            with self._sessions_lock:
                self._sessions.append(session)
            self._local.session = session
        return session

    def _compute(self, job: Job) -> RunResult:
        """One compute attempt, on an executor thread.  Crash-class
        errors force-close the broken pool (it reboots lazily on the
        next attempt) before re-raising into the retry path."""
        session = self._thread_session()
        with self._counter_lock:
            self._stats["computed"] += 1
        self.execution_order.append(job.id)
        try:
            if job.verb == "grid":
                return self._compute_grid(job, session)
            return getattr(session, job.verb)(job.spec)
        except RETRYABLE:
            backend = session._backend
            if isinstance(backend, PooledBackend):
                # A SIGKILLed child leaves the whole pool broken; close
                # it so the retry (any thread) lazily boots a fresh one.
                backend.close(wait=False)
            raise

    def _compute_grid(self, job: Job, session: Session) -> RunResult:
        """Checkpointed grid compute, payload-identical to
        :meth:`Session.grid <repro.api.Session.grid>`.

        Scenarios run one at a time -- through the session's pooled
        backend when it has one (so a pool-child crash is survivable
        mid-grid), in-thread otherwise -- and every finished scenario
        lands in ``job.checkpoint`` keyed by its **global index**.
        Seeds derive from that same global index
        (:func:`repro.parallel.derive_seed`, the `map_scenarios`
        contract), so a resumed grid is bit-identical to an
        uninterrupted one.
        """
        t0 = time.perf_counter()
        store, fingerprint = session.store, job.fingerprint
        lookup = 0.0
        if store is not None and fingerprint is not None:
            t = time.perf_counter()
            cached = store.get(fingerprint)
            lookup = time.perf_counter() - t
            if cached is not None:
                cached.store_meta = {
                    "hit": True,
                    "fingerprint": fingerprint,
                    "lookup_seconds": lookup,
                }
                return cached
        if job.spec.grid is None:
            raise ValueError("RunSpec.grid is required for grid")
        scenarios = build_grid(job.spec.grid)
        backend = session.backend  # resolves the engine exactly once
        t1 = time.perf_counter()
        config = {
            "base_seed": job.spec.seed,
            "reception_model": job.spec.reception_model(),
            "turnaround": job.spec.turnaround,
            "advertising_jitter": job.spec.advertising_jitter,
        }
        pooled = isinstance(backend, PooledBackend) and backend.jobs >= 2
        results = []
        for index, scenario in enumerate(scenarios):
            if index in job.checkpoint:
                results.append(job.checkpoint[index])
                continue
            if pooled:
                result = backend.submit(
                    _network_one_cfg, config, (index, scenario)
                ).result()
            else:
                result = _network_one_cfg(config, (index, scenario))
            job.checkpoint[index] = result
            results.append(result)
            self._emit_threadsafe(
                job,
                "progress",
                {
                    "scenario": scenario.name,
                    "completed": len(job.checkpoint),
                    "total": len(scenarios),
                },
            )
        t2 = time.perf_counter()
        payload = {
            "scenarios": [scenario.name for scenario in scenarios],
            "results": [network_result_payload(result) for result in results],
        }
        run = RunResult(
            verb="grid",
            spec=job.spec.describe(),
            profile=session.profile.describe(),
            backend=backend.name,
            timings={"build": t1 - t0, "run": t2 - t1, "total": t2 - t0},
            payload=payload,
            raw=results,
        )
        if store is not None and fingerprint is not None:
            store.put(fingerprint, run)
            run.store_meta = {
                "hit": False,
                "fingerprint": fingerprint,
                "lookup_seconds": lookup,
            }
        return run

    def _emit_threadsafe(self, job: Job, kind: str, data: dict) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(job.emit, kind, data)
        except RuntimeError:  # pragma: no cover - loop torn down mid-job
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepService(workers={self.workers}, "
            f"queue_limit={self.queue_limit}, "
            f"inflight={len(self._inflight)}, "
            f"{'started' if self._started else 'cold'})"
        )
