"""The service job model: one admitted ``(verb, RunSpec)`` unit of work.

A :class:`Job` is the single-flight unit the
:class:`~repro.service.SweepService` tracks from admission to terminal
state.  It carries the store fingerprint computed at admission (``None``
for specs holding live objects, which have no declarative identity),
the shared :class:`asyncio.Future` every coalesced waiter awaits, an
append-only event log that backs the ``stream`` verb, and -- for grid
jobs -- the per-scenario checkpoint that lets a re-queued grid resume
instead of restarting.

All mutation happens on the service's event-loop thread (compute
threads hand events over via ``call_soon_threadsafe``), so the job
needs no locking of its own.
"""

from __future__ import annotations

import asyncio
import copy
import time
from typing import Any

from ..api.result import rehydrate_raw, RunResult
from ..api.spec import RunSpec

__all__ = [
    "Job",
    "JobFailed",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverload",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class ServiceError(Exception):
    """Base class for every service-layer error."""


class ServiceOverload(ServiceError):
    """Admission rejected: the bounded job queue is full.

    Raised at ``submit`` time, before the job exists -- overload is a
    back-pressure signal to the caller, never a queued failure."""


class ServiceClosed(ServiceError):
    """The service stopped before this job reached a terminal state."""


class JobFailed(ServiceError):
    """A job exhausted its retries (or failed permanently).

    ``job`` is the failed :class:`Job`; ``str(exc)`` carries the final
    underlying error."""

    def __init__(self, job: "Job", message: str):
        super().__init__(message)
        self.job = job


class Job:
    """One admitted unit of work (see module docstring)."""

    __slots__ = (
        "id", "verb", "spec", "fingerprint", "priority", "state",
        "source", "attempts", "requeues", "coalesced", "error",
        "result", "future", "checkpoint", "events", "created",
        "started", "finished", "created_mono", "started_mono",
        "finished_mono", "_subscribers",
    )

    def __init__(
        self,
        job_id: str,
        verb: str,
        spec: RunSpec,
        fingerprint: str | None,
        priority: int = 0,
    ) -> None:
        self.id = job_id
        self.verb = verb
        self.spec = spec
        self.fingerprint = fingerprint
        self.priority = priority
        self.state = QUEUED
        #: How the result was produced: ``"hit"`` (admission store
        #: lookup), ``"computed"`` (this job ran the compute), or
        #: ``None`` while unresolved.  Coalesced submitters share the
        #: computing job, so they see ``"computed"`` too.
        self.source: str | None = None
        self.attempts = 0
        self.requeues = 0
        #: How many later submissions of the same fingerprint coalesced
        #: onto this in-flight job (single-flight dedup).
        self.coalesced = 0
        self.error: str | None = None
        self.result: RunResult | None = None
        self.future: asyncio.Future = _new_future()
        self.checkpoint: dict[int, Any] = {}
        self.events: list[dict] = []
        #: Wall-clock unix timestamps, for **display only** (they jump
        #: with NTP slews / clock steps).  Every duration derives from
        #: the ``*_mono`` monotonic counterparts below.
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.created_mono = time.monotonic()
        self.started_mono: float | None = None
        self.finished_mono: float | None = None
        self._subscribers: list[asyncio.Queue] = []

    # ------------------------------------------------------------------
    # Events / streaming
    # ------------------------------------------------------------------
    def emit(self, kind: str, data: dict | None = None) -> dict:
        """Append one event and fan it out to live subscribers.

        Must run on the event-loop thread (compute threads go through
        ``loop.call_soon_threadsafe``)."""
        event = {
            "seq": len(self.events),
            "job": self.id,
            "kind": kind,
            "unix": time.time(),
        }
        if data:
            event["data"] = data
        self.events.append(event)
        terminal = kind in (DONE, FAILED)
        for queue in self._subscribers:
            queue.put_nowait(event)
            if terminal:
                queue.put_nowait(None)  # end-of-stream sentinel
        if terminal:
            self._subscribers.clear()
        return event

    def subscribe(self) -> asyncio.Queue:
        """An event queue pre-loaded with the full history; a ``None``
        sentinel marks end-of-stream once the job is terminal."""
        queue: asyncio.Queue = asyncio.Queue()
        for event in self.events:
            queue.put_nowait(event)
        if self.state in (DONE, FAILED):
            queue.put_nowait(None)
        else:
            self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    async def wait(self) -> RunResult:
        """Await completion and return a **private clone** of the result
        (raw rehydrated, ``store_meta`` copied), so no two waiters ever
        share a mutable result -- the fan-out side of single-flight.

        The shared future is shielded: cancelling one waiter must never
        cancel the computation every other waiter is parked on.
        """
        result = await asyncio.shield(self.future)
        clone = result.clone()
        clone.raw = rehydrate_raw(clone.verb, clone.payload)
        clone.store_meta = copy.deepcopy(result.store_meta)
        return clone

    def queued_seconds(self) -> float | None:
        """Admission-to-compute-start latency (monotonic clock; immune
        to wall-clock steps).  ``None`` until compute starts."""
        if self.started_mono is None:
            return None
        return self.started_mono - self.created_mono

    def run_seconds(self) -> float | None:
        """Compute-start-to-terminal duration of the *last* attempt arc
        (monotonic clock).  ``None`` until terminal; ``0.0``-adjacent
        for store hits, which never start."""
        if self.finished_mono is None:
            return None
        base = (
            self.started_mono
            if self.started_mono is not None
            else self.created_mono
        )
        return self.finished_mono - base

    def snapshot(self) -> dict:
        """JSON-shaped status view (the ``status`` verb's payload).

        ``created``/``started``/``finished`` are wall-clock display
        timestamps; ``queued_seconds``/``run_seconds`` are the
        monotonic-clock durations -- never subtract the timestamps.
        """
        return {
            "id": self.id,
            "verb": self.verb,
            "fingerprint": self.fingerprint,
            "priority": self.priority,
            "state": self.state,
            "source": self.source,
            "attempts": self.attempts,
            "requeues": self.requeues,
            "coalesced": self.coalesced,
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "queued_seconds": self.queued_seconds(),
            "run_seconds": self.run_seconds(),
            "events": len(self.events),
            "checkpointed": len(self.checkpoint),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job({self.id}, {self.verb}, state={self.state}, "
            f"attempts={self.attempts})"
        )


def _new_future() -> asyncio.Future:
    """A future bound to the running loop.

    Jobs exist only inside the service's event loop (admission may
    precede ``start()`` -- the single-flight tests do exactly that --
    but always runs under the loop that will drive the workers), so a
    missing loop is a caller bug worth naming."""
    try:
        return asyncio.get_running_loop().create_future()
    except RuntimeError as exc:  # pragma: no cover - caller bug
        raise ServiceError(
            "jobs must be submitted from within a running event loop"
        ) from exc
