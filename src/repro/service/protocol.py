"""JSON-lines wire framing for the sweep service.

One frame = one compact JSON object terminated by ``\\n`` (no embedded
newlines; ``json.dumps`` never emits them).  Requests and responses are
symmetric frames; see :mod:`repro.service` for the verb catalogue and
envelope contract.  The framing is deliberately minimal -- stdlib-only,
debuggable with ``nc`` -- and guarded: an over-long or non-JSON line is
a :class:`ProtocolError`, answered with an error envelope rather than
a torn connection where possible.
"""

from __future__ import annotations

import asyncio
import json

from .jobs import ServiceError

__all__ = [
    "encode_frame",
    "error_envelope",
    "MAX_FRAME_BYTES",
    "ok_envelope",
    "ProtocolError",
    "read_frame",
    "write_frame",
]

#: Upper bound on one frame (a stored grid result with hundreds of
#: scenarios stays far below this; anything bigger is a framing bug).
MAX_FRAME_BYTES = 8 * 1024 * 1024


class ProtocolError(ServiceError):
    """A malformed, over-long, or non-JSON-object frame."""


def encode_frame(payload: dict) -> bytes:
    """Compact JSON + newline terminator."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def ok_envelope(**fields) -> dict:
    return {"ok": True, **fields}


def error_envelope(error: BaseException | str, kind: str | None = None) -> dict:
    """The uniform error shape: ``{"ok": false, "error": {"type", "message"}}``."""
    if isinstance(error, BaseException):
        kind = kind or type(error).__name__
        message = str(error)
    else:
        kind = kind or "ServiceError"
        message = str(error)
    return {"ok": False, "error": {"type": kind, "message": message}}


async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> dict | None:
    """The next frame as a dict, or ``None`` at clean EOF."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-frame") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(
            f"frame exceeds the stream limit ({exc.consumed} bytes buffered)"
        ) from exc
    if len(line) > max_bytes:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the {max_bytes} byte cap"
        )
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


async def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()
