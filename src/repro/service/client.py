"""Service clients: in-process (:class:`ServiceClient`) and TCP
(:class:`RemoteClient`), one method surface.

The in-process client wraps a live :class:`~repro.service.SweepService`
and returns live :class:`~repro.api.RunResult` objects (private clones
-- the single-flight fan-out contract); the remote client speaks the
JSON-lines protocol and returns the decoded envelopes, with error
envelopes raised as :class:`RemoteError`.  Both submit campaigns as
job batches: every expanded entry becomes one ``submit``, so a
campaign's repeated fingerprints dedupe against the store and against
other clients' in-flight work.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator

from ..api.result import RunResult
from ..api.spec import RunSpec
from .jobs import Job, ServiceError
from .protocol import MAX_FRAME_BYTES, ProtocolError, read_frame, write_frame
from .service import SweepService

__all__ = ["RemoteClient", "RemoteError", "ServiceClient"]


class ServiceClient:
    """Async in-process facade over a running :class:`SweepService`."""

    def __init__(self, service: SweepService) -> None:
        self.service = service

    async def submit(
        self, verb: str, spec, *, priority: int = 0, wait: bool = True
    ) -> RunResult | Job:
        """Submit one run; with ``wait`` (default) return its
        :class:`~repro.api.RunResult` clone, else the tracking
        :class:`Job`."""
        job = self.service.submit(verb, spec, priority=priority)
        if not wait:
            return job
        return await job.wait()

    async def status(self, job_id: str) -> dict:
        return self.service.job(job_id).snapshot()

    async def result(self, job_id: str) -> RunResult:
        return await self.service.job(job_id).wait()

    async def stream(self, job_id: str) -> AsyncIterator[dict]:
        """Yield the job's events (history first, then live) until the
        terminal ``done``/``failed`` event."""
        job = self.service.job(job_id)
        queue = job.subscribe()
        try:
            while True:
                event = await queue.get()
                if event is None:
                    return
                yield event
        finally:
            job.unsubscribe(queue)

    async def stats(self) -> dict:
        return self.service.stats()

    async def submit_campaign(
        self, campaign, *, priority: int = 0
    ) -> list[tuple[str, Job]]:
        """Submit every expanded campaign entry as one job; returns
        ``(label, job)`` pairs in lattice order (await ``job.wait()``
        for the results -- coalesced/hit entries resolve instantly)."""
        return [
            (entry.label, self.service.submit(
                entry.verb, entry.spec, priority=priority
            ))
            for entry in campaign.expand()
        ]


class RemoteError(ServiceError):
    """An error envelope from the server; ``payload`` is the decoded
    ``{"type", "message"}`` mapping."""

    def __init__(self, payload: dict):
        self.payload = payload or {}
        super().__init__(
            f"{self.payload.get('type', 'ServiceError')}: "
            f"{self.payload.get('message', 'unknown error')}"
        )


class RemoteClient:
    """One TCP connection to a :class:`~repro.service.SweepServer`.

    Requests run one at a time per connection (the wire protocol is
    strictly request/response on a line); open one client per
    concurrent caller, exactly like a database connection.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "RemoteClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES
        )
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "RemoteClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def request(self, payload: dict) -> dict:
        """One request frame -> the one response frame; error envelopes
        raise :class:`RemoteError`."""
        await write_frame(self._writer, payload)
        response = await read_frame(self._reader)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        if not response.get("ok", False):
            raise RemoteError(response.get("error"))
        return response

    @staticmethod
    def _spec_payload(spec) -> dict:
        if isinstance(spec, RunSpec):
            # Strict serialization: live-object specs cannot cross the
            # wire (SpecError here beats a garbled frame there).
            return spec.to_dict()
        return dict(spec)

    async def submit(
        self, verb: str, spec, *, priority: int = 0, wait: bool = True
    ) -> dict:
        """Submit one run.  With ``wait`` the response carries
        ``result`` (the serialized :class:`~repro.api.RunResult`) and
        ``store_meta``; without it, just the admitted job snapshot."""
        return await self.request({
            "op": "submit",
            "verb": verb,
            "spec": self._spec_payload(spec),
            "priority": priority,
            "wait": wait,
        })

    async def status(self, job_id: str) -> dict:
        return (await self.request({"op": "status", "id": job_id}))["job"]

    async def result(self, job_id: str) -> dict:
        return await self.request({"op": "result", "id": job_id})

    async def stats(self) -> dict:
        return (await self.request({"op": "stats"}))["stats"]

    async def stream(self, job_id: str) -> AsyncIterator[dict]:
        """Yield event frames for ``job_id`` until the terminal summary
        frame (which is yielded last, carrying ``done``/``job``)."""
        await write_frame(self._writer, {"op": "stream", "id": job_id})
        while True:
            frame = await read_frame(self._reader)
            if frame is None:
                raise ProtocolError("server closed the stream early")
            if not frame.get("ok", False):
                raise RemoteError(frame.get("error"))
            yield frame
            if frame.get("done"):
                return

    async def submit_campaign(
        self, campaign, *, priority: int = 0, wait: bool = True
    ) -> list[tuple[str, dict]]:
        """Submit every expanded entry; returns ``(label, response)``
        pairs in lattice order."""
        responses = []
        for entry in campaign.expand():
            responses.append((
                entry.label,
                await self.submit(
                    entry.verb,
                    entry.spec,
                    priority=priority,
                    wait=wait,
                ),
            ))
        return responses
