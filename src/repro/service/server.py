"""The TCP front end: ``asyncio.start_server`` over the JSON-lines
protocol.

Connection handling is isolated per client (SRMCA-style: an accept- or
dispatch-layer failure degrades one connection, never the service):
every request frame is answered with exactly one response frame --
except ``stream``, which answers with one frame per job event and a
terminal summary frame -- and any per-request error becomes an error
envelope on that connection while the service keeps serving everyone
else.
"""

from __future__ import annotations

import asyncio

from ..api.spec import SpecError
from .jobs import JobFailed, ServiceError
from .protocol import (
    error_envelope,
    MAX_FRAME_BYTES,
    ok_envelope,
    ProtocolError,
    read_frame,
    write_frame,
)
from .service import SweepService

__all__ = ["SweepServer"]


def _result_envelope(job, result) -> dict:
    return ok_envelope(
        job=job.snapshot(),
        result=result.to_dict(),
        store_meta=result.store_meta,
    )


class SweepServer:
    """Serve a :class:`SweepService` over TCP (see :mod:`repro.service`
    for the wire contract)."""

    def __init__(
        self, service: SweepService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> "SweepServer":
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_FRAME_BYTES,
        )
        # Pin the ephemeral port the OS actually assigned (port=0).
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "SweepServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    # A garbled frame poisons the line discipline; answer
                    # once and hang up rather than misparse what follows.
                    await write_frame(writer, error_envelope(exc))
                    break
                if request is None:
                    break
                try:
                    await self._dispatch(request, writer)
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                except Exception as exc:
                    # Per-request isolation: report, keep the connection.
                    await write_frame(writer, error_envelope(exc))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        op = request.get("op")
        if op == "submit":
            await self._op_submit(request, writer)
        elif op == "status":
            job = self.service.job(_require_id(request))
            await write_frame(writer, ok_envelope(job=job.snapshot()))
        elif op == "result":
            job = self.service.job(_require_id(request))
            result = await job.wait()  # raises JobFailed into the envelope
            await write_frame(writer, _result_envelope(job, result))
        elif op == "stream":
            await self._op_stream(request, writer)
        elif op == "stats":
            await write_frame(writer, ok_envelope(stats=self.service.stats()))
        else:
            await write_frame(
                writer,
                error_envelope(
                    f"unknown op {op!r}; one of "
                    f"['result', 'stats', 'status', 'stream', 'submit']",
                    kind="ProtocolError",
                ),
            )

    async def _op_submit(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        verb = request.get("verb")
        spec = request.get("spec")
        if not isinstance(spec, dict):
            raise SpecError("submit needs a mapping 'spec' field")
        priority = request.get("priority", 0)
        if not isinstance(priority, int):
            raise SpecError("submit 'priority' must be an integer")
        job = self.service.submit(verb, spec, priority=priority)
        if not request.get("wait", True):
            await write_frame(writer, ok_envelope(job=job.snapshot()))
            return
        try:
            result = await job.wait()
        except JobFailed as exc:
            await write_frame(
                writer,
                {**error_envelope(exc), "job": exc.job.snapshot()},
            )
            return
        await write_frame(writer, _result_envelope(job, result))

    async def _op_stream(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        job = self.service.job(_require_id(request))
        queue = job.subscribe()
        try:
            while True:
                event = await queue.get()
                if event is None:
                    break
                await write_frame(writer, ok_envelope(event=event))
        finally:
            job.unsubscribe(queue)
        await write_frame(writer, ok_envelope(done=True, job=job.snapshot()))


def _require_id(request: dict) -> str:
    job_id = request.get("id")
    if not isinstance(job_id, str) or not job_id:
        raise ServiceError(f"op {request.get('op')!r} needs a string 'id'")
    return job_id
