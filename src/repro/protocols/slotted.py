"""The slotted-protocol substrate (Sections 2 and 6 of the paper).

A slotted protocol divides time into slots of length ``I``.  Most slots
are sleep slots; in each *active* slot the device transmits a beacon at
the slot start (and, in two-beacon designs like Searchlight or the
code-based schedules of [6, 7], a second beacon at the slot end) and
listens in between.  Discovery needs two active slots to overlap *and* a
beacon of one device to fall into the listening part of the other's slot
-- the distinction Figure 5 of the paper is about.

:class:`SlotPattern` captures the combinatorics (which slots of a period
are active; worst-case slots until overlap via the cyclic-difference
criterion), and :meth:`SlotPattern.to_protocol` lowers a pattern onto the
microsecond time base as beacon/reception schedules for the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable

from ..core.sequences import (
    Beacon,
    BeaconSchedule,
    NDProtocol,
    ReceptionSchedule,
    ReceptionWindow,
)

__all__ = ["SlotPattern", "SlotTiming"]


@dataclass(frozen=True)
class SlotTiming:
    """Microsecond-level layout of one active slot.

    ``slot_length`` is ``I``; ``omega`` the beacon duration.  With
    ``two_beacons`` the slot sends at both boundaries (the [5, 6, 7]
    design); otherwise only at the start.  The radio listens between the
    transmissions, minus the turnaround guard on each side.
    """

    slot_length: int
    omega: int
    two_beacons: bool = True
    turnaround: int = 0

    def __post_init__(self) -> None:
        if self.slot_length <= 0 or self.omega <= 0:
            raise ValueError("slot_length and omega must be positive")
        if self.turnaround < 0:
            raise ValueError("turnaround must be non-negative")
        if self.listen_duration <= 0:
            raise ValueError(
                f"slot too short to listen: I={self.slot_length}, "
                f"omega={self.omega}, turnaround={self.turnaround}"
            )

    @property
    def listen_start(self) -> int:
        """Listening starts after the leading beacon plus turnaround."""
        return self.omega + self.turnaround

    @property
    def listen_end(self) -> int:
        """Listening ends before the trailing beacon (if any) plus guard."""
        if self.two_beacons:
            return self.slot_length - self.omega - self.turnaround
        return self.slot_length

    @property
    def listen_duration(self) -> int:
        """Length of the reception window inside an active slot."""
        return self.listen_end - self.listen_start

    @property
    def beacons_per_slot(self) -> int:
        """1 or 2 transmissions per active slot."""
        return 2 if self.two_beacons else 1


class SlotPattern:
    """An active-slot pattern: period ``total_slots``, active set ``A``.

    The slot-level discovery criterion (aligned slot grids, the standard
    model of [16, 17]): device 2 shifted by ``delta`` slots overlaps
    device 1 in slot ``s`` iff ``s mod T`` is active on device 1 and
    ``(s - delta) mod T`` is active on device 2.  The pattern guarantees
    slot overlap for every ``delta`` iff the difference set
    ``{a - a' mod T}`` of the active set covers all residues -- the cyclic
    difference-set criterion behind the ``k >= sqrt(T)`` bound.
    """

    def __init__(self, active_slots: Iterable[int], total_slots: int, name: str = "slotted") -> None:
        if total_slots <= 0:
            raise ValueError(f"total_slots must be positive, got {total_slots}")
        active = sorted({s % total_slots for s in active_slots})
        if not active:
            raise ValueError("need at least one active slot")
        self._active = tuple(active)
        self._total = total_slots
        self._name = name

    # ------------------------------------------------------------------
    @property
    def active_slots(self) -> tuple[int, ...]:
        """Sorted active-slot residues within one period."""
        return self._active

    @property
    def total_slots(self) -> int:
        """Period length ``T`` in slots."""
        return self._total

    @property
    def n_active(self) -> int:
        """``k`` -- active slots per period."""
        return len(self._active)

    @property
    def name(self) -> str:
        """Human-readable pattern name."""
        return self._name

    @property
    def slot_duty_cycle(self) -> float:
        """``k / T`` -- the fraction of active slots (the duty-cycle in the
        large-slot regime, Equation 20)."""
        return self.n_active / self._total

    # ------------------------------------------------------------------
    @cached_property
    def _active_set(self) -> frozenset[int]:
        return frozenset(self._active)

    def overlap_slots(self, delta: int) -> list[int]:
        """Slot residues in which both copies are active when the second
        device's grid is shifted by ``delta`` slots."""
        delta %= self._total
        return [
            s
            for s in self._active
            if (s - delta) % self._total in self._active_set
        ]

    def slots_to_discovery(self, delta: int) -> int | None:
        """Earliest absolute slot index (starting at 0) with overlapping
        active slots for shift ``delta``, or ``None`` if never."""
        overlaps = self.overlap_slots(delta)
        if not overlaps:
            return None
        return min(overlaps)

    def is_deterministic(self) -> bool:
        """True iff every integer shift yields an overlap within a period
        (the difference-set covering criterion)."""
        return all(
            self.slots_to_discovery(delta) is not None
            for delta in range(self._total)
        )

    def worst_case_slots(self) -> int | None:
        """Worst case over all shifts of slots-until-overlap (counting the
        overlap slot itself), or ``None`` if not deterministic."""
        worst = 0
        for delta in range(self._total):
            first = self.slots_to_discovery(delta)
            if first is None:
                return None
            worst = max(worst, first + 1)
        return worst

    def meets_sqrt_bound(self) -> bool:
        """Check the [16, 17] bound ``k >= sqrt(T)``; equality is only
        achievable by perfect difference sets."""
        return self.n_active >= math.isqrt(self._total - 1) + 1 or (
            self.n_active * self.n_active >= self._total
        )

    # ------------------------------------------------------------------
    def to_protocol(self, timing: SlotTiming, alpha: float = 1.0) -> NDProtocol:
        """Lower the pattern onto the microsecond time base.

        Each active slot ``s`` becomes a leading beacon at ``s * I``, a
        reception window over the slot's middle, and (for two-beacon
        designs) a trailing beacon at ``(s+1) * I - omega``.
        """
        period = self._total * timing.slot_length
        beacons: list[Beacon] = []
        windows: list[ReceptionWindow] = []
        for s in self._active:
            base = s * timing.slot_length
            beacons.append(Beacon(base, timing.omega))
            windows.append(
                ReceptionWindow(base + timing.listen_start, timing.listen_duration)
            )
            if timing.two_beacons:
                beacons.append(
                    Beacon(
                        base + timing.slot_length - timing.omega, timing.omega
                    )
                )
        return NDProtocol(
            beacons=BeaconSchedule(beacons, period),
            reception=ReceptionSchedule(windows, period),
            alpha=alpha,
            name=f"{self._name}(T={self._total}, k={self.n_active}, I={timing.slot_length})",
        )

    def duty_cycle(self, timing: SlotTiming, alpha: float = 1.0) -> float:
        """``eta`` of the lowered protocol (Equation 17 exactly, including
        the listening truncation by the slot's own beacons)."""
        protocol = self.to_protocol(timing, alpha)
        return protocol.eta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlotPattern({self._name!r}, T={self._total}, k={self.n_active})"
        )
