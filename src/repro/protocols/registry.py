"""Declarative pair-family registry: constructor schemas for specs.

:class:`repro.api.RunSpec` names protocol pairs declaratively
(``{"kind": ..., ...}``) so a spec can live in a JSON file next to its
results.  This module is the registry those descriptions resolve
through:

* :func:`register_pair_schema` adds a new pair family --
  ``repro.api.spec.build_pair`` consults the registry for any kind it
  does not handle inline, so downstream code can introduce families
  without touching ``repro.api.spec``.
* :func:`canonical_pair` normalizes a declarative description by
  filling in schema defaults, so content-addressed fingerprints
  (:mod:`repro.store`) derive from the *schema* -- ``{"kind":
  "symmetric"}`` and ``{"kind": "symmetric", "omega": 32, "eta": 0.01,
  "alpha": 1.0}`` describe the same experiment and must fingerprint
  identically.  Canonicalization is best-effort and never raises: a
  description it cannot interpret passes through unchanged (the
  fingerprint is then over the literal form, still deterministic).

Zoo descriptions canonicalize through ``inspect.signature`` of the
named protocol class, so fingerprints track constructor *parameters*
(including defaults), not import paths or call-site spelling.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = [
    "PairSchema",
    "canonical_pair",
    "build_registered_pair",
    "pair_kinds",
    "pair_schema",
    "register_pair_schema",
]


@dataclass(frozen=True)
class PairSchema:
    """One registered pair family.

    ``build`` maps the (already kind-stripped) parameter mapping to
    ``(protocol_e, protocol_f, horizon_base)``; ``defaults`` are the
    constructor defaults canonicalization fills in; ``canonicalize``
    optionally replaces the default fill-in logic entirely (the zoo
    family's signature inspection).
    """

    kind: str
    build: Callable[[dict], tuple]
    defaults: Mapping[str, Any] = field(default_factory=dict)
    canonicalize: Callable[[dict], dict] | None = None
    description: str = ""

    def canonical_params(self, params: dict) -> dict:
        if self.canonicalize is not None:
            return self.canonicalize(params)
        merged = dict(self.defaults)
        merged.update(params)
        return merged


_SCHEMAS: dict[str, PairSchema] = {}


def register_pair_schema(schema: PairSchema) -> None:
    """Register (or replace) a declarative pair family under its kind."""
    _SCHEMAS[schema.kind] = schema


def pair_schema(kind: str) -> PairSchema | None:
    """The registered schema for ``kind`` (``None`` when unknown)."""
    return _SCHEMAS.get(kind)


def pair_kinds() -> list[str]:
    """Registered pair kinds, sorted."""
    return sorted(_SCHEMAS)


def canonical_pair(pair: Any) -> Any:
    """Schema-canonical form of a declarative pair description.

    Fills registered defaults so equivalent descriptions produce one
    canonical mapping; non-mapping or unrecognized inputs pass through
    unchanged.  Never raises -- fingerprinting must not fail on a
    description the builder itself would reject later with a clear
    error.
    """
    if not isinstance(pair, Mapping):
        return pair
    payload = dict(pair)
    schema = _SCHEMAS.get(payload.get("kind"))
    if schema is None:
        return payload
    kind = payload.pop("kind")
    try:
        params = schema.canonical_params(payload)
    except Exception:
        return dict(pair)
    return {"kind": kind, **params}


def build_registered_pair(pair: Mapping) -> tuple:
    """Build ``(protocol_e, protocol_f, horizon_base)`` via the registry.

    Raises ``KeyError`` for an unregistered kind -- callers
    (``build_pair``) translate that into their own error type.
    """
    payload = dict(pair)
    kind = payload.pop("kind", None)
    schema = _SCHEMAS[kind]
    return schema.build(payload)


# ----------------------------------------------------------------------
# Built-in families
# ----------------------------------------------------------------------


def _zoo_canonicalize(params: dict) -> dict:
    """Fill a zoo description's params from the constructor signature."""
    from .. import protocols as protocol_zoo

    name = params.get("protocol")
    given = dict(params.get("params") or {})
    factory = getattr(protocol_zoo, str(name), None)
    if factory is None:
        return dict(params)
    merged: dict[str, Any] = {}
    for parameter in inspect.signature(factory).parameters.values():
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        if parameter.name in given:
            merged[parameter.name] = given.pop(parameter.name)
        elif parameter.default is not inspect.Parameter.empty:
            merged[parameter.name] = parameter.default
    merged.update(given)  # unknown extras kept; the builder rejects them
    return {"protocol": str(name), "params": merged}


def _build_via_spec(kind: str) -> Callable[[dict], tuple]:
    def build(params: dict) -> tuple:
        from ..api.spec import build_pair

        return build_pair({"kind": kind, **params})

    return build


def _build_unidirectional(params: dict) -> tuple:
    from ..core.optimal import synthesize_unidirectional
    from ..core.sequences import NDProtocol

    design = synthesize_unidirectional(
        params.pop("omega", 32),
        params.pop("window"),
        params.pop("k"),
        params.pop("stride", None),
        params.pop("redundancy", 1),
    )
    if params:
        raise ValueError(
            f"unknown pair parameter(s) for 'unidirectional': {sorted(params)}"
        )
    advertiser = NDProtocol(
        beacons=design.beacons, reception=None, name="advertiser"
    )
    scanner = NDProtocol(
        beacons=None, reception=design.reception, name="scanner"
    )
    return advertiser, scanner, design.worst_case_latency


register_pair_schema(PairSchema(
    kind="symmetric",
    build=_build_via_spec("symmetric"),
    defaults={"omega": 32, "eta": 0.01, "alpha": 1.0},
    description="Both devices run the bound-attaining symmetric protocol.",
))
register_pair_schema(PairSchema(
    kind="symmetric-split",
    build=_build_via_spec("symmetric-split"),
    defaults={"omega": 32, "eta": 0.01, "alpha": 1.0},
    description="Symmetric synthesis split into advertiser + scanner.",
))
register_pair_schema(PairSchema(
    kind="asymmetric",
    build=_build_via_spec("asymmetric"),
    defaults={"omega": 32, "eta_e": 0.1, "eta_f": 0.01, "alpha": 1.0},
    description="The Theorem-5.7 gateway/peripheral pair.",
))
register_pair_schema(PairSchema(
    kind="zoo",
    build=_build_via_spec("zoo"),
    canonicalize=_zoo_canonicalize,
    description="Any protocol class exported by repro.protocols.",
))
register_pair_schema(PairSchema(
    kind="unidirectional",
    build=_build_unidirectional,
    defaults={"omega": 32, "stride": None, "redundancy": 1},
    description=(
        "A synthesized one-way advertiser/scanner design "
        "(synthesize_unidirectional)."
    ),
))
