"""Grid-quorum schedules (Tseng et al. [2], the power-saving ancestor).

Arrange a period of ``n^2`` slots as an ``n x n`` grid; a device picks a
row and a column and is active in those ``2n - 1`` slots.  Any two
row/column crosses intersect in at least two slots *for every cyclic
shift that preserves grid alignment*, giving discovery within ``n^2``
slots at a slot duty-cycle of ``(2n-1)/n^2 ~ 2/n`` -- the historical
baseline that difference sets (``~1/n``) later halved, exactly the
progression the paper's related-work narrative describes.

Unlike difference sets, a quorum's guarantee holds for *arbitrary*
integer shifts too (rows wrap into rows, columns into columns), which
the tests verify through the generic :class:`SlotPattern` machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sequences import NDProtocol
from .base import PairProtocol, ProtocolInfo, Role
from .slotted import SlotPattern, SlotTiming

__all__ = ["GridQuorum"]


@dataclass(frozen=True)
class GridQuorum(PairProtocol):
    """A configured grid-quorum protocol.

    Parameters
    ----------
    grid:
        ``n``, the grid dimension; the period is ``n^2`` slots.
    row, column:
        The chosen row/column indices (default 0, 0); devices may pick
        different crosses and still meet.
    slot_length, omega, alpha:
        Slot length ``I`` (us), beacon duration (us), TX/RX power ratio.
    """

    grid: int
    row: int = 0
    column: int = 0
    slot_length: int = 10_000
    omega: int = 32
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.grid < 2:
            raise ValueError(f"grid must be >= 2, got {self.grid}")
        if not (0 <= self.row < self.grid and 0 <= self.column < self.grid):
            raise ValueError("row/column must lie inside the grid")

    def pattern(self) -> SlotPattern:
        """Active slots: the chosen row and column of the n x n grid."""
        n = self.grid
        active = {self.row * n + c for c in range(n)}
        active |= {r * n + self.column for r in range(n)}
        return SlotPattern(active, n * n, name=f"quorum-{n}x{n}")

    def timing(self) -> SlotTiming:
        """One beacon per active slot, like the early quorum designs."""
        return SlotTiming(self.slot_length, self.omega, two_beacons=False)

    def device(self, role: Role) -> NDProtocol:
        return self.pattern().to_protocol(self.timing(), self.alpha)

    def info(self) -> ProtocolInfo:
        return ProtocolInfo(
            name="Grid-Quorum",
            family="slotted",
            symmetric=True,
            deterministic=True,
            parameters={
                "grid": self.grid,
                "row": self.row,
                "column": self.column,
                "slot_length": self.slot_length,
                "omega": self.omega,
            },
        )

    @property
    def slot_duty_cycle(self) -> float:
        """``(2n - 1) / n^2`` -- twice the difference-set optimum."""
        n = self.grid
        return (2 * n - 1) / (n * n)

    def worst_case_slots(self) -> int:
        """Guarantee: overlap within one grid period of ``n^2`` slots."""
        return self.grid * self.grid

    def predicted_worst_case_latency(self) -> float:
        """Worst-case latency in microseconds."""
        return self.worst_case_slots() * self.slot_length
