"""Disco (Dutta & Culler, SenSys 2008) -- the two-prime slotted protocol.

Each device picks two distinct primes ``p1 < p2`` and wakes in slot ``i``
whenever ``i mod p1 == 0`` or ``i mod p2 == 0``.  By the Chinese remainder
theorem two devices with overlapping prime pairs are guaranteed an
overlapping active slot within ``p1 * p2`` slots regardless of slot
offset.  Duty-cycle ``~ 1/p1 + 1/p2``; the paper's Table 1 prices the
resulting latency at ``8 omega / (eta beta - alpha beta^2)``, an 8x gap
to the slotted optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.sequences import NDProtocol
from .base import PairProtocol, ProtocolInfo, Role
from .slotted import SlotPattern, SlotTiming

__all__ = ["Disco", "disco_primes_for_duty_cycle", "PRIMES"]


def _primes_up_to(limit: int) -> list[int]:
    sieve = bytearray([1]) * (limit + 1)
    sieve[:2] = b"\x00\x00"
    for i in range(2, int(limit**0.5) + 1):
        if sieve[i]:
            sieve[i * i :: i] = b"\x00" * len(sieve[i * i :: i])
    return [i for i, flag in enumerate(sieve) if flag]


PRIMES: list[int] = _primes_up_to(10_000)
"""Primes available for Disco configurations."""


def disco_primes_for_duty_cycle(slot_duty_cycle: float, balanced: bool = True) -> tuple[int, int]:
    """Pick a prime pair whose slot duty-cycle ``1/p1 + 1/p2`` best
    approximates the target.

    ``balanced`` pairs (``p1 ~ p2``, the configuration Dutta & Culler
    recommend for symmetric deployments) minimize worst-case slots for a
    given duty-cycle; unbalanced pairs trade worst-case for median.
    """
    if not 0 < slot_duty_cycle < 1:
        raise ValueError(f"slot_duty_cycle must be in (0,1), got {slot_duty_cycle}")
    best: tuple[int, int] | None = None
    best_err = math.inf
    # p1 close to 2/dc for balanced pairs; scan a window around it.
    center = 2.0 / slot_duty_cycle
    candidates = [p for p in PRIMES if center / 4 <= p <= center * 4]
    if not candidates:
        candidates = PRIMES[:50]
    for i, p1 in enumerate(candidates):
        for p2 in candidates[i + 1 :]:
            if not balanced and p2 < 2 * p1:
                continue
            err = abs(1.0 / p1 + 1.0 / p2 - slot_duty_cycle)
            if err < best_err:
                best_err = err
                best = (p1, p2)
    assert best is not None
    return best


@dataclass(frozen=True)
class Disco(PairProtocol):
    """A configured Disco instance (both devices use the same prime pair).

    Parameters
    ----------
    prime1, prime2:
        Distinct primes; wake slots are the multiples of either.
    slot_length:
        Slot length ``I`` in microseconds.
    omega:
        Beacon duration in microseconds.
    alpha:
        TX/RX power ratio for duty-cycle accounting.
    """

    prime1: int
    prime2: int
    slot_length: int = 10_000
    omega: int = 32
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.prime1 >= self.prime2:
            raise ValueError("prime1 must be smaller than prime2")
        for p in (self.prime1, self.prime2):
            if p not in _PRIME_SET:
                raise ValueError(f"{p} is not prime (or beyond the sieve limit)")

    # ------------------------------------------------------------------
    def pattern(self) -> SlotPattern:
        """The active-slot pattern over one full period ``p1 * p2``."""
        total = self.prime1 * self.prime2
        active = {s for s in range(total) if s % self.prime1 == 0 or s % self.prime2 == 0}
        return SlotPattern(active, total, name=f"disco-{self.prime1}x{self.prime2}")

    def timing(self) -> SlotTiming:
        """Disco sends beacons at both the beginning and the end of each
        active slot (Dutta & Culler, Section 3.3) so that partially
        overlapping slots still exchange a packet -- the Figure-5 issue."""
        return SlotTiming(self.slot_length, self.omega, two_beacons=True)

    def device(self, role: Role) -> NDProtocol:
        return self.pattern().to_protocol(self.timing(), self.alpha)

    def info(self) -> ProtocolInfo:
        return ProtocolInfo(
            name="Disco",
            family="slotted",
            symmetric=True,
            deterministic=True,
            parameters={
                "prime1": self.prime1,
                "prime2": self.prime2,
                "slot_length": self.slot_length,
                "omega": self.omega,
            },
        )

    @property
    def slot_duty_cycle(self) -> float:
        """``1/p1 + 1/p2 - 1/(p1 p2)`` (the CRT overlap slot counted once)."""
        return (
            1.0 / self.prime1
            + 1.0 / self.prime2
            - 1.0 / (self.prime1 * self.prime2)
        )

    def worst_case_slots(self) -> int:
        """Disco's guarantee: discovery within ``p1 * p2`` slots."""
        return self.prime1 * self.prime2

    def predicted_worst_case_latency(self) -> float:
        """Worst-case latency in microseconds (slots x slot length)."""
        return self.worst_case_slots() * self.slot_length


_PRIME_SET = frozenset(PRIMES)
