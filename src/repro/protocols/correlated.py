"""Appendix C: mutual-exclusive one-way discovery via temporal correlation.

If beacons keep a *fixed temporal relation* ``zeta`` to the reception
windows on their own device, the offset of E's beacons in F's coordinates
is fully determined by the offset of F's beacons in E's coordinates
(Equation 34: ``Phi_E = 2 zeta - Phi_F``).  Each device then only needs
to cover *half* of the offsets itself -- the other half is guaranteed by
the mirrored direction -- which halves the beacon budget and yields the
tightest pairwise bound ``L = 2 alpha omega / eta^2`` (Theorem C.1).

Construction (k even, window ``d``, ``T_C = k d``):

* both devices: one reception window ``[0, d)`` per period ``T_C``;
* both devices: ``k/2`` beacons with gap ``2 d`` at phase
  ``zeta = 2 d - ceil(omega/2)``.

Why the ``- ceil(omega/2)``: a beacon physically overlaps a window
``[t, t+d)`` for send times in the *open* interval ``(t - omega, t + d)``.
Direct (F -> E) coverage therefore leaves the gaps
``[odd*d, even*d - omega]`` between the even window-residues; the
mirrored (E -> F) blocks, whose position is controlled by ``2 zeta mod
2d``, must cover those gaps with *strict* overlap on both ends or
measure-zero seams become real holes on the integer grid.  That forces
``2 zeta mod 2d`` strictly inside ``(2d - 2 omega, 2d)``; the choice
``zeta = 2d - ceil(omega/2)`` (requiring ``omega >= 2``) centers the
overlap.  One consequence, mirroring Figure 8 / Appendix A.5: the last
beacon of each period straddles the period boundary and clips the head
of the device's own reception window by ``floor(omega/2)`` -- an
unavoidable self-blocking of one beacon per period that half-duplex
simulation quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bounds import one_way_bound
from ..core.sequences import (
    Beacon,
    BeaconSchedule,
    NDProtocol,
    ReceptionSchedule,
)
from .base import PairProtocol, ProtocolInfo, Role

__all__ = ["CorrelatedOneWay", "one_way_discovery_time"]


@dataclass(frozen=True)
class CorrelatedOneWay(PairProtocol):
    """The Appendix-C quadruple for a pair of identical devices.

    Parameters
    ----------
    k:
        Even number of window-residues per coverage cycle;
        ``gamma = 1/k`` and each device sends ``k/2`` beacons per period.
    window:
        Reception-window duration ``d`` in us.  The Theorem-C.1 optimum
        needs ``alpha * omega / (2 d) == 1 / k``, i.e.
        ``d = alpha * omega * k / 2``; other values are valid but
        off-optimal.
    omega, alpha:
        Beacon duration (us) and TX/RX power ratio.
    """

    k: int
    window: int
    omega: int = 32
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2 != 0:
            raise ValueError(f"k must be even and >= 2, got {self.k}")
        if self.omega < 2:
            raise ValueError(
                f"omega must be >= 2 us so the mirrored coverage blocks can "
                f"strictly overlap, got {self.omega}"
            )
        if self.window < self.omega:
            raise ValueError(
                f"window ({self.window}) must be at least omega ({self.omega})"
            )

    @classmethod
    def for_duty_cycle(
        cls, eta: float, omega: int = 32, alpha: float = 1.0
    ) -> "CorrelatedOneWay":
        """Pick ``(k, d)`` for a duty-cycle budget at the Theorem-C.1
        optimum: ``eta = 2/k`` and ``d = alpha omega k / 2``."""
        if not 0 < eta <= 1:
            raise ValueError(f"eta must be in (0, 1], got {eta}")
        k = max(2, 2 * round(1.0 / eta))
        window = max(omega, round(alpha * omega * k / 2))
        return cls(k=k, window=window, omega=omega, alpha=alpha)

    # ------------------------------------------------------------------
    @property
    def period(self) -> int:
        """``T_C = k * d``."""
        return self.k * self.window

    @property
    def zeta(self) -> int:
        """The fixed beacon-to-window relation: ``2 d - ceil(omega/2)``
        after the window start, so the mirrored coverage blocks strictly
        overlap the direct ones (see module docstring)."""
        return 2 * self.window - (self.omega + 1) // 2

    def device(self, role: Role) -> NDProtocol:
        d = self.window
        beacons = [
            Beacon(self.zeta + 2 * j * d, self.omega) for j in range(self.k // 2)
        ]
        return NDProtocol(
            beacons=BeaconSchedule(beacons, self.period),
            reception=ReceptionSchedule.single_window(duration=d, period=self.period),
            alpha=self.alpha,
            name=f"correlated-one-way(k={self.k}, d={d})",
        )

    def info(self) -> ProtocolInfo:
        return ProtocolInfo(
            name="Correlated-One-Way",
            family="optimal",
            symmetric=True,
            deterministic=True,
            parameters={
                "k": self.k,
                "window": self.window,
                "omega": self.omega,
                "alpha": self.alpha,
            },
        )

    def predicted_worst_case_latency(self) -> int:
        """Guaranteed one-way latency: the last residue is reached after
        ``k/2`` beacon gaps of ``2 d`` plus one period of slack for the
        in-range instant, conservatively ``T_C + 2 d``."""
        return self.period + 2 * self.window

    def bound_at_achieved_duty_cycle(self) -> float:
        """Theorem C.1 at the achieved duty-cycle."""
        eta = self.device(Role.E).eta
        return one_way_bound(self.omega, eta, self.alpha)


def one_way_discovery_time(
    protocol: CorrelatedOneWay, offset: int, horizon: int | None = None
) -> int | None:
    """Exact first one-way discovery instant for a phase offset.

    Device E runs at phase 0, device F at phase ``offset``; both enter
    range at time 0.  Returns the earliest time at which a beacon of
    either device overlaps a reception window of the other (any-overlap
    rule), or ``None`` within ``horizon`` (default: two periods plus one
    gap, beyond the deterministic guarantee).

    Implemented by direct arithmetic unrolling so the Appendix-C
    construction can be verified without the discrete-event stack.
    """
    d = protocol.window
    omega = protocol.omega
    period = protocol.period
    if horizon is None:
        horizon = protocol.predicted_worst_case_latency() + period

    def hits(beacon_phase: int, window_phase: int) -> int | None:
        """First time a beacon of the device at ``beacon_phase`` overlaps
        the window of the device at ``window_phase``."""
        best: int | None = None
        t = 0
        while t < horizon:
            for j in range(protocol.k // 2):
                tx = t + beacon_phase + protocol.zeta + 2 * j * d
                if tx >= horizon:
                    break
                # window instances: [window_phase + n*period, +d)
                local = (tx - window_phase) % period
                # any-overlap: beacon [tx, tx+omega) vs window [0, d)
                if local < d or local + omega > period:
                    if best is None or tx < best:
                        best = tx
                    return best
            t += period
        return best

    f_to_e = hits(offset, 0)
    e_to_f = hits(0, offset)
    candidates = [x for x in (f_to_e, e_to_f) if x is not None]
    return min(candidates) if candidates else None
