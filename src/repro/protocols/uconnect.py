"""U-Connect (Kandhalu et al., IPSN 2010) -- the single-prime protocol.

With a prime ``p``, a device wakes in every ``p``-th slot (the "hello"
slots) and additionally for ``(p+1)/2`` consecutive slots at the start of
every ``p^2``-slot hyperperiod (the "listen burst").  The burst plus the
periodic slots guarantee discovery within ``p^2`` slots between devices
using the same ``p``, at a slot duty-cycle of ``(3p+1)/(2 p^2)`` --
asymptotically ``1.5/p``, better than Disco's ``2/p`` for the same
``p^2`` worst case.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sequences import NDProtocol
from .base import PairProtocol, ProtocolInfo, Role
from .disco import PRIMES
from .slotted import SlotPattern, SlotTiming

__all__ = ["UConnect", "uconnect_prime_for_duty_cycle"]

_PRIME_SET = frozenset(PRIMES)


def uconnect_prime_for_duty_cycle(slot_duty_cycle: float) -> int:
    """The prime whose U-Connect slot duty-cycle ``(3p+1)/(2p^2)`` best
    approximates the target."""
    if not 0 < slot_duty_cycle < 1:
        raise ValueError(f"slot_duty_cycle must be in (0,1), got {slot_duty_cycle}")
    best_p = PRIMES[0]
    best_err = abs((3 * best_p + 1) / (2 * best_p * best_p) - slot_duty_cycle)
    for p in PRIMES[1:]:
        err = abs((3 * p + 1) / (2 * p * p) - slot_duty_cycle)
        if err < best_err:
            best_p, best_err = p, err
        if (3 * p + 1) / (2 * p * p) < slot_duty_cycle / 4:
            break
    return best_p


@dataclass(frozen=True)
class UConnect(PairProtocol):
    """A configured U-Connect instance.

    Parameters
    ----------
    prime:
        The protocol prime ``p``; the hyperperiod is ``p^2`` slots.
    slot_length, omega, alpha:
        Slot length ``I`` (us), beacon duration (us), TX/RX power ratio.
    """

    prime: int
    slot_length: int = 10_000
    omega: int = 32
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.prime not in _PRIME_SET:
            raise ValueError(f"{self.prime} is not prime (or beyond the sieve limit)")

    def pattern(self) -> SlotPattern:
        """Active slots: every ``p``-th slot plus a burst of ``(p+1)/2``
        consecutive slots once per ``p^2`` slots."""
        p = self.prime
        total = p * p
        active = set(range(0, total, p))
        burst = (p + 1) // 2
        active.update(range(1, 1 + burst))
        return SlotPattern(active, total, name=f"uconnect-{p}")

    def timing(self) -> SlotTiming:
        """U-Connect transmits once per active slot."""
        return SlotTiming(self.slot_length, self.omega, two_beacons=False)

    def device(self, role: Role) -> NDProtocol:
        return self.pattern().to_protocol(self.timing(), self.alpha)

    def info(self) -> ProtocolInfo:
        return ProtocolInfo(
            name="U-Connect",
            family="slotted",
            symmetric=True,
            deterministic=True,
            parameters={
                "prime": self.prime,
                "slot_length": self.slot_length,
                "omega": self.omega,
            },
        )

    @property
    def slot_duty_cycle(self) -> float:
        """``(3p+1) / (2 p^2)`` active-slot fraction (approx; exact value
        comes from the pattern, which deduplicates burst/hello overlaps)."""
        return self.pattern().slot_duty_cycle

    def worst_case_slots(self) -> int:
        """U-Connect's guarantee: discovery within ``p^2`` slots."""
        return self.prime * self.prime

    def predicted_worst_case_latency(self) -> float:
        """Worst-case latency in microseconds."""
        return self.worst_case_slots() * self.slot_length
