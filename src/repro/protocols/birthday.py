"""Birthday protocols (McGlynn & Borbash, MobiHoc 2001) -- the
probabilistic baseline.

Each device independently makes every slot a transmit slot with
probability ``p_tx``, a listen slot with probability ``p_rx``, and sleeps
otherwise.  Discovery is never *guaranteed* (the protocol is not
deterministic), but the per-slot rendezvous probability
``p_hit = p_tx * p_rx + p_rx * p_tx`` gives geometric discovery latencies
that are excellent in the median and unbounded in the tail -- the classic
foil for the deterministic protocols the paper studies.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..core.sequences import (
    Beacon,
    BeaconSchedule,
    NDProtocol,
    ReceptionSchedule,
    ReceptionWindow,
)
from .base import PairProtocol, ProtocolInfo, Role

__all__ = ["Birthday"]


@dataclass(frozen=True)
class Birthday(PairProtocol):
    """A configured birthday protocol.

    Parameters
    ----------
    p_tx, p_rx:
        Per-slot transmit / listen probabilities (``p_tx + p_rx <= 1``).
    slot_length, omega, alpha:
        Slot length ``I`` (us), beacon duration (us), TX/RX power ratio.
    horizon_slots:
        Length of the sampled schedule; the schedule repeats after this
        many slots (long horizons approximate the i.i.d. process).
    seed:
        Seed for the slot lottery; the two roles derive distinct streams.
    """

    p_tx: float = 0.05
    p_rx: float = 0.05
    slot_length: int = 10_000
    omega: int = 32
    alpha: float = 1.0
    horizon_slots: int = 4096
    seed: int = 0

    def __post_init__(self) -> None:
        if not (0 <= self.p_tx <= 1 and 0 <= self.p_rx <= 1):
            raise ValueError("probabilities must be in [0, 1]")
        if self.p_tx + self.p_rx > 1:
            raise ValueError("p_tx + p_rx must not exceed 1")
        if self.p_tx == 0 and self.p_rx == 0:
            raise ValueError("at least one of p_tx, p_rx must be positive")

    def _sample(self, role: Role) -> tuple[list[int], list[int]]:
        rng = random.Random(f"{self.seed}/{role.value}")
        tx_slots: list[int] = []
        rx_slots: list[int] = []
        for s in range(self.horizon_slots):
            u = rng.random()
            if u < self.p_tx:
                tx_slots.append(s)
            elif u < self.p_tx + self.p_rx:
                rx_slots.append(s)
        return tx_slots, rx_slots

    def device(self, role: Role) -> NDProtocol:
        tx_slots, rx_slots = self._sample(role)
        period = self.horizon_slots * self.slot_length
        beacons = [Beacon(s * self.slot_length, self.omega) for s in tx_slots]
        windows = [
            ReceptionWindow(s * self.slot_length, self.slot_length)
            for s in rx_slots
        ]
        if not beacons:  # degenerate draw: force one beacon to keep schedules valid
            beacons = [Beacon(0, self.omega)]
        if not windows:
            windows = [ReceptionWindow(self.slot_length, self.slot_length)]
        return NDProtocol(
            beacons=BeaconSchedule(beacons, period),
            reception=ReceptionSchedule(windows, period),
            alpha=self.alpha,
            name=f"birthday(p_tx={self.p_tx}, p_rx={self.p_rx}, {role.value})",
        )

    def info(self) -> ProtocolInfo:
        return ProtocolInfo(
            name="Birthday",
            family="probabilistic",
            symmetric=False,  # each role draws its own slots
            deterministic=False,
            parameters={
                "p_tx": self.p_tx,
                "p_rx": self.p_rx,
                "slot_length": self.slot_length,
                "horizon_slots": self.horizon_slots,
                "seed": self.seed,
            },
        )

    # ------------------------------------------------------------------
    def per_slot_hit_probability(self) -> float:
        """Probability that a given aligned slot yields a discovery in at
        least one direction: ``2 p_tx p_rx`` (minus the both-at-once term,
        which cannot succeed on half-duplex radios)."""
        return 2 * self.p_tx * self.p_rx

    def expected_discovery_slots(self) -> float:
        """Mean of the geometric slots-to-discovery distribution."""
        p = self.per_slot_hit_probability()
        if p == 0:
            return math.inf
        return 1.0 / p

    def latency_quantile_slots(self, quantile: float) -> float:
        """Slots needed so discovery has probability >= ``quantile``."""
        if not 0 < quantile < 1:
            raise ValueError(f"quantile must be in (0,1), got {quantile}")
        p = self.per_slot_hit_probability()
        if p == 0:
            return math.inf
        return math.log(1 - quantile) / math.log(1 - p)

    def predicted_worst_case_latency(self) -> None:
        """Birthday protocols give no deterministic guarantee."""
        return None
