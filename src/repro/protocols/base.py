"""Common interface of the protocol zoo.

Every protocol in :mod:`repro.protocols` ultimately produces the paper's
primitive: a tuple of a beacon schedule and a reception-window schedule
per device (Definition 3.3).  Two families exist:

* **Slotted protocols** (Disco, U-Connect, Searchlight, Diffcodes):
  defined by an active-slot pattern on a slot grid; the mapping from slots
  to beacons/windows lives in :mod:`repro.protocols.slotted`.
* **Slotless / periodic-interval protocols** (BLE-like PI protocols, the
  paper-optimal schedules): defined directly as schedules.

:class:`PairProtocol` is the common handle the simulator, the analysis
layer and the benchmarks consume.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from enum import Enum

from ..core.sequences import NDProtocol

__all__ = ["Role", "PairProtocol", "ProtocolInfo"]


class Role(Enum):
    """Which of the two devices a schedule is for.

    Symmetric protocols return identical schedules for both roles;
    asymmetric ones (different duty-cycles, or advertiser/scanner splits)
    differ per role.
    """

    E = "E"
    F = "F"


@dataclass(frozen=True)
class ProtocolInfo:
    """Static facts about a configured protocol instance."""

    name: str
    family: str
    """One of ``"slotted"``, ``"pi"``, ``"optimal"``, ``"probabilistic"``."""
    symmetric: bool
    deterministic: bool
    parameters: dict
    """The protocol's own configuration knobs, for reporting."""


class PairProtocol(abc.ABC):
    """A configured neighbor-discovery protocol for a pair of devices."""

    @abc.abstractmethod
    def info(self) -> ProtocolInfo:
        """Static description of this configuration."""

    @abc.abstractmethod
    def device(self, role: Role) -> NDProtocol:
        """The ``(B_inf, C_inf)`` schedules run by the given device."""

    def duty_cycle(self, role: Role = Role.E) -> float:
        """Total duty-cycle ``eta`` of the given device."""
        return self.device(role).eta

    def channel_utilization(self, role: Role = Role.E) -> float:
        """Transmission duty-cycle ``beta`` of the given device."""
        return self.device(role).beta

    def predicted_worst_case_latency(self) -> float | None:
        """The protocol's own worst-case-latency claim in time units, or
        ``None`` if the protocol offers no deterministic guarantee."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        info = self.info()
        return f"{type(self).__name__}({info.parameters})"
