"""Diffcode schedules (Zheng et al., MobiHoc 2003 / TMC 2006).

Active-slot patterns built on perfect cyclic difference sets: with a
``(v, k, 1)`` difference set, any two slot-offset copies of the pattern
share an active slot within ``v`` slots while using only ``k ~ sqrt(v)``
active slots -- the optimal block design for asynchronous wake-up
schedules.  These are the only slotted protocols that meet the Table-1
optimum ``omega / (eta beta - alpha beta^2)`` exactly.

The flip side the paper emphasizes: perfect difference sets exist only
for ``v = q^2 + q + 1`` with ``q`` a prime power, so only a sparse set of
duty-cycles is realizable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sequences import NDProtocol
from .base import PairProtocol, ProtocolInfo, Role
from .difference_sets import PERFECT_DIFFERENCE_SETS, is_difference_set
from .slotted import SlotPattern, SlotTiming

__all__ = ["Diffcodes", "available_duty_cycles"]


def available_duty_cycles() -> dict[int, float]:
    """``q -> k/v`` slot duty-cycles realizable from the catalogue."""
    return {
        q: len(ds) / v for q, (ds, v) in sorted(PERFECT_DIFFERENCE_SETS.items())
    }


@dataclass(frozen=True)
class Diffcodes(PairProtocol):
    """A difference-set schedule for a catalogued prime power ``q``.

    Parameters
    ----------
    q:
        Prime power selecting the ``(q^2+q+1, q+1, 1)`` difference set.
    slot_length, omega, alpha:
        Slot length ``I`` (us), beacon duration (us), TX/RX power ratio.
    two_beacons:
        Send at both slot boundaries (the code-based designs of [6, 7]);
        the original diffcode design uses one beacon per slot.
    """

    q: int
    slot_length: int = 10_000
    omega: int = 32
    alpha: float = 1.0
    two_beacons: bool = False

    def __post_init__(self) -> None:
        if self.q not in PERFECT_DIFFERENCE_SETS:
            raise ValueError(
                f"no catalogued difference set for q={self.q}; "
                f"available: {sorted(PERFECT_DIFFERENCE_SETS)}"
            )

    def pattern(self) -> SlotPattern:
        """The difference-set active pattern (verified on construction)."""
        residues, v = PERFECT_DIFFERENCE_SETS[self.q]
        assert is_difference_set(residues, v), "catalogue entry corrupt"
        return SlotPattern(residues, v, name=f"diffcode-q{self.q}")

    def timing(self) -> SlotTiming:
        return SlotTiming(
            self.slot_length, self.omega, two_beacons=self.two_beacons
        )

    def device(self, role: Role) -> NDProtocol:
        return self.pattern().to_protocol(self.timing(), self.alpha)

    def info(self) -> ProtocolInfo:
        residues, v = PERFECT_DIFFERENCE_SETS[self.q]
        return ProtocolInfo(
            name="Diffcodes",
            family="slotted",
            symmetric=True,
            deterministic=True,
            parameters={
                "q": self.q,
                "v": v,
                "k": len(residues),
                "slot_length": self.slot_length,
                "omega": self.omega,
                "two_beacons": self.two_beacons,
            },
        )

    @property
    def slot_duty_cycle(self) -> float:
        """``(q+1) / (q^2+q+1)`` -- the optimal ``k/v ~ 1/sqrt(v)``."""
        residues, v = PERFECT_DIFFERENCE_SETS[self.q]
        return len(residues) / v

    def worst_case_slots(self) -> int:
        """Guarantee: overlap within one period of ``v`` slots."""
        _, v = PERFECT_DIFFERENCE_SETS[self.q]
        return v

    def predicted_worst_case_latency(self) -> float:
        """Worst-case latency in microseconds."""
        return self.worst_case_slots() * self.slot_length
