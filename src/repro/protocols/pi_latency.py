"""Exact worst-case discovery latency of PI configurations.

Reference [18] (Kindt et al., "Neighbor discovery latency in BLE-like
protocols", TMC 2018) gives a recursive scheme to compute the worst-case
latency of a ``(Ta, Ts, ds)`` periodic-interval configuration.  This
module reproduces those results by *direct construction* instead: the
beacon train (period ``Ta``) is unrolled against the scan schedule
(period ``Ts``) over their hyperperiod and the coverage map yields, for
every initial offset, the first successful beacon -- an exact,
assumption-free computation on the integer-microsecond grid.

The worst-case latency is reported per the paper's Definition 3.4:
measured from the moment the devices come into range, which precedes the
first beacon by up to one advertising interval; hence
``L = max_phi l*(phi) + Ta``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.coverage import CoverageMap
from ..core.sequences import BeaconSchedule, ReceptionSchedule

__all__ = [
    "pi_worst_case_latency",
    "pi_latency_profile",
    "PILatencyReport",
    "pi_is_deterministic",
]


@dataclass(frozen=True)
class PILatencyReport:
    """Exact latency characteristics of one PI configuration."""

    adv_interval: int
    scan_interval: int
    scan_window: int
    omega: int
    deterministic: bool
    """Whether every initial offset leads to discovery."""
    worst_case_us: int | None
    """Worst-case latency from range entry (``None`` if not deterministic)."""
    worst_packet_to_packet_us: int | None
    """Worst-case ``l*``: first beacon in range -> first received beacon."""
    mean_packet_to_packet_us: float | None
    """Offset-averaged ``l*`` for a uniform random initial offset."""
    beacons_needed: int
    """Beacons unrolled to decide determinism (hyperperiod horizon)."""


def _coverage_map(
    adv_interval: int, scan_interval: int, scan_window: int, omega: int
) -> CoverageMap:
    if adv_interval <= 0 or scan_interval <= 0 or scan_window <= 0 or omega <= 0:
        raise ValueError("all PI parameters must be positive")
    if scan_window > scan_interval:
        raise ValueError("scan_window must not exceed scan_interval")
    beacons = BeaconSchedule.uniform(n_beacons=1, gap=adv_interval, duration=omega)
    reception = ReceptionSchedule.single_window(
        duration=scan_window, period=scan_interval
    )
    return CoverageMap.from_schedules(beacons, reception)


def pi_is_deterministic(
    adv_interval: int, scan_interval: int, scan_window: int, omega: int = 32
) -> bool:
    """Whether the configuration guarantees discovery for every offset.

    PI configurations are *not* automatically deterministic: if ``Ta`` and
    ``Ts`` share an unfortunate rational relation (e.g. ``Ta == Ts`` with
    ``ds < Ts``), some offsets never meet a scan window -- the coupling
    problem BLE's advDelay jitter works around.
    """
    return _coverage_map(
        adv_interval, scan_interval, scan_window, omega
    ).is_deterministic()


def pi_worst_case_latency(
    adv_interval: int, scan_interval: int, scan_window: int, omega: int = 32
) -> int | None:
    """Exact worst-case latency (us) from range entry, or ``None`` if the
    configuration is not deterministic."""
    cover = _coverage_map(adv_interval, scan_interval, scan_window, omega)
    worst = cover.worst_packet_latency()
    if worst is None:
        return None
    return worst + adv_interval


def pi_latency_profile(
    adv_interval: int, scan_interval: int, scan_window: int, omega: int = 32
) -> PILatencyReport:
    """Full exact latency report for one configuration."""
    cover = _coverage_map(adv_interval, scan_interval, scan_window, omega)
    worst_l_star = cover.worst_packet_latency()
    return PILatencyReport(
        adv_interval=adv_interval,
        scan_interval=scan_interval,
        scan_window=scan_window,
        omega=omega,
        deterministic=cover.is_deterministic(),
        worst_case_us=None if worst_l_star is None else worst_l_star + adv_interval,
        worst_packet_to_packet_us=worst_l_star,
        mean_packet_to_packet_us=cover.mean_packet_latency(),
        beacons_needed=cover.n_beacons,
    )


def hyperperiod_beacons(adv_interval: int, scan_interval: int) -> int:
    """Beacons in one hyperperiod ``lcm(Ta, Ts)`` -- the exactness horizon."""
    return math.lcm(adv_interval, scan_interval) // adv_interval
