"""Cyclic difference sets -- the combinatorial core of optimal slotted ND.

A ``(v, k, lambda)`` cyclic difference set is a set ``D`` of ``k``
residues modulo ``v`` such that every non-zero residue arises exactly
``lambda`` times as a difference ``d_i - d_j mod v``.  With
``lambda = 1`` (a *perfect* difference set, existing for ``v = q^2+q+1``,
``k = q+1``, ``q`` a prime power -- Singer's theorem), an active-slot
pattern built on ``D`` guarantees a slot overlap for every shift using
the minimum possible ``k = ~sqrt(v)`` active slots: exactly the [16, 17]
bound the paper's Section 6 starts from.

Provides a verified catalogue of perfect difference sets (used by the
Diffcodes protocol), a Singer-construction generator, and a brute-force
searcher for small parameters (used by tests and for duty-cycles not in
the catalogue).
"""

from __future__ import annotations

import itertools
from collections import Counter

__all__ = [
    "is_difference_set",
    "difference_multiset",
    "singer_difference_set",
    "PERFECT_DIFFERENCE_SETS",
    "find_difference_set",
    "relaxed_cover_set",
]


def difference_multiset(residues: set[int] | frozenset[int], modulus: int) -> Counter:
    """All pairwise differences ``a - b mod v`` for ``a != b``."""
    counts: Counter = Counter()
    for a in residues:
        for b in residues:
            if a != b:
                counts[(a - b) % modulus] += 1
    return counts


def is_difference_set(
    residues: set[int] | frozenset[int], modulus: int, lam: int = 1
) -> bool:
    """True iff ``residues`` is a ``(v, k, lam)`` cyclic difference set."""
    counts = difference_multiset(residues, modulus)
    return all(counts.get(d, 0) == lam for d in range(1, modulus))


def _is_prime_power(n: int) -> tuple[int, int] | None:
    """Return ``(p, e)`` if ``n == p**e`` for a prime ``p``, else ``None``."""
    if n < 2:
        return None
    for p in range(2, n + 1):
        if p * p > n and n > 1:
            return (n, 1)  # n itself is prime
        if n % p == 0:
            e = 0
            m = n
            while m % p == 0:
                m //= p
                e += 1
            return (p, e) if m == 1 else None
    return None  # pragma: no cover


def singer_difference_set(q: int) -> tuple[frozenset[int], int]:
    """Construct a perfect difference set with ``v = q^2 + q + 1`` and
    ``k = q + 1`` for a prime power ``q`` (Singer difference sets).

    Uses a brute-force completion that is exact and fast for the ``q``
    relevant to ND duty-cycles (``q <= ~32``): starting from ``{0, 1}``
    it extends greedily with backtracking until every difference appears
    exactly once.
    """
    if _is_prime_power(q) is None:
        raise ValueError(f"q must be a prime power, got {q}")
    v = q * q + q + 1
    k = q + 1

    def extend(current: list[int], used: set[int]) -> list[int] | None:
        if len(current) == k:
            return current
        start = current[-1] + 1
        for candidate in range(start, v):
            new_diffs = set()
            ok = True
            for existing in current:
                d1 = (candidate - existing) % v
                d2 = (existing - candidate) % v
                if d1 in used or d2 in used or d1 in new_diffs or d2 in new_diffs:
                    ok = False
                    break
                new_diffs.add(d1)
                new_diffs.add(d2)
            if not ok:
                continue
            result = extend(current + [candidate], used | new_diffs)
            if result is not None:
                return result
        return None

    solution = extend([0, 1], {1, v - 1})
    if solution is None:  # pragma: no cover - Singer guarantees existence
        raise RuntimeError(f"no perfect difference set found for q={q}")
    return frozenset(solution), v


# Catalogue of perfect difference sets (v = q^2+q+1, k = q+1), verified by
# the test suite via is_difference_set.  Keys are q.
PERFECT_DIFFERENCE_SETS: dict[int, tuple[frozenset[int], int]] = {
    2: (frozenset({0, 1, 3}), 7),
    3: (frozenset({0, 1, 3, 9}), 13),
    4: (frozenset({0, 1, 4, 14, 16}), 21),
    5: (frozenset({0, 1, 3, 8, 12, 18}), 31),
    7: (frozenset({0, 1, 3, 13, 32, 36, 43, 52}), 57),
    8: (frozenset({0, 1, 3, 7, 15, 31, 36, 54, 63}), 73),
    9: (frozenset({0, 1, 3, 9, 27, 49, 56, 61, 77, 81}), 91),
}
"""``q -> (difference set, v)`` for the duty-cycles ``~1/(q+1)``..."""


def find_difference_set(modulus: int, size: int, lam: int = 1) -> frozenset[int] | None:
    """Exhaustively search for a ``(modulus, size, lam)`` difference set.

    Exponential; intended for small parameters in tests and for validating
    catalogue entries independently.  Fixes ``0`` in the set (difference
    sets are translation-invariant) to prune the search.
    """
    if size < 2 or modulus < size:
        return None
    for rest in itertools.combinations(range(1, modulus), size - 1):
        candidate = frozenset((0,) + rest)
        if is_difference_set(candidate, modulus, lam):
            return candidate
    return None


def relaxed_cover_set(modulus: int, size: int) -> frozenset[int] | None:
    """Greedy search for a *covering* set: every non-zero difference occurs
    at least once (lambda >= 1).

    Perfect difference sets exist only for special ``v``; protocols for
    other duty-cycles (quorum systems, Disco, ...) use covering sets with
    some redundancy.  Returns ``None`` if the greedy heuristic fails at
    this size (``size*(size-1) >= modulus-1`` is necessary).
    """
    if size * (size - 1) < modulus - 1:
        return None
    chosen = [0]
    covered: set[int] = set()
    while len(chosen) < size:
        best_candidate = None
        best_gain = -1
        for candidate in range(1, modulus):
            if candidate in chosen:
                continue
            gain = 0
            for existing in chosen:
                if (candidate - existing) % modulus not in covered:
                    gain += 1
                if (existing - candidate) % modulus not in covered:
                    gain += 1
            if gain > best_gain:
                best_gain = gain
                best_candidate = candidate
        assert best_candidate is not None
        for existing in chosen:
            covered.add((best_candidate - existing) % modulus)
            covered.add((existing - best_candidate) % modulus)
        chosen.append(best_candidate)
    if len(covered) == modulus - 1:
        return frozenset(chosen)
    return None
