"""Searchlight (Bakht et al., MobiCom 2012) -- anchor/probe slotted ND.

Time is organized in periods of ``t`` slots.  Each period contains a
fixed *anchor* slot (slot 0) and one *probe* slot whose in-period position
sweeps ``1, 2, ..., ceil(t/2)`` across successive periods.  Two devices
with period ``t`` have a constant anchor-to-anchor slot offset in
``[0, t)``; since offsets ``> t/2`` are mirrored by the other device's
probe, the sweeping probe is guaranteed to hit the remote anchor within
``ceil(t/2)`` periods, i.e. ``t * ceil(t/2)`` slots.

The *striped* variant exploits slot-boundary overlap so probes only need
to sweep with stride-1 over half-open positions; the classic worst case
``t * ceil(t/2)`` slots at duty-cycle ``2/t`` is what the paper's Table 1
prices at ``2 omega / (eta beta - alpha beta^2)``.

The probe sweep makes the active pattern's period ``t * ceil(t/2)``
slots, unlike Disco/U-Connect whose pattern period equals the guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.sequences import NDProtocol
from .base import PairProtocol, ProtocolInfo, Role
from .slotted import SlotPattern, SlotTiming

__all__ = ["Searchlight"]


@dataclass(frozen=True)
class Searchlight(PairProtocol):
    """A configured Searchlight instance.

    Parameters
    ----------
    period_slots:
        ``t``, the anchor period in slots; slot duty-cycle is ``2/t``.
    slot_length, omega, alpha:
        Slot length ``I`` (us), beacon duration (us), TX/RX power ratio.
    striped:
        Use the striped probe sweep (``ceil(t/2)`` positions); the
        non-striped original sweeps all ``t-1`` non-anchor positions.
    """

    period_slots: int
    slot_length: int = 10_000
    omega: int = 32
    alpha: float = 1.0
    striped: bool = True

    def __post_init__(self) -> None:
        if self.period_slots < 2:
            raise ValueError(f"period_slots must be >= 2, got {self.period_slots}")

    @property
    def probe_positions(self) -> int:
        """Number of distinct probe positions the sweep visits."""
        if self.striped:
            return math.ceil(self.period_slots / 2)
        return self.period_slots - 1

    def pattern(self) -> SlotPattern:
        """Active slots over the full sweep hyperperiod.

        Period ``n`` (0-based) has its anchor at slot ``n*t`` and its
        probe at slot ``n*t + probe(n)`` with
        ``probe(n) = 1 + (n mod probe_positions)``.
        """
        t = self.period_slots
        sweep = self.probe_positions
        total = t * sweep
        active = set()
        for n in range(sweep):
            base = n * t
            active.add(base)  # anchor
            active.add(base + 1 + (n % sweep))  # probe
        return SlotPattern(
            active,
            total,
            name=f"searchlight{'-s' if self.striped else ''}-{t}",
        )

    def timing(self) -> SlotTiming:
        """Searchlight sends beacons at both slot boundaries (the striped
        overlap trick needs the trailing beacon)."""
        return SlotTiming(self.slot_length, self.omega, two_beacons=True)

    def device(self, role: Role) -> NDProtocol:
        return self.pattern().to_protocol(self.timing(), self.alpha)

    def info(self) -> ProtocolInfo:
        return ProtocolInfo(
            name="Searchlight-S" if self.striped else "Searchlight",
            family="slotted",
            symmetric=True,
            deterministic=True,
            parameters={
                "period_slots": self.period_slots,
                "slot_length": self.slot_length,
                "omega": self.omega,
                "striped": self.striped,
            },
        )

    @property
    def slot_duty_cycle(self) -> float:
        """``2 / t`` -- anchor plus probe per period."""
        return 2.0 / self.period_slots

    def worst_case_slots(self) -> int:
        """Guarantee: the probe meets the remote anchor within the full
        sweep, ``t * probe_positions`` slots."""
        return self.period_slots * self.probe_positions

    def predicted_worst_case_latency(self) -> float:
        """Worst-case latency in microseconds."""
        return self.worst_case_slots() * self.slot_length
