"""Bluetooth Low Energy advertising/scanning parameter catalogue.

The PI protocols of :mod:`repro.protocols.ble` accept arbitrary
``(Ta, Ts, ds)``; actual BLE constrains them (Bluetooth Core 5.0,
Vol 6 Part B / Vol 2 Part E):

* advertising interval: 20 ms .. 10.24 s in 0.625 ms steps, plus a
  uniform random ``advDelay`` of 0..10 ms per event;
* scan interval/window: 2.5 ms .. 10.24 s in 0.625 ms steps, with
  ``window <= interval``;
* an ADV_IND packet at 1 Mbps is ~376 us on air (we default ``omega``
  accordingly rather than the package-wide 32 us).

This module validates configurations against the spec grid and ships
the de-facto standard profiles (iBeacon, Eddystone, Android/iOS scan
modes) so the examples and tests can evaluate *realistic* deployments
against the paper's bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ble import PeriodicInterval

__all__ = [
    "BLE_TIME_GRID_US",
    "ADV_DELAY_MAX_US",
    "ADV_PACKET_US",
    "validate_ble_config",
    "ble_config",
    "STANDARD_PROFILES",
]

BLE_TIME_GRID_US = 625
"""All BLE timing parameters are multiples of 0.625 ms."""

ADV_DELAY_MAX_US = 10_000
"""advDelay: uniform random 0..10 ms added to every advertising event."""

ADV_PACKET_US = 376
"""ADV_IND with a 31-byte payload at 1 Mbps: ~376 us of air time."""

_ADV_INTERVAL_MIN = 20_000
_ADV_INTERVAL_MAX = 10_240_000
_SCAN_MIN = 2_500
_SCAN_MAX = 10_240_000


def validate_ble_config(
    adv_interval: int, scan_interval: int, scan_window: int
) -> list[str]:
    """Return the list of spec violations (empty = valid)."""
    problems: list[str] = []
    for name, value in (
        ("adv_interval", adv_interval),
        ("scan_interval", scan_interval),
        ("scan_window", scan_window),
    ):
        if value % BLE_TIME_GRID_US != 0:
            problems.append(
                f"{name}={value} us is not a multiple of 0.625 ms"
            )
    if not _ADV_INTERVAL_MIN <= adv_interval <= _ADV_INTERVAL_MAX:
        problems.append(
            f"adv_interval={adv_interval} outside [20 ms, 10.24 s]"
        )
    if not _SCAN_MIN <= scan_interval <= _SCAN_MAX:
        problems.append(
            f"scan_interval={scan_interval} outside [2.5 ms, 10.24 s]"
        )
    if not _SCAN_MIN <= scan_window <= scan_interval:
        problems.append(
            f"scan_window={scan_window} outside [2.5 ms, scan_interval]"
        )
    return problems


def ble_config(
    adv_interval: int,
    scan_interval: int,
    scan_window: int,
    bidirectional: bool = True,
    with_adv_delay: bool = True,
) -> PeriodicInterval:
    """A spec-validated BLE configuration as a :class:`PeriodicInterval`.

    Raises ``ValueError`` listing every violation if the parameters are
    off the BLE grid.
    """
    problems = validate_ble_config(adv_interval, scan_interval, scan_window)
    if problems:
        raise ValueError("; ".join(problems))
    return PeriodicInterval(
        adv_interval=adv_interval,
        scan_interval=scan_interval,
        scan_window=scan_window,
        omega=ADV_PACKET_US,
        bidirectional=bidirectional,
        advertising_jitter=ADV_DELAY_MAX_US if with_adv_delay else 0,
    )


@dataclass(frozen=True)
class _Profile:
    """A named real-world parameter set."""

    name: str
    adv_interval: int
    scan_interval: int
    scan_window: int
    source: str

    def config(self, with_adv_delay: bool = True) -> PeriodicInterval:
        """Instantiate the profile."""
        return ble_config(
            self.adv_interval,
            self.scan_interval,
            self.scan_window,
            with_adv_delay=with_adv_delay,
        )


STANDARD_PROFILES: dict[str, _Profile] = {
    "ibeacon": _Profile(
        "ibeacon", 100_000, 1_024_375 - 1_024_375 % 625, 11_250,
        "Apple iBeacon nominal 100 ms advertising",
    ),
    "eddystone": _Profile(
        "eddystone", 1_000_000, 1_280_000, 11_250,
        "Google Eddystone default 1 s advertising",
    ),
    "android-low-power": _Profile(
        "android-low-power", 1_000_000, 5_120_000, 512_500,
        "Android SCAN_MODE_LOW_POWER: 0.5125 s window / 5.12 s interval",
    ),
    "android-balanced": _Profile(
        "android-balanced", 250_000, 4_096_250 - 4_096_250 % 625, 1_023_750,
        "Android SCAN_MODE_BALANCED: 1.024 s window / 4.096 s interval",
    ),
    "fast-connect": _Profile(
        "fast-connect", 20_000, 30_000, 30_000,
        "Connection-setup burst: 20 ms advertising, continuous scan",
    ),
}
"""Named real-world BLE parameter sets (intervals on the 0.625 ms grid)."""
