"""Nihao (Qiu et al., INFOCOM 2016) -- "talk more, listen less".

Where slotted designs couple one or two beacons to every listening slot,
Nihao inverts the split: a device transmits a cheap beacon in *every*
slot of an ``n``-slot frame but listens only in the first slot.  Since a
beacon costs ``omega`` while listening costs a whole slot, talking is
far cheaper than listening and the asymmetric split approaches the
paper's optimal ``beta = eta / 2 alpha`` much better than Disco-style
designs -- the reason the paper's Section 6 finds some "recent
protocols" near the Pareto front.

In the package's schedule terms this is a periodic-interval protocol:
beacons every ``I``, one reception window of ``I`` per frame ``n * I``.
Discovery within one frame is guaranteed whenever the remote beacon
train (gap ``I``) meets the window (length ``I``) -- which it does for
every alignment, giving a worst case of one frame, ``n * I``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sequences import (
    BeaconSchedule,
    NDProtocol,
    ReceptionSchedule,
)
from .base import PairProtocol, ProtocolInfo, Role

__all__ = ["Nihao"]


@dataclass(frozen=True)
class Nihao(PairProtocol):
    """A configured symmetric Nihao instance.

    Parameters
    ----------
    n:
        Frame length in slots; duty-cycle ``~ 1/n`` for ``I >> omega``.
    slot_length:
        ``I`` in us; also the listening-window duration.
    omega, alpha:
        Beacon duration (us) and TX/RX power ratio.
    """

    n: int
    slot_length: int = 10_000
    omega: int = 32
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"n must be >= 2, got {self.n}")
        if self.slot_length <= 2 * self.omega:
            raise ValueError(
                f"slot_length must exceed 2*omega "
                f"({self.slot_length} <= {2 * self.omega})"
            )

    def device(self, role: Role) -> NDProtocol:
        frame = self.n * self.slot_length
        # One beacon per slot; the first slot's beacon is placed at the
        # slot end so the window [0, I) stays mostly unobstructed.
        times = [
            self.slot_length - self.omega if s == 0 else s * self.slot_length
            for s in range(self.n)
        ]
        beacons = BeaconSchedule.from_times(times, frame, self.omega)
        reception = ReceptionSchedule.single_window(
            duration=self.slot_length, period=frame
        )
        return NDProtocol(
            beacons=beacons,
            reception=reception,
            alpha=self.alpha,
            name=f"nihao(n={self.n}, I={self.slot_length})",
        )

    def info(self) -> ProtocolInfo:
        return ProtocolInfo(
            name="Nihao",
            family="pi",
            symmetric=True,
            deterministic=True,
            parameters={
                "n": self.n,
                "slot_length": self.slot_length,
                "omega": self.omega,
            },
        )

    @property
    def beta(self) -> float:
        """``n`` beacons per frame: ``beta = omega / I``."""
        return self.omega / self.slot_length

    @property
    def gamma(self) -> float:
        """One slot of listening per frame: ``gamma = 1 / n``."""
        return 1.0 / self.n

    def predicted_worst_case_latency(self) -> int:
        """One frame: the remote beacon train has gap ``I`` and the
        window length is ``I``, so some beacon lands in the first window
        occurrence after range entry."""
        return self.n * self.slot_length

    def worst_case_slots(self) -> int:
        """``n`` slots -- linear, not quadratic, in the frame length
        (possible because talking is decoupled from listening)."""
        return self.n
