"""BLE-like periodic-interval (PI) protocols (Section 1 and [18]).

The protocols "frequently used in practice" that the paper contrasts with
slotted designs: an advertiser transmits one beacon every *advertising
interval* ``Ta``; a scanner opens a window of ``ds`` every *scan
interval* ``Ts``.  The three parameters are free -- the paper's point is
that nobody knew how well such protocols could do until its bounds.

:class:`PeriodicInterval` models one configurable device pair (advertiser
role E, scanner role F, or both roles on both devices for bidirectional
configs).  Actual BLE additionally applies a random ``advDelay`` of
0-10 ms per advertising event (Bluetooth 5.0, Vol 6 Part B 4.4.2.2.1) to
decorrelate collisions -- modeled in the simulator via
``advertising_jitter``; the deterministic analysis uses ``jitter = 0``.

Worst-case latencies of PI configurations are computed *exactly* with the
package's coverage-map machinery in :mod:`repro.protocols.pi_latency`,
reproducing the results of the recursive scheme in [18] by direct
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bounds import optimal_split
from ..core.sequences import (
    BeaconSchedule,
    NDProtocol,
    ReceptionSchedule,
)
from .base import PairProtocol, ProtocolInfo, Role

__all__ = ["PeriodicInterval", "ble_parametrization_for_duty_cycle"]


@dataclass(frozen=True)
class PeriodicInterval(PairProtocol):
    """A PI protocol configuration ``(Ta, Ts, ds)``.

    Parameters
    ----------
    adv_interval:
        ``Ta`` in us -- one beacon per advertising interval.
    scan_interval:
        ``Ts`` in us -- one scan window per scan interval.
    scan_window:
        ``ds`` in us -- the duration of each scan window.
    omega:
        Beacon duration in us.
    bidirectional:
        If True both devices advertise *and* scan (the BLE "undirected
        connectable" pattern); if False, role E only advertises and role
        F only scans (advertiser/observer).
    advertising_jitter:
        Upper bound of the uniform random delay added to each advertising
        event by the simulator (BLE's ``advDelay``, <= 10 ms).  Zero keeps
        the schedule strictly periodic for deterministic analysis.
    alpha:
        TX/RX power ratio.
    """

    adv_interval: int
    scan_interval: int
    scan_window: int
    omega: int = 32
    bidirectional: bool = False
    advertising_jitter: int = 0
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.adv_interval <= self.omega:
            raise ValueError("adv_interval must exceed the beacon duration")
        if not 0 < self.scan_window <= self.scan_interval:
            raise ValueError("need 0 < scan_window <= scan_interval")
        if self.advertising_jitter < 0:
            raise ValueError("advertising_jitter must be non-negative")

    # ------------------------------------------------------------------
    def advertiser_schedule(self) -> BeaconSchedule:
        """One beacon per ``Ta`` (jitter is applied by the simulator, not
        encoded in the nominal schedule)."""
        return BeaconSchedule.uniform(
            n_beacons=1, gap=self.adv_interval, duration=self.omega
        )

    def scanner_schedule(self) -> ReceptionSchedule:
        """One window of ``ds`` per ``Ts``."""
        return ReceptionSchedule.single_window(
            duration=self.scan_window, period=self.scan_interval
        )

    def device(self, role: Role) -> NDProtocol:
        if self.bidirectional:
            return NDProtocol(
                beacons=self.advertiser_schedule(),
                reception=self.scanner_schedule(),
                alpha=self.alpha,
                name=f"pi-bidir(Ta={self.adv_interval}, Ts={self.scan_interval}, ds={self.scan_window})",
            )
        if role is Role.E:
            return NDProtocol(
                beacons=self.advertiser_schedule(),
                reception=None,
                alpha=self.alpha,
                name=f"pi-advertiser(Ta={self.adv_interval})",
            )
        return NDProtocol(
            beacons=None,
            reception=self.scanner_schedule(),
            alpha=self.alpha,
            name=f"pi-scanner(Ts={self.scan_interval}, ds={self.scan_window})",
        )

    def info(self) -> ProtocolInfo:
        return ProtocolInfo(
            name="PeriodicInterval",
            family="pi",
            symmetric=self.bidirectional,
            deterministic=self.advertising_jitter == 0,
            parameters={
                "adv_interval": self.adv_interval,
                "scan_interval": self.scan_interval,
                "scan_window": self.scan_window,
                "omega": self.omega,
                "bidirectional": self.bidirectional,
                "advertising_jitter": self.advertising_jitter,
            },
        )

    # ------------------------------------------------------------------
    @property
    def beta(self) -> float:
        """Advertiser channel utilization ``omega / Ta``."""
        return self.omega / self.adv_interval

    @property
    def gamma(self) -> float:
        """Scanner reception duty-cycle ``ds / Ts``."""
        return self.scan_window / self.scan_interval

    def predicted_worst_case_latency(self) -> float | None:
        """Exact worst-case latency (us) from the coverage map, or ``None``
        for non-deterministic (jittered) configurations."""
        if self.advertising_jitter > 0:
            return None
        from .pi_latency import pi_worst_case_latency  # deferred: avoids cycle

        return pi_worst_case_latency(
            self.adv_interval, self.scan_interval, self.scan_window, self.omega
        )


def ble_parametrization_for_duty_cycle(
    eta: float, omega: int = 32, alpha: float = 1.0, window: int | None = None
) -> PeriodicInterval:
    """A near-optimal PI parametrization for a duty-cycle budget, in the
    spirit of the schemes of [13, 14]: split ``eta`` per Theorem 5.5
    (``beta = eta/2 alpha``) and pick ``(Ta, Ts, ds)`` so the beacon train
    tiles the scan windows (``Ta = n * ds`` with ``n`` coprime to
    ``Ts/ds``).

    Returns a bidirectional configuration; its exact worst-case latency is
    available via :meth:`PeriodicInterval.predicted_worst_case_latency`
    and sits within the duty-cycle quantization of the Theorem 5.5 bound.
    """
    from ..core.optimal import plan_unidirectional  # deferred: avoids cycle

    split = optimal_split(eta, alpha)
    design = plan_unidirectional(omega, split.beta, split.gamma, window)
    return PeriodicInterval(
        adv_interval=design.beacons.period,
        scan_interval=design.reception.period,
        scan_window=design.reception.windows[0].duration,
        omega=omega,
        bidirectional=True,
        alpha=alpha,
    )
