"""The paper-optimal slotless protocol, packaged for the protocol zoo.

Wraps :mod:`repro.core.optimal`'s verified constructions in the
:class:`~repro.protocols.base.PairProtocol` interface so the optimal
schedules can be simulated and benchmarked side by side with Disco,
Searchlight & co.  This corresponds to the Griassdi/BLEnd-style slotless
designs the paper identifies as spanning "almost the entire Pareto
front": periodic beacon trains whose gap tiles the remote scan schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bounds import asymmetric_bound, symmetric_bound
from ..core.optimal import (
    OptimalDesign,
    synthesize_asymmetric,
    synthesize_symmetric,
)
from ..core.sequences import NDProtocol
from .base import PairProtocol, ProtocolInfo, Role

__all__ = ["OptimalSlotless", "OptimalAsymmetric"]


@dataclass(frozen=True)
class OptimalSlotless(PairProtocol):
    """The bound-attaining symmetric protocol for a duty-cycle budget.

    Both devices run identical schedules: beacon gap ``lambda = omega /
    beta`` with ``beta = eta / 2 alpha``, one scan window per ``T_C`` with
    ``gamma = eta / 2``.  Worst-case one-way latency equals Theorem 5.4 at
    the achieved duty-cycles (duty-cycle quantization of the integer grid
    means the *achieved* ``eta`` can differ slightly from the request; all
    reporting uses achieved values).
    """

    eta: float
    omega: int = 32
    alpha: float = 1.0
    window: int | None = None

    def _build(self) -> tuple[NDProtocol, OptimalDesign]:
        return synthesize_symmetric(self.omega, self.eta, self.alpha, self.window)

    def device(self, role: Role) -> NDProtocol:
        protocol, _ = self._build()
        return protocol

    def design(self) -> OptimalDesign:
        """The verified underlying unidirectional design."""
        _, design = self._build()
        return design

    def info(self) -> ProtocolInfo:
        design = self.design()
        return ProtocolInfo(
            name="Optimal-Slotless",
            family="optimal",
            symmetric=True,
            deterministic=design.deterministic,
            parameters={
                "eta": self.eta,
                "omega": self.omega,
                "alpha": self.alpha,
                "achieved_beta": design.beta,
                "achieved_gamma": design.gamma,
            },
        )

    def predicted_worst_case_latency(self) -> float:
        """``M * lambda`` of the verified design (one-way; mutual discovery
        is bounded by the same value, Section 5.2.1)."""
        return self.design().worst_case_latency

    def bound_at_achieved_duty_cycle(self) -> float:
        """Theorem 5.5 evaluated at the achieved ``eta`` for gap reporting."""
        protocol, _ = self._build()
        return symmetric_bound(self.omega, protocol.eta, self.alpha)


@dataclass(frozen=True)
class OptimalAsymmetric(PairProtocol):
    """The bound-attaining asymmetric pair (Theorem 5.7).

    Device E runs duty-cycle ``eta_e``, device F ``eta_f``; each splits
    its own budget optimally and each direction independently attains the
    unidirectional bound, so the two-way latency matches Equation 14 up to
    integer-grid quantization.
    """

    eta_e: float
    eta_f: float
    omega: int = 32
    alpha: float = 1.0

    def _build(self):
        return synthesize_asymmetric(
            self.omega, self.eta_e, self.eta_f, self.alpha
        )

    def device(self, role: Role) -> NDProtocol:
        protocol_e, protocol_f, _, _ = self._build()
        return protocol_e if role is Role.E else protocol_f

    def designs(self) -> tuple[OptimalDesign, OptimalDesign]:
        """``(design_EF, design_FE)``: E discovered by F, F discovered by E."""
        _, _, design_ef, design_fe = self._build()
        return design_ef, design_fe

    def info(self) -> ProtocolInfo:
        design_ef, design_fe = self.designs()
        return ProtocolInfo(
            name="Optimal-Asymmetric",
            family="optimal",
            symmetric=False,
            deterministic=design_ef.deterministic and design_fe.deterministic,
            parameters={
                "eta_e": self.eta_e,
                "eta_f": self.eta_f,
                "omega": self.omega,
                "alpha": self.alpha,
            },
        )

    def predicted_worst_case_latency(self) -> float:
        """Two-way worst case: the slower of the two directions."""
        design_ef, design_fe = self.designs()
        return max(design_ef.worst_case_latency, design_fe.worst_case_latency)

    def bound_at_achieved_duty_cycle(self) -> float:
        """Theorem 5.7 at the achieved duty-cycles."""
        protocol_e, protocol_f, _, _ = self._build()
        return asymmetric_bound(
            self.omega, protocol_e.eta, protocol_f.eta, self.alpha
        )
