"""Protocol zoo: the prior protocols the paper compares against plus the
paper-optimal constructions, all behind one :class:`PairProtocol` API.

=====================  ==========  =====================================
Protocol               Family      Guarantee
=====================  ==========  =====================================
:class:`Disco`         slotted     ``p1 * p2`` slots
:class:`UConnect`      slotted     ``p^2`` slots
:class:`Searchlight`   slotted     ``t * ceil(t/2)`` slots (striped)
:class:`Diffcodes`     slotted     ``v = q^2+q+1`` slots (optimal slotted)
:class:`Birthday`      prob.       none (geometric tail)
:class:`PeriodicInterval`  pi      exact via coverage map
:class:`OptimalSlotless`   optimal Theorem 5.4/5.5 attaining
:class:`OptimalAsymmetric` optimal Theorem 5.7 attaining
:class:`CorrelatedOneWay`  optimal Theorem C.1 attaining
=====================  ==========  =====================================
"""

from .base import PairProtocol, ProtocolInfo, Role
from .birthday import Birthday
from .ble import ble_parametrization_for_duty_cycle, PeriodicInterval
from .ble_modes import ble_config, STANDARD_PROFILES, validate_ble_config
from .correlated import CorrelatedOneWay, one_way_discovery_time
from .diffcodes import available_duty_cycles, Diffcodes
from .difference_sets import (
    difference_multiset,
    find_difference_set,
    is_difference_set,
    PERFECT_DIFFERENCE_SETS,
    relaxed_cover_set,
    singer_difference_set,
)
from .disco import Disco, disco_primes_for_duty_cycle, PRIMES
from .optimal_slotless import OptimalAsymmetric, OptimalSlotless
from .nihao import Nihao
from .quorum import GridQuorum
from .pi_latency import (
    pi_is_deterministic,
    pi_latency_profile,
    PILatencyReport,
    pi_worst_case_latency,
)
from .registry import (
    build_registered_pair,
    canonical_pair,
    pair_kinds,
    pair_schema,
    PairSchema,
    register_pair_schema,
)
from .searchlight import Searchlight
from .slotted import SlotPattern, SlotTiming
from .uconnect import UConnect, uconnect_prime_for_duty_cycle

__all__ = [
    "PairProtocol",
    "PairSchema",
    "ProtocolInfo",
    "Role",
    "SlotPattern",
    "SlotTiming",
    # protocols
    "Birthday",
    "CorrelatedOneWay",
    "Diffcodes",
    "Disco",
    "GridQuorum",
    "Nihao",
    "OptimalAsymmetric",
    "OptimalSlotless",
    "PeriodicInterval",
    "Searchlight",
    "UConnect",
    # registry
    "build_registered_pair",
    "canonical_pair",
    "pair_kinds",
    "pair_schema",
    "register_pair_schema",
    # helpers
    "PERFECT_DIFFERENCE_SETS",
    "PILatencyReport",
    "PRIMES",
    "available_duty_cycles",
    "ble_config",
    "ble_parametrization_for_duty_cycle",
    "STANDARD_PROFILES",
    "validate_ble_config",
    "difference_multiset",
    "disco_primes_for_duty_cycle",
    "find_difference_set",
    "is_difference_set",
    "one_way_discovery_time",
    "pi_is_deterministic",
    "pi_latency_profile",
    "pi_worst_case_latency",
    "relaxed_cover_set",
    "singer_difference_set",
    "uconnect_prime_for_duty_cycle",
]
