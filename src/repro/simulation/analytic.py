"""Exact pairwise discovery computation by schedule arithmetic.

For a *pair* of devices with known periodic schedules and no collisions,
discovery times are a deterministic function of the initial phase offset,
so they can be computed exactly -- no event loop, no sampling error.
This is the workhorse behind every bound-validation experiment: unroll
the transmitter's beacons over a horizon, intersect each with the
receiver's effective listening set (reception windows minus the
receiver's own half-duplex blocking), and report the first success.

Three reception models bracket the physics (Section 3.2 / Appendix A.3):

* ``POINT`` -- the paper's idealization: a beacon is a point event at its
  start time; received iff that instant lies in a window.  Coverage per
  window is ``d``; all bounds are stated in this model.
* ``ANY_OVERLAP`` -- received iff any part of the ``omega``-long packet
  overlaps a window (optimistic; coverage ``d + omega``).
* ``CONTAINMENT`` -- received iff the whole packet fits inside a window
  (what real radios need; coverage ``d - omega``, Appendix A.3).

For every configuration: ``L(ANY_OVERLAP) <= L(POINT) <= L(CONTAINMENT)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from ..core.sequences import BeaconSchedule, NDProtocol, ReceptionSchedule

__all__ = [
    "ReceptionModel",
    "first_discovery",
    "mutual_discovery_times",
    "DiscoveryOutcome",
    "critical_offsets",
    "evaluate_offsets",
    "packet_heard",
    "summarize_outcomes",
    "sweep_offsets",
    "SweepReport",
]


class ReceptionModel(Enum):
    """How much of a packet must coincide with a reception window."""

    POINT = "point"
    ANY_OVERLAP = "any-overlap"
    CONTAINMENT = "containment"


def _window_segments(
    reception: ReceptionSchedule, rx_phase: int, lo: int, hi: int
) -> list[tuple[int, int]]:
    """Reception-window intervals of the receiver intersecting ``[lo, hi)``
    on the global time axis (half-open), before half-duplex blocking."""
    if hi <= lo:
        return []
    period = reception.period
    first_instance = (lo - rx_phase - period) // period
    segments: list[tuple[int, int]] = []
    instance = first_instance
    while True:
        base = rx_phase + instance * period
        if base >= hi:
            break
        for w in reception.windows:
            w_lo = base + w.start
            w_hi = base + w.end
            if w_lo < hi and w_hi > lo:
                segments.append((max(w_lo, lo), min(w_hi, hi)))
        instance += 1
    return segments


def _subtract_own_tx(
    segments: list[tuple[int, int]],
    own_beacons: BeaconSchedule | None,
    phase: int,
    lo: int,
    hi: int,
    guard_before: int = 0,
    guard_after: int = 0,
) -> list[tuple[int, int]]:
    """Remove the intervals during which the half-duplex radio transmits
    (with RX->TX / TX->RX turnaround guards) from the listening segments.

    This is the Appendix-A.5 self-blocking, computed exactly -- a packet
    may still be heard in the un-blocked remainder of a window.  Only
    beacons actually transmitted (send time >= 0) block; the schedule's
    periodic extension into negative time never went on air.
    """
    if own_beacons is None or not segments:
        return segments
    period = own_beacons.period
    # A block reaches guard_after past its beacon's end, so beacons up to
    # one period plus the guard before ``lo`` can still cover [lo, hi).
    first_instance = (lo - phase - guard_after - period) // period - 1
    instance = first_instance
    while segments:
        base = phase + instance * period
        if base - guard_before >= hi:
            break
        for b in own_beacons.beacons:
            tx_start = base + b.time
            if tx_start < 0:
                continue  # never transmitted: devices start at time 0
            block_lo = tx_start - guard_before
            block_hi = base + b.end + guard_after
            if block_hi <= lo or block_lo >= hi:
                continue
            cut: list[tuple[int, int]] = []
            for seg_lo, seg_hi in segments:
                if block_hi <= seg_lo or block_lo >= seg_hi:
                    cut.append((seg_lo, seg_hi))
                    continue
                if seg_lo < block_lo:
                    cut.append((seg_lo, block_lo))
                if block_hi < seg_hi:
                    cut.append((block_hi, seg_hi))
            segments = cut
        instance += 1
    return segments


def listening_segments(
    receiver: NDProtocol,
    rx_phase: int,
    lo: int,
    hi: int,
    turnaround: int = 0,
) -> list[tuple[int, int]]:
    """The receiver's effective listening set restricted to ``[lo, hi)``:
    reception windows minus its own transmissions (plus guards)."""
    if receiver.reception is None:
        return []
    segments = _window_segments(receiver.reception, rx_phase, lo, hi)
    return _subtract_own_tx(
        segments,
        receiver.beacons,
        rx_phase,
        lo,
        hi,
        guard_before=turnaround,
        guard_after=turnaround,
    )


def packet_heard(
    receiver: NDProtocol,
    rx_phase: int,
    start: int,
    end: int,
    model: ReceptionModel,
    turnaround: int,
) -> bool:
    """Decode decision for a packet occupying ``[start, end)``.

    * POINT: the effective listening set contains the start instant.
    * ANY_OVERLAP: the listening set meets any part of the packet.
    * CONTAINMENT: one contiguous listening segment spans the packet.

    This is the exact per-query reference computation; the
    :class:`repro.parallel.ListeningCache` layer answers the same
    question from a precomputed periodic pattern and falls back to this
    function wherever translation invariance does not hold.
    """
    if model is ReceptionModel.POINT:
        segments = listening_segments(
            receiver, rx_phase, start, start + 1, turnaround
        )
        return bool(segments)
    segments = listening_segments(receiver, rx_phase, start, end, turnaround)
    if model is ReceptionModel.ANY_OVERLAP:
        return bool(segments)
    return segments == [(start, end)]


#: Backward-compatible alias -- the cache layer and tests historically
#: imported the decode decision under its private name.
_packet_heard = packet_heard


def first_discovery(
    transmitter: NDProtocol,
    receiver: NDProtocol,
    tx_phase: int,
    rx_phase: int,
    horizon: int,
    model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
) -> int | None:
    """Earliest time (>= 0) a beacon of ``transmitter`` is received by
    ``receiver``, or ``None`` within ``horizon``.

    Both devices are in range from time 0 and both schedules are
    doubly-infinite periodic extensions (``tx_phase``/``rx_phase`` are
    pure alignments, per Definition 3.4); no event before time 0 exists
    on air.  The receiver's own transmissions preempt its windows
    (half-duplex), with ``turnaround`` guard time on both sides.
    """
    if transmitter.beacons is None:
        raise ValueError("transmitter has no beacon schedule")
    if receiver.reception is None:
        raise ValueError("receiver has no reception schedule")
    for beacon in transmitter.beacons.iter_beacons_infinite(
        until=horizon, phase=tx_phase
    ):
        if _packet_heard(
            receiver,
            rx_phase,
            beacon.time,
            beacon.time + beacon.duration,
            model,
            turnaround,
        ):
            return beacon.time
    return None


@dataclass(frozen=True)
class DiscoveryOutcome:
    """Both directions of a pairwise discovery for one phase offset."""

    offset: int
    e_discovered_by_f: int | None
    """Time F first receives a beacon of E (``None``: not within horizon)."""
    f_discovered_by_e: int | None
    """Time E first receives a beacon of F."""

    @property
    def one_way(self) -> int | None:
        """First discovery in either direction (Appendix-C metric)."""
        times = [
            t
            for t in (self.e_discovered_by_f, self.f_discovered_by_e)
            if t is not None
        ]
        return min(times) if times else None

    @property
    def two_way(self) -> int | None:
        """Both directions complete (Section 5.2 mutual-discovery metric)."""
        if self.e_discovered_by_f is None or self.f_discovered_by_e is None:
            return None
        return max(self.e_discovered_by_f, self.f_discovered_by_e)


def mutual_discovery_times(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    offset: int,
    horizon: int,
    model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
) -> DiscoveryOutcome:
    """Exact discovery times in both directions: E at phase 0, F at phase
    ``offset``, both in range from time 0."""
    e_by_f = None
    f_by_e = None
    if protocol_e.beacons is not None and protocol_f.reception is not None:
        e_by_f = first_discovery(
            protocol_e, protocol_f, 0, offset, horizon, model, turnaround
        )
    if protocol_f.beacons is not None and protocol_e.reception is not None:
        f_by_e = first_discovery(
            protocol_f, protocol_e, offset, 0, horizon, model, turnaround
        )
    return DiscoveryOutcome(
        offset=offset, e_discovered_by_f=e_by_f, f_discovered_by_e=f_by_e
    )


def critical_offsets(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    omega: int | None = None,
    max_count: int = 200_000,
    backend=None,
    turnaround: int = 0,
) -> list[int]:
    """Phase offsets at which the discovery-time function can change.

    Discovery times are piecewise-constant in the offset; breakpoints
    occur where some beacon boundary aligns with some window boundary
    (mod the schedule hyperperiod).  Evaluating at every breakpoint and
    one interior point per piece makes an offset sweep *exact*.  Points
    one microsecond on each side of every breakpoint are included (the
    integer-grid equivalent of one-sided limits).

    A non-zero half-duplex ``turnaround`` shifts the receivers'
    self-blocking guard edges off the window grid; passing it here adds
    those edges (and the boot-time activation anchors) to the
    enumeration, so pruned sweeps stay exact for ``turnaround > 0``
    too.  ``0`` (the default) reproduces the historical breakpoint set
    bit-identically.

    Considers both directions (E's beacons vs F's windows and vice
    versa).  Raises :class:`repro.backends.CriticalSetTooLarge` (a
    ``ValueError`` subclass) if the critical set would exceed
    ``max_count`` (fall back to a uniform sweep for such configs); the
    size guard runs on the *deduplicated* window-bound count, so
    duplicate-heavy schedules are judged by the breakpoints they
    actually produce.  Any *other* ``ValueError`` out of a kernel is a
    genuine error, never an overflow signal.

    The enumeration is the second kernel-dispatched
    :mod:`repro.backends` operation (PR 5).  ``backend=None`` (the
    default) runs the exact pure-python reference loop
    (:func:`repro.backends.python_loop.enumerate_critical_offsets_reference`)
    -- the anchor the property harness pins every kernel against.  Any
    other value resolves a :class:`repro.backends.SweepBackend` and
    dispatches to its
    :meth:`~repro.backends.SweepBackend.enumerate_critical_offsets`,
    bit-identical by contract (the ``numpy`` kernel replaces the double
    loop with batched modular arithmetic).  Unlike the deprecated
    ``evaluate_offsets(backend=...)`` plumbing this parameter is
    first-class: ``verified_worst_case`` and
    :meth:`repro.api.Session.worst_case` thread their resolved kernel
    through it.
    """
    if backend is None:
        from ..backends.python_loop import enumerate_critical_offsets_reference

        return enumerate_critical_offsets_reference(
            protocol_e, protocol_f, omega, max_count, turnaround
        )
    from ..backends import resolve_backend, SweepParams

    params = SweepParams(
        protocol_e,
        protocol_f,
        horizon=0,
        model=ReceptionModel.POINT,
        turnaround=turnaround,
    )
    return resolve_backend(backend).enumerate_critical_offsets(
        params, omega=omega, max_count=max_count
    )


@dataclass(frozen=True)
class SweepReport:
    """Aggregate of a phase-offset sweep."""

    offsets_evaluated: int
    failures: int
    """Offsets with no discovery within the horizon."""
    worst_one_way: int | None
    worst_two_way: int | None
    mean_one_way: float | None
    mean_two_way: float | None
    worst_offset_one_way: int | None
    worst_offset_two_way: int | None


def evaluate_offsets(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    offsets: Iterable[int],
    horizon: int,
    model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    backend=None,
) -> list[DiscoveryOutcome]:
    """Per-offset discovery outcomes, in the order offsets are given.

    Batch-friendly primitive behind :func:`sweep_offsets`: a chunked
    executor can evaluate disjoint offset slices independently and
    aggregate them later (see :func:`summarize_outcomes`), since each
    outcome depends only on its own offset.

    ``backend=None`` (the default) keeps this function the direct
    uncached reference computation -- the anchor the equivalence zoo
    compares every kernel against.  Passing a backend is the
    **deprecated** pre-Session runtime plumbing: it warns
    (:class:`repro.api.LegacyRuntimeAPIWarning`) and delegates to the
    facade's kernel engine, bit-identical to every prior release --
    select the kernel on a :class:`repro.api.RuntimeProfile` instead.
    """
    if backend is not None:
        from ..api._compat import warn_legacy
        from ..api.session import evaluate_offsets_with_backend

        warn_legacy(
            "evaluate_offsets(backend=...)",
            "repro.api.Session.sweep",
        )
        return evaluate_offsets_with_backend(
            protocol_e, protocol_f, offsets, horizon, model, turnaround,
            backend,
        )
    return [
        mutual_discovery_times(
            protocol_e, protocol_f, offset, horizon, model, turnaround
        )
        for offset in offsets
    ]


def summarize_outcomes(outcomes: Iterable[DiscoveryOutcome]) -> SweepReport:
    """Aggregate per-offset outcomes into a :class:`SweepReport`.

    Worst-case ties break toward the *earliest* outcome in iteration
    order (strict ``>`` updates only), so the result is a pure function
    of the outcome sequence -- the invariant the parallel executor's
    order-stable chunk merging relies on.
    """
    n = 0
    failures = 0
    worst_ow: int | None = None
    worst_tw: int | None = None
    worst_ow_off: int | None = None
    worst_tw_off: int | None = None
    sum_ow = 0
    sum_tw = 0
    count_ow = 0
    count_tw = 0
    for outcome in outcomes:
        n += 1
        ow = outcome.one_way
        tw = outcome.two_way
        if ow is None:
            failures += 1
        else:
            sum_ow += ow
            count_ow += 1
            if worst_ow is None or ow > worst_ow:
                worst_ow, worst_ow_off = ow, outcome.offset
        if tw is not None:
            sum_tw += tw
            count_tw += 1
            if worst_tw is None or tw > worst_tw:
                worst_tw, worst_tw_off = tw, outcome.offset
    return SweepReport(
        offsets_evaluated=n,
        failures=failures,
        worst_one_way=worst_ow,
        worst_two_way=worst_tw,
        mean_one_way=sum_ow / count_ow if count_ow else None,
        mean_two_way=sum_tw / count_tw if count_tw else None,
        worst_offset_one_way=worst_ow_off,
        worst_offset_two_way=worst_tw_off,
    )


def sweep_offsets(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    offsets: Iterable[int],
    horizon: int,
    model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    backend=None,
) -> SweepReport:
    """Evaluate both-direction discovery over a set of phase offsets and
    aggregate worst/mean statistics (``backend`` as in
    :func:`evaluate_offsets`: ``None`` is the exact reference, anything
    else is the deprecated kwarg path through the facade)."""
    if backend is not None:
        # Warn here (not via evaluate_offsets) so the warning names this
        # entry point and points at the caller's line.
        from ..api._compat import warn_legacy
        from ..api.session import evaluate_offsets_with_backend

        warn_legacy("sweep_offsets(backend=...)", "repro.api.Session.sweep")
        return summarize_outcomes(
            evaluate_offsets_with_backend(
                protocol_e, protocol_f, offsets, horizon, model, turnaround,
                backend,
            )
        )
    return summarize_outcomes(
        evaluate_offsets(
            protocol_e, protocol_f, offsets, horizon, model, turnaround
        )
    )
