"""Discrete-event neighbor-discovery simulation.

Two complementary engines:

* :mod:`repro.simulation.analytic` -- exact closed-form pair discovery
  (no collisions): the reference for worst-case validation.
* The event-driven stack (:mod:`engine`, :mod:`channel`, :mod:`node`,
  :mod:`runner`) -- multi-device scenarios with collisions, advertising
  jitter, clock drift and turnaround overheads.

The two are bit-compatible on their common domain, which
:func:`repro.simulation.runner.verified_worst_case` enforces.
"""

from .analytic import (
    critical_offsets,
    DiscoveryOutcome,
    evaluate_offsets,
    first_discovery,
    mutual_discovery_times,
    ReceptionModel,
    summarize_outcomes,
    sweep_offsets,
    SweepReport,
)
from ..backends.base import CriticalSetTooLarge
from .channel import Channel, Transmission
from .clock import DriftingClock, IdealClock
from .engine import Event, Simulator
from .node import Node
from .trace import EventKind, TraceEvent, TraceRecorder
from .runner import (
    NetworkResult,
    PairWorstCase,
    simulate_network,
    simulate_pair,
    simulate_pair_mutual_assistance,
    sweep_network_grid,
    verified_worst_case,
)

__all__ = [
    "Channel",
    "CriticalSetTooLarge",
    "DiscoveryOutcome",
    "DriftingClock",
    "Event",
    "IdealClock",
    "NetworkResult",
    "Node",
    "PairWorstCase",
    "ReceptionModel",
    "Simulator",
    "SweepReport",
    "TraceEvent",
    "TraceRecorder",
    "EventKind",
    "Transmission",
    "critical_offsets",
    "evaluate_offsets",
    "first_discovery",
    "mutual_discovery_times",
    "simulate_network",
    "simulate_pair",
    "simulate_pair_mutual_assistance",
    "summarize_outcomes",
    "sweep_network_grid",
    "sweep_offsets",
    "verified_worst_case",
]
