"""A deterministic discrete-event engine on an integer-microsecond clock.

``simpy`` is not available in the offline environment, so the package
ships its own calendar-queue simulator: a binary heap of timestamped
events with deterministic FIFO tie-breaking (events at equal timestamps
fire in scheduling order).  Determinism matters here -- worst-case
latency validation compares exact microsecond values across runs, so the
engine forbids wall-clock or hash-order dependence anywhere.

The simulator knows nothing about radios; :mod:`repro.simulation.node`
and :mod:`repro.simulation.channel` build the wireless semantics on top.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Simulator", "Event"]


@dataclass(order=True)
class Event:
    """One scheduled callback.  Ordering: time, then insertion sequence."""

    time: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True


class Simulator:
    """The event calendar.

    Usage::

        sim = Simulator()
        sim.schedule(at=100, callback=fire)
        sim.run_until(10_000)
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._now = 0
        self._events_processed = 0

    @property
    def now(self) -> int:
        """Current simulation time (us)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    def schedule(self, at: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute time ``at`` (>= now)."""
        if at < self._now:
            raise ValueError(
                f"cannot schedule at {at}, simulation time is {self._now}"
            )
        event = Event(time=at, sequence=next(self._sequence), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` ``delay`` us from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback)

    def run_until(self, end_time: int) -> None:
        """Process events with ``time <= end_time``; leave later ones queued.

        The simulation clock lands on ``end_time`` when the queue drains
        early, so repeated calls advance monotonically.
        """
        while self._queue and self._queue[0].time <= end_time:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback()
        self._now = max(self._now, end_time)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the queue completely (with a runaway guard)."""
        processed = 0
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback()
            processed += 1
            if processed > max_events:
                raise RuntimeError(
                    f"run_until_idle exceeded {max_events} events; "
                    f"likely a self-rescheduling loop"
                )

    def peek(self) -> int | None:
        """Timestamp of the next live event, or ``None`` if idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None
