"""A broadcast channel with ALOHA-style collision semantics.

All nodes share one channel (ND beacons use a fixed advertising channel;
frequency diversity is out of scope, as in the paper).  A transmission
occupies the channel for its full duration; a receiver decodes a packet
iff (a) it is listening for the required portion of the packet (per the
active :class:`~repro.simulation.analytic.ReceptionModel`), and (b) no
other transmission overlaps the packet *while the receiver is in range of
both senders* -- otherwise the packet is marked collided for that
receiver.  There is no capture effect: overlapping transmissions corrupt
each other at every receiver that hears both, matching the conservative
collision model behind Equation 12.

Range is modeled as a node-pair predicate (default: everyone hears
everyone), which lets scenarios script devices walking in and out of
range (Definition 3.4 measures latency from range entry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .node import Node

__all__ = ["Transmission", "Channel"]


@dataclass
class Transmission:
    """An in-flight packet."""

    sender: "Node"
    start: int
    end: int
    collided_for: set[int] = field(default_factory=set)
    """Receiver ids for which this packet is corrupted."""


class Channel:
    """The shared medium.  Nodes register themselves; senders call
    :meth:`begin_transmission` / :meth:`end_transmission`."""

    def __init__(
        self,
        in_range: Callable[["Node", "Node"], bool] | None = None,
    ) -> None:
        self._nodes: list["Node"] = []
        self._active: list[Transmission] = []
        self._in_range = in_range or (lambda a, b: True)
        self.total_transmissions = 0
        self.total_collisions = 0

    # ------------------------------------------------------------------
    def register(self, node: "Node") -> None:
        """Add a node to the channel."""
        self._nodes.append(node)

    @property
    def nodes(self) -> list["Node"]:
        """All registered nodes."""
        return self._nodes

    def in_range(self, a: "Node", b: "Node") -> bool:
        """Whether ``a`` and ``b`` currently hear each other."""
        return a is not b and self._in_range(a, b)

    # ------------------------------------------------------------------
    def begin_transmission(self, sender: "Node", start: int, end: int) -> Transmission:
        """Called by a node at the first microsecond of a packet.

        Marks collisions against every already-active overlapping
        transmission: a receiver that is in range of both senders will
        decode neither packet.
        """
        tx = Transmission(sender=sender, start=start, end=end)
        self.total_transmissions += 1
        for other in self._active:
            if other.end <= start:
                continue
            # Overlap: corrupt both packets for every common receiver.
            collided = False
            for receiver in self._nodes:
                if receiver is tx.sender or receiver is other.sender:
                    continue
                if self.in_range(tx.sender, receiver) and self.in_range(
                    other.sender, receiver
                ):
                    tx.collided_for.add(id(receiver))
                    other.collided_for.add(id(receiver))
                    collided = True
            if collided:
                self.total_collisions += 1
        self._active.append(tx)
        # Notify listeners that a packet has started (they track overlap
        # with their own windows).
        for receiver in self._nodes:
            if receiver is sender or not self.in_range(sender, receiver):
                continue
            receiver.on_packet_start(tx)
        return tx

    def end_transmission(self, tx: Transmission) -> None:
        """Called by a node when its packet's last microsecond is done."""
        self._active.remove(tx)
        for receiver in self._nodes:
            if receiver is tx.sender or not self.in_range(tx.sender, receiver):
                continue
            receiver.on_packet_end(tx)

    def active_transmissions(self) -> list[Transmission]:
        """Packets currently on the air."""
        return list(self._active)
