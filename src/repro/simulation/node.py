"""A device: half-duplex radio executing an ND protocol's schedules.

Each node unrolls its *beacon* schedule onto the event calendar (one
period at a time, so infinite schedules cost finite memory), mapping
local schedule time through its clock model (phase offset plus optional
ppm drift) and adding per-event advertising jitter (BLE's advDelay).

Reception needs no events: windows are deterministic given the clock, so
when a packet ends the node decides the decode *analytically* -- window
membership on the exact half-open integer-grid semantics, minus the
intervals blocked by the node's own transmissions (half-duplex plus
turnaround guards, the Appendix-A.5 self-blocking), and never for
packets the channel marked as collided.  This keeps the event-driven
simulator bit-compatible with the closed-form pair computation in
:mod:`repro.simulation.analytic`, which the validation tests rely on.
"""

from __future__ import annotations

import random
from typing import Callable

from ..core.sequences import NDProtocol
from .analytic import ReceptionModel
from .channel import Channel, Transmission
from .clock import DriftingClock, IdealClock
from .engine import Simulator

__all__ = ["Node"]


class Node:
    """One simulated device."""

    def __init__(
        self,
        name: str,
        protocol: NDProtocol,
        sim: Simulator,
        channel: Channel,
        clock: IdealClock | DriftingClock | None = None,
        reception_model: ReceptionModel = ReceptionModel.POINT,
        turnaround: int = 0,
        advertising_jitter: int = 0,
        seed: int = 0,
        start_time: int = 0,
    ) -> None:
        self.name = name
        self.protocol = protocol
        self.sim = sim
        self.channel = channel
        self.clock = clock or IdealClock()
        self.reception_model = reception_model
        self.turnaround = turnaround
        self.advertising_jitter = advertising_jitter
        self.start_time = start_time
        self._rng = random.Random(f"{seed}/{name}")
        self._jitter_accum = 0
        """Cumulative advertising delay: BLE's advDelay postpones each
        advertising event relative to the *previous* one, so the random
        delays accumulate (this is what decorrelates the schedules and
        breaks rational Ta/Ts couplings)."""
        self._own_tx_blocks: list[tuple[int, int]] = []
        """Global intervals during which the radio cannot receive because
        it transmits (including turnaround guards on both sides)."""
        self.discoveries: dict[str, int] = {}
        """peer name -> global time (packet start) of first decode."""
        self.packets_received = 0
        self.packets_missed_collision = 0
        self.packets_missed_not_listening = 0
        self.on_discovery: Callable[["Node", "Node", int], None] | None = None
        channel.register(self)

    # ------------------------------------------------------------------
    # Schedule unrolling (transmissions only; reception is analytic)
    # ------------------------------------------------------------------
    def activate(self) -> None:
        """Schedule the beacon stream.

        The schedule is the doubly-infinite periodic extension aligned by
        the clock phase (Definition 3.4: devices have been running since
        before coming into range), so unrolling starts at the instance
        whose events first land at or after the current simulation time;
        earlier instances never went on air.
        """
        if self.protocol.beacons is not None:
            period = self.protocol.beacons.period
            local_now = self.clock.to_local(self.sim.now - self.start_time)
            first_instance = (local_now - period) // period - 1
            if self.start_time > 0:
                # A positive start_time means the device *boots* then
                # (gradual-join scenarios): its schedule begins at local
                # time 0, with no pre-boot periodic extension.
                first_instance = max(int(first_instance), 0)
            self._schedule_beacon_instance(int(first_instance))

    def _schedule_beacon_instance(self, instance: int) -> None:
        schedule = self.protocol.beacons
        assert schedule is not None
        base_local = instance * schedule.period
        for beacon in schedule.beacons:
            if self.advertising_jitter:
                self._jitter_accum += self._rng.randint(
                    0, self.advertising_jitter
                )
            local = base_local + beacon.time + self._jitter_accum
            when = self.start_time + self.clock.to_global(local)
            if when >= self.sim.now:
                self.sim.schedule(
                    when, lambda d=beacon.duration: self._begin_tx(d)
                )
        next_start = self.start_time + self.clock.to_global(
            (instance + 1) * schedule.period
        )
        self.sim.schedule(
            max(next_start, self.sim.now),
            lambda: self._schedule_beacon_instance(instance + 1),
        )

    def schedule_response_tx(self, duration: int, at: int | None = None) -> None:
        """Schedule a one-off, out-of-schedule transmission.

        Public entry point for protocol extensions that inject extra
        beacons -- e.g. the mutual-assistance response of Appendix C,
        which answers inside the peer's announced reception window.  The
        transmission behaves exactly like a scheduled beacon: it occupies
        the channel, can collide, and blocks the node's own reception
        (half-duplex plus turnaround guards).

        ``at`` is the global start time (default: now); it must not lie
        in the past.
        """
        when = self.sim.now if at is None else at
        self.sim.schedule(when, lambda: self._begin_tx(duration))

    def _begin_tx(self, duration: int) -> None:
        start = self.sim.now
        block = (start - self.turnaround, start + duration + self.turnaround)
        self._own_tx_blocks.append(block)
        if len(self._own_tx_blocks) > 64:
            del self._own_tx_blocks[:-32]
        tx = self.channel.begin_transmission(self, start, start + duration)
        self.sim.schedule(start + duration, lambda: self.channel.end_transmission(tx))

    # ------------------------------------------------------------------
    # Analytic reception
    # ------------------------------------------------------------------
    def _window_segments(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """Global listening-window intervals intersecting ``[lo, hi)``,
        before half-duplex blocking."""
        reception = self.protocol.reception
        if reception is None or hi <= lo:
            return []
        period = reception.period
        local_lo = self.clock.to_local(lo - self.start_time)
        first_instance = (local_lo - period) // period
        segments: list[tuple[int, int]] = []
        instance = first_instance
        while True:
            base = instance * period
            instance_start_global = self.start_time + self.clock.to_global(base)
            if instance_start_global >= hi:
                break
            for w in reception.windows:
                w_lo = self.start_time + self.clock.to_global(base + w.start)
                w_hi = self.start_time + self.clock.to_global(base + w.end)
                if w_lo < hi and w_hi > lo:
                    segments.append((max(w_lo, lo), min(w_hi, hi)))
            instance += 1
        return segments

    def _listening_segments(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """Window segments minus the node's own transmission blocks."""
        if self.start_time > 0:
            # Booted devices hear nothing before their join time.
            lo = max(lo, self.start_time)
        segments = self._window_segments(lo, hi)
        if not segments:
            return []
        for block_lo, block_hi in self._own_tx_blocks:
            if block_hi <= lo or block_lo >= hi:
                continue
            cut: list[tuple[int, int]] = []
            for seg_lo, seg_hi in segments:
                if block_hi <= seg_lo or block_lo >= seg_hi:
                    cut.append((seg_lo, seg_hi))
                    continue
                if seg_lo < block_lo:
                    cut.append((seg_lo, block_lo))
                if block_hi < seg_hi:
                    cut.append((block_hi, seg_hi))
            segments = cut
            if not segments:
                break
        return segments

    def is_listening_at(self, time: int) -> bool:
        """Half-open membership test of the effective listening set."""
        return any(lo <= time < hi for lo, hi in self._listening_segments(time, time + 1))

    # ------------------------------------------------------------------
    # Channel callbacks
    # ------------------------------------------------------------------
    def on_packet_start(self, tx: Transmission) -> None:
        """No state needed at packet start; the decision is analytic."""

    def on_packet_end(self, tx: Transmission) -> None:
        """Decide the decode of a finished packet.

        With a turnaround guard, an own transmission starting up to
        ``turnaround`` after the packet still blocks it (the radio was
        already switching RX->TX while the packet arrived); the decision
        is deferred until those events have fired.
        """
        if self.protocol.reception is None:
            return
        if self.turnaround > 0:
            self.sim.schedule_in(self.turnaround, lambda: self._decide(tx))
        else:
            self._decide(tx)

    def _decide(self, tx: Transmission) -> None:
        """Evaluate the decode once all relevant own-TX blocks are known."""
        model = self.reception_model
        if model is ReceptionModel.POINT:
            heard = self.is_listening_at(tx.start)
        else:
            segments = self._listening_segments(tx.start, tx.end)
            if model is ReceptionModel.ANY_OVERLAP:
                heard = bool(segments)
            else:  # CONTAINMENT: one segment spanning the whole packet
                heard = segments == [(tx.start, tx.end)]
        if not heard:
            self.packets_missed_not_listening += 1
            return
        if id(self) in tx.collided_for:
            self.packets_missed_collision += 1
            return
        self.packets_received += 1
        sender = tx.sender
        if sender.name not in self.discoveries:
            self.discoveries[sender.name] = tx.start
            if self.on_discovery is not None:
                self.on_discovery(self, sender, tx.start)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.name!r}, {self.protocol.name!r})"
