"""Tier pricing for the budgeted worst-case ladder.

:class:`LadderPlanner` turns a per-query ``budget_ms`` into tier
decisions for ``Session.worst_case``'s adaptive fidelity ladder:

* price the **exact tier** (critical-offset enumeration + full sweep)
  and run it only when it fits the remaining budget;
* otherwise size a **dense tier** -- a nested low-discrepancy offset
  sample whose cost fits what the budget leaves after a DES reserve;
* price the **DES tier** per replay, so spot checks are cut (never the
  sweep) when the budget runs short.

Prices derive from the same fitted ``(beacon, window)`` cost weights
the grid scheduler uses (:mod:`repro.parallel.schedule`):
:func:`~repro.parallel.schedule.fit_cost_weights` regresses measured
wall-clock seconds onto the two event-rate components, so
``default_simulation_cost`` approximates one DES replay of the pair in
seconds.  One analytic offset evaluation is priced at a fixed fraction
of a replay (:data:`ANALYTIC_OFFSET_FACTOR`).  When the process still
holds the *uncalibrated* ``(1.0, 1.0)`` defaults -- which only rank
scenarios and do not measure seconds -- the planner substitutes
:data:`REFERENCE_WEIGHTS`, the reference-machine fit recorded in
``results/BENCH_parallel.json``, so budgets stay interpretable as
milliseconds out of the box.

The plan is a **pure function** of the spec and the installed weights
(no wall-clock feedback), so tier selection is deterministic and
reproducible: the same query under the same weights always runs the
same tiers, and a larger budget can only grow the work -- the nested
offset prefixes below make the reported bound interval monotone in the
budget.
"""

from __future__ import annotations

import math

from ..parallel.schedule import cost_weights, default_simulation_cost

__all__ = [
    "ANALYTIC_OFFSET_FACTOR",
    "DES_PRICE_MARGIN",
    "DES_RESERVE_CHECKS",
    "estimate_critical_count",
    "LadderPlanner",
    "low_discrepancy_offsets",
    "REFERENCE_WEIGHTS",
]

#: One analytic offset evaluation as a fraction of one DES replay: the
#: sweep kernels walk the same beacon/window structure but skip event
#: scheduling, channel arbitration and node state.  Part of the fixed
#: cost model -- chosen conservatively (analytic evaluation is usually
#: far cheaper) so a budgeted plan under-commits rather than overruns.
ANALYTIC_OFFSET_FACTOR = 0.05

#: Replays the dense-tier sizing reserves budget for, so a tight budget
#: still cross-checks the worst offsets instead of spending everything
#: on sweep resolution.
DES_RESERVE_CHECKS = 2

#: The DES tier only runs replays it can cover at this multiple of the
#: modelled price.  Replay prices are known to be optimistic: the
#: linear event-rate model omits the DES engine's per-slot stepping
#: cost, which dominates replays of long-hyperperiod slotted pairs
#: (measured ~40x on a 10.4 s-hyperperiod Disco pair).  The margin
#: makes under-pricing degrade to "skip the replay" rather than "blow
#: the budget" -- the analytic sweep already decided the verdict; the
#: replay only cross-checks it.
DES_PRICE_MARGIN = 2.0

#: Reference-machine ``(beacon, window)`` weights in seconds per
#: event-rate unit -- the scale ``fit_cost_weights`` produces from the
#: bench's measured grid timings.  Used only while the process holds
#: the uncalibrated ``(1.0, 1.0)`` ranking defaults.
REFERENCE_WEIGHTS = (3.3e-06, 4.8e-06)

#: Floors keeping prices positive for degenerate schedules (a pair with
#: no beacons or windows has zero modelled cost but not zero real cost).
_MIN_DES_MS = 1e-3
_MIN_OFFSET_MS = 1e-4


def estimate_critical_count(protocol_e, protocol_f, hyper: int) -> int:
    """Cheap upper estimate of the pair's critical-offset count, priced
    **before** enumerating: each (beacon instance, window instance) pair
    over the joint hyperperiod contributes at most two alignment
    boundaries per direction -- the same product the kernels' overflow
    guard bounds.  Lets the budgeted ladder skip the exact tier without
    paying the enumeration it cannot afford to sweep anyway.  An
    over-estimate only makes a plan more conservative (bounded verdict
    where exact was just affordable), never unsound.
    """
    total = 0
    for tx, rx in ((protocol_e, protocol_f), (protocol_f, protocol_e)):
        if tx.beacons is None or rx.reception is None:
            continue
        beacons = tx.beacons.n_beacons * max(
            1, hyper // max(1, int(tx.beacons.period))
        )
        windows = rx.reception.n_windows * max(
            1, hyper // max(1, int(rx.reception.period))
        )
        total += 2 * beacons * windows
    return total


def low_discrepancy_offsets(hyper: int, count: int) -> list[int]:
    """The first ``count`` terms of a deterministic low-discrepancy
    sequence over ``[0, hyper)`` (bit-reversed van der Corput, base 2),
    deduplicated, in generation order.

    The sequences are **prefix-nested**: the offsets for ``count=n``
    are exactly the first ``n`` of the offsets for any larger count.
    That is what makes the budgeted bound monotone -- a bigger budget
    evaluates a superset of offsets, so the observed lower bound can
    only rise.  Integer arithmetic throughout (hyperperiods overflow
    doubles).
    """
    if hyper <= 0:
        raise ValueError(f"hyper must be positive, got {hyper}")
    count = min(count, hyper)
    offsets: list[int] = []
    seen: set[int] = set()
    index = 0
    while len(offsets) < count:
        if index == 0:
            value = 0
        else:
            bits = index.bit_length()
            reversed_index = int(format(index, f"0{bits}b")[::-1], 2)
            value = hyper * reversed_index >> bits
        index += 1
        if value not in seen:
            seen.add(value)
            offsets.append(value)
    return offsets


class LadderPlanner:
    """Deterministic tier prices for one worst-case query (module docs).

    ``weights=None`` reads the process-wide pair installed by
    :func:`repro.parallel.schedule.use_cost_weights` (falling back to
    :data:`REFERENCE_WEIGHTS` while the uncalibrated defaults are
    installed); pass an explicit pair to pin the cost model, e.g. in
    tests asserting tier selection.
    """

    def __init__(self, protocol_e, protocol_f, horizon, weights=None):
        if weights is None:
            weights = cost_weights()
            if weights == (1.0, 1.0):
                weights = REFERENCE_WEIGHTS
        pair_cost_s = default_simulation_cost(
            (protocol_e, protocol_f), horizon, weights
        )
        self.weights = tuple(float(w) for w in weights)
        #: Price of one DES replay of the pair over the horizon, ms.
        self.des_ms = max(pair_cost_s * 1000.0, _MIN_DES_MS)
        #: Price of one analytic offset evaluation, ms.
        self.offset_ms = max(
            self.des_ms * ANALYTIC_OFFSET_FACTOR, _MIN_OFFSET_MS
        )

    def sweep_ms(self, n_offsets: int) -> float:
        """Estimated cost of sweeping ``n_offsets`` offsets, ms."""
        return n_offsets * self.offset_ms

    def checks_ms(self, n_checks: int) -> float:
        """Estimated cost of ``n_checks`` DES spot-check replays, ms."""
        return n_checks * self.des_ms

    def affordable_offsets(self, budget_ms: float) -> int:
        """How many analytic offset evaluations ``budget_ms`` buys."""
        if budget_ms <= 0:
            return 0
        return int(budget_ms / self.offset_ms)

    def affordable_checks(self, budget_ms: float) -> int:
        """How many DES replays ``budget_ms`` buys."""
        if budget_ms <= 0:
            return 0
        return int(budget_ms / self.des_ms)

    def spot_check_allocation(self, remaining_ms: float,
                              des_spot_checks: int) -> int:
        """DES replays the leftover budget affords at
        :data:`DES_PRICE_MARGIN` over the modelled replay price (see
        the margin's rationale)."""
        return min(
            des_spot_checks,
            self.affordable_checks(remaining_ms / DES_PRICE_MARGIN),
        )

    def dense_tier_size(self, remaining_ms: float, des_spot_checks: int,
                        hyper: int) -> int:
        """Offsets the dense tier should evaluate: what the remaining
        budget affords after reserving :data:`DES_RESERVE_CHECKS`
        replays (never more than the hyperperiod holds, never fewer
        than one -- an admitted query always produces *some* bound).
        Monotone non-decreasing in ``remaining_ms``."""
        reserve = self.checks_ms(min(des_spot_checks, DES_RESERVE_CHECKS))
        affordable = self.affordable_offsets(remaining_ms - reserve)
        return max(1, min(affordable, hyper))
