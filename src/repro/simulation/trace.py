"""Event tracing for the discrete-event simulator.

A :class:`TraceRecorder` hooks into nodes and the channel to produce a
chronological record of transmissions, receptions, losses and
discoveries -- the raw material for debugging schedules and for the
textual timelines in the examples.  Recording is opt-in and adds no cost
when unused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

__all__ = ["EventKind", "TraceEvent", "TraceRecorder"]


class EventKind(Enum):
    """What happened."""

    TX = "tx"
    RX = "rx"
    LOST_COLLISION = "lost-collision"
    LOST_NOT_LISTENING = "lost-deaf"
    DISCOVERY = "discovery"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: int
    kind: EventKind
    node: str
    peer: str | None = None
    detail: str = ""


@dataclass
class TraceRecorder:
    """Collects :class:`TraceEvent` records from instrumented nodes."""

    events: list[TraceEvent] = field(default_factory=list)
    max_events: int = 100_000

    def record(
        self,
        time: int,
        kind: EventKind,
        node: str,
        peer: str | None = None,
        detail: str = "",
    ) -> None:
        """Append one event (drops silently past ``max_events``)."""
        if len(self.events) < self.max_events:
            self.events.append(TraceEvent(time, kind, node, peer, detail))

    # ------------------------------------------------------------------
    def attach(self, node: "Node") -> None:
        """Instrument a node: wraps its TX entry point and decode decision
        so every radio event lands in the trace."""
        recorder = self
        original_begin_tx = node._begin_tx
        original_decide = node._decide

        def traced_begin_tx(duration: int) -> None:
            recorder.record(node.sim.now, EventKind.TX, node.name)
            original_begin_tx(duration)

        def traced_decide(tx) -> None:
            before_received = node.packets_received
            before_collision = node.packets_missed_collision
            before_deaf = node.packets_missed_not_listening
            before_discoveries = len(node.discoveries)
            original_decide(tx)
            sender = tx.sender.name
            if node.packets_received > before_received:
                recorder.record(tx.end, EventKind.RX, node.name, sender)
            elif node.packets_missed_collision > before_collision:
                recorder.record(
                    tx.end, EventKind.LOST_COLLISION, node.name, sender
                )
            elif node.packets_missed_not_listening > before_deaf:
                recorder.record(
                    tx.end, EventKind.LOST_NOT_LISTENING, node.name, sender
                )
            if len(node.discoveries) > before_discoveries:
                # The discovery *timestamp* convention is the packet start
                # (node.discoveries); the trace logs at decision time to
                # stay chronological.
                recorder.record(
                    tx.end, EventKind.DISCOVERY, node.name, sender,
                    detail=f"first packet from {sender}, sent at {tx.start}",
                )

        node._begin_tx = traced_begin_tx  # type: ignore[method-assign]
        node._decide = traced_decide  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        """All events of one kind, in chronological order."""
        return [e for e in self.events if e.kind is kind]

    def timeline(self, limit: int = 50) -> str:
        """Human-readable chronological rendering."""
        lines = []
        for event in self.events[:limit]:
            peer = f" <- {event.peer}" if event.peer else ""
            detail = f"  ({event.detail})" if event.detail else ""
            lines.append(
                f"{event.time:>12} us  {event.kind.value:<14} "
                f"{event.node}{peer}{detail}"
            )
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events ...")
        return "\n".join(lines)
