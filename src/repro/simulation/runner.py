"""Experiment drivers: pair simulations, offset sweeps and networks.

Three levels of fidelity:

* :func:`simulate_pair` -- full event-driven run of two nodes (supports
  drift, jitter, turnaround; collisions cannot occur with only one
  transmitter audible per receiver pair unless both transmit, which the
  channel handles).
* :func:`simulate_network` -- ``S`` devices discovering each other
  simultaneously on one collision-prone channel (the Appendix-B
  scenario).
* The exact analytic sweep lives in :mod:`repro.simulation.analytic`;
  :func:`verified_worst_case` cross-checks DES against analytic results
  on critical offsets.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..backends.base import CriticalSetTooLarge
from ..core.sequences import NDProtocol
from .analytic import (
    critical_offsets,
    DiscoveryOutcome,
    ReceptionModel,
    SweepReport,
)
from .channel import Channel
from .clock import DriftingClock, IdealClock
from .engine import Simulator
from .node import Node

__all__ = [
    "simulate_pair",
    "simulate_network",
    "NetworkResult",
    "sweep_network_grid",
    "verified_worst_case",
    "PairWorstCase",
]


def _make_pair(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    offset: int,
    sim: Simulator,
    channel: Channel,
    reception_model: ReceptionModel,
    turnaround: int,
    drift_ppm_e: int,
    drift_ppm_f: int,
    advertising_jitter: int,
    seed: int,
) -> tuple[Node, Node]:
    """Build the canonical two-device setup: E at phase 0, F at phase
    ``offset``, node seeds ``seed``/``seed + 1`` -- shared by every pair
    runner so the fidelity knobs cannot diverge between them again."""
    clock_e = (
        DriftingClock(phase=0, drift_ppm=drift_ppm_e)
        if drift_ppm_e
        else IdealClock(phase=0)
    )
    clock_f = (
        DriftingClock(phase=offset, drift_ppm=drift_ppm_f)
        if drift_ppm_f
        else IdealClock(phase=offset)
    )
    node_e = Node(
        "E",
        protocol_e,
        sim,
        channel,
        clock=clock_e,
        reception_model=reception_model,
        turnaround=turnaround,
        advertising_jitter=advertising_jitter,
        seed=seed,
    )
    node_f = Node(
        "F",
        protocol_f,
        sim,
        channel,
        clock=clock_f,
        reception_model=reception_model,
        turnaround=turnaround,
        advertising_jitter=advertising_jitter,
        seed=seed + 1,
    )
    return node_e, node_f


def simulate_pair(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    offset: int,
    horizon: int,
    reception_model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    drift_ppm_e: int = 0,
    drift_ppm_f: int = 0,
    advertising_jitter: int = 0,
    seed: int = 0,
) -> DiscoveryOutcome:
    """Event-driven discovery between two devices.

    Device E runs at phase 0, device F at phase ``offset``; both are in
    range from time 0.  Returns first-decode times per direction (packet
    start timestamps), ``None`` for directions not discovered within
    ``horizon``.
    """
    sim = Simulator()
    channel = Channel()
    node_e, node_f = _make_pair(
        protocol_e,
        protocol_f,
        offset,
        sim,
        channel,
        reception_model,
        turnaround,
        drift_ppm_e,
        drift_ppm_f,
        advertising_jitter,
        seed,
    )
    node_e.activate()
    node_f.activate()
    # Slack covers decode decisions deferred past the last packet end.
    sim.run_until(horizon + turnaround + 1)
    return DiscoveryOutcome(
        offset=offset,
        e_discovered_by_f=node_f.discoveries.get("E"),
        f_discovered_by_e=node_e.discoveries.get("F"),
    )


@dataclass
class NetworkResult:
    """Outcome of a multi-device discovery scenario."""

    n_nodes: int
    horizon: int
    discovery_times: dict[tuple[str, str], int] = field(default_factory=dict)
    """``(receiver, sender) -> time`` for every completed discovery."""
    total_transmissions: int = 0
    total_collisions: int = 0
    packets_lost_to_collisions: int = 0

    @property
    def pairs_expected(self) -> int:
        """Directed pairs that could discover each other."""
        return self.n_nodes * (self.n_nodes - 1)

    @property
    def pairs_discovered(self) -> int:
        """Directed pairs that completed discovery within the horizon."""
        return len(self.discovery_times)

    @property
    def discovery_rate(self) -> float:
        """Fraction of directed pairs discovered."""
        if self.pairs_expected == 0:
            return 1.0
        return self.pairs_discovered / self.pairs_expected

    def latencies(self) -> list[int]:
        """All completed discovery latencies, sorted ascending."""
        return sorted(self.discovery_times.values())

    def quantile(self, q: float) -> int | None:
        """Latency quantile over *completed* discoveries (``None`` if no
        discovery completed).

        Nearest-rank semantics (matching
        :func:`repro.analysis.stats._quantile`): the smallest latency
        whose rank is at least ``q * n``, i.e. index ``ceil(q*n) - 1``,
        clamped to the sample.  ``quantile(0.5)`` over ``[1, 2, 3, 4]``
        is therefore 2 -- the value at rank 2 -- not 3 as naive
        ``int(q*n)`` truncation would give.
        """
        lat = self.latencies()
        if not lat:
            return None
        index = min(len(lat) - 1, max(0, math.ceil(q * len(lat)) - 1))
        return lat[index]


def simulate_network(
    protocols: list[NDProtocol],
    phases: list[int] | None = None,
    horizon: int = 10_000_000,
    reception_model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    advertising_jitter: int = 0,
    drift_ppm: list[int] | None = None,
    start_times: list[int] | None = None,
    seed: int = 0,
) -> NetworkResult:
    """``S = len(protocols)`` devices discovering each other on one
    collision-prone channel (the Section 5.2.2 / Appendix B scenario).

    ``phases`` default to uniformly random offsets within each device's
    own schedule hyperperiod; pass explicit phases for reproducible
    adversarial placements.  ``start_times`` stagger device boots for
    gradual-join scenarios (a device neither transmits nor listens before
    its start time); discovery timestamps stay on the global clock.
    """
    n = len(protocols)
    if n < 2:
        raise ValueError("need at least two devices")
    rng = random.Random(seed)
    if phases is None:
        phases = []
        for proto in protocols:
            period = 1
            if proto.beacons is not None:
                period = max(period, int(proto.beacons.period))
            if proto.reception is not None:
                period = max(period, int(proto.reception.period))
            phases.append(rng.randrange(period))
    if len(phases) != n:
        raise ValueError("phases must match protocols in length")
    if drift_ppm is not None and len(drift_ppm) != n:
        raise ValueError("drift_ppm must match protocols in length")
    if start_times is not None and len(start_times) != n:
        raise ValueError("start_times must match protocols in length")

    sim = Simulator()
    channel = Channel()
    nodes: list[Node] = []
    for i, (proto, phase) in enumerate(zip(protocols, phases)):
        ppm = drift_ppm[i] if drift_ppm is not None else 0
        clock = (
            DriftingClock(phase=phase, drift_ppm=ppm)
            if ppm
            else IdealClock(phase=phase)
        )
        nodes.append(
            Node(
                f"n{i}",
                proto,
                sim,
                channel,
                clock=clock,
                reception_model=reception_model,
                turnaround=turnaround,
                advertising_jitter=advertising_jitter,
                seed=seed + i,
                start_time=start_times[i] if start_times is not None else 0,
            )
        )
    for node in nodes:
        node.activate()
    sim.run_until(horizon + turnaround + 1)

    result = NetworkResult(n_nodes=n, horizon=horizon)
    for node in nodes:
        for sender_name, time in node.discoveries.items():
            result.discovery_times[(node.name, sender_name)] = time
        result.packets_lost_to_collisions += node.packets_missed_collision
    result.total_transmissions = channel.total_transmissions
    result.total_collisions = channel.total_collisions
    return result


def simulate_pair_mutual_assistance(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    offset: int,
    horizon: int,
    reception_model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    drift_ppm_e: int = 0,
    drift_ppm_f: int = 0,
    advertising_jitter: int = 0,
    seed: int = 0,
) -> DiscoveryOutcome:
    """Pair discovery with *mutual assistance* (Appendix C / Griassdi [13]).

    Each beacon carries the sender's next reception-window time; a device
    that discovers its peer schedules one extra response beacon into that
    announced window, converting a one-way discovery into a two-way one
    within at most one reception period -- "actually a form of
    synchronous connectivity", as the paper puts it.

    Accepts the same fidelity knobs as :func:`simulate_pair` (clock
    drift, advertising jitter, RNG seed) so Appendix-C experiments can
    study assistance under imperfect oscillators.

    Returns the two directed discovery times including assisted
    responses.  The interesting metric is ``two_way``: with assistance it
    tracks ``one_way + T_C`` instead of two independent one-way
    latencies.
    """
    sim = Simulator()
    channel = Channel()
    node_e, node_f = _make_pair(
        protocol_e,
        protocol_f,
        offset,
        sim,
        channel,
        reception_model,
        turnaround,
        drift_ppm_e,
        drift_ppm_f,
        advertising_jitter,
        seed,
    )
    nodes = {"E": node_e, "F": node_f}
    omega_by_node = {
        name: (
            int(node.protocol.beacons.beacons[0].duration)
            if node.protocol.beacons is not None
            else 32
        )
        for name, node in nodes.items()
    }

    def assist(discoverer: Node, sender: Node, time: int) -> None:
        # The discovered packet announced the sender's next window: the
        # discoverer answers inside it (schedules are known to the
        # simulator exactly as the payload would convey them).
        if sender.protocol.reception is None:
            return
        omega = omega_by_node[discoverer.name]
        for window in sender.protocol.reception.iter_windows(
            until=sim.now + 2 * int(sender.protocol.reception.period),
            phase=sender.clock.phase,
        ):
            # Aim at the window's middle so turnaround guards and the
            # sender's own beacons are unlikely to blank the response.
            target = int(window.start) + int(window.duration) // 2
            if target > sim.now + turnaround:
                discoverer.schedule_response_tx(omega, at=target)
                return

    node_e.on_discovery = lambda me, peer, t: assist(me, nodes[peer.name], t)
    node_f.on_discovery = lambda me, peer, t: assist(me, nodes[peer.name], t)
    node_e.activate()
    node_f.activate()
    sim.run_until(horizon + turnaround + 1)
    return DiscoveryOutcome(
        offset=offset,
        e_discovered_by_f=node_f.discoveries.get("E"),
        f_discovered_by_e=node_e.discoveries.get("F"),
    )


@dataclass(frozen=True)
class PairWorstCase:
    """Worst-case discovery of a protocol pair with DES cross-check.

    Since PR 10 every instance carries a provenance block describing
    *how* the verdict was produced (which ladder tiers ran, whether the
    sampled fallback degraded exactness, the budget the planner worked
    against) next to the result itself.  The provenance contract:

    * ``fidelity`` -- the **verdict**, not the request: ``"exact"``
      only when the critical-offset tier swept the complete breakpoint
      set, ``"bounded"`` whenever a sampled sweep stood in for it.
    * ``bound_interval`` -- ``(lo, hi)`` on the worst one-way latency:
      ``lo`` is the observed worst (a lower bound for sampled sweeps,
      the exact value otherwise, ``None`` when nothing discovered),
      ``hi`` the cheapest sound upper bound (``lo`` again when exact;
      else the analytic prediction capped by the horizon).
    * ``tiers`` -- one record per ladder tier in execution order
      (``analytic`` / ``critical`` / ``dense`` / ``des``), each with
      ``ran`` and, for budgeted queries, the planner's ``estimated_ms``
      price -- estimates, never wall-clock, so equal runs compare equal.
    * ``fallback_used`` -- the sampled (dense) tier replaced the exact
      enumeration, whether by guard overflow or by budget.
    """

    analytic: SweepReport
    des_agrees: bool
    """Did the event-driven simulator reproduce the analytic worst case?"""
    offsets_checked: int
    fidelity: str = "exact"
    """Verdict: ``"exact"`` or ``"bounded"`` (see class docstring)."""
    bound_interval: tuple | None = None
    """``(lo, hi)`` bounds on the worst one-way latency."""
    tiers: tuple = ()
    """Per-tier provenance records, in execution order."""
    fallback_used: bool = False
    """Did a sampled sweep replace the exact critical enumeration?"""
    budget_ms: float | None = None
    """The planner's budget for this query; ``None`` = unbudgeted."""


def _select_spot_check_offsets(
    offsets,
    required,
    count: int,
    rng_seed: int = 1234,
) -> list[int]:
    """Deterministic, duplicate-free DES spot-check offset selection.

    Always includes every offset in ``required`` (the sweep's worst
    offsets), then fills up to ``min(count, unique offsets)`` with a
    seeded :meth:`random.Random.sample` over the remaining *unique*
    offsets in first-occurrence order.

    Replaces a rejection loop that drew until the set was full: with
    duplicate-heavy offset lists its target ``min(count, len(offsets))``
    over-counted duplicates, so fewer unique values than ``count`` spun
    it forever, and collision retries made the number of RNG draws an
    accident of the input.  Sampling without replacement from the
    deduplicated pool is exact, draw-count-stable and cannot stall.
    """
    unique = list(dict.fromkeys(offsets))
    chosen = dict.fromkeys(offset for offset in required if offset is not None)
    target = min(count, len(unique))
    remaining = [offset for offset in unique if offset not in chosen]
    need = target - len(chosen)
    if need > 0:
        rng = random.Random(rng_seed)
        chosen.update(
            dict.fromkeys(rng.sample(remaining, min(need, len(remaining))))
        )
    return sorted(chosen)


#: Sentinel distinguishing "caller left the runtime kwarg alone" from an
#: explicit value -- only explicit legacy runtime plumbing deprecation-warns.
_UNSET = object()


def _des_mismatches(checks) -> list[int]:
    """Offsets where the event-driven replay contradicts the analytic
    outcome (either discovery direction)."""
    return [
        analytic_outcome.offset
        for analytic_outcome, des_outcome in checks
        if analytic_outcome.e_discovered_by_f != des_outcome.e_discovered_by_f
        or analytic_outcome.f_discovered_by_e != des_outcome.f_discovered_by_e
    ]


def _one_way_upper(horizon: int, analytic_upper, lo) -> int:
    """Soundest cheap upper bound on the worst one-way latency: the
    analytic prediction capped by the horizon, never below an observed
    ``lo`` (an observation beating the model's bound wins)."""
    hi = int(horizon)
    if analytic_upper is not None:
        hi = min(hi, int(analytic_upper))
    if lo is not None and lo > hi:
        hi = int(lo)
    return hi


def _neighbour_offsets(offsets, anchors, count: int, exclude) -> list[int]:
    """Up to ``count`` already-evaluated offsets nearest (by rank in the
    sorted sweep grid) to the disagreeing ``anchors``, skipping
    ``exclude``.  Deterministic: anchors in sweep-report order, their
    neighbours nearest-first."""
    grid = sorted(dict.fromkeys(offsets))
    index = {offset: i for i, offset in enumerate(grid)}
    taken = set(exclude)
    picked: list[int] = []
    for anchor in anchors:
        centre = index.get(anchor)
        if centre is None:
            continue
        for distance in range(1, len(grid)):
            if len(picked) >= count:
                return picked
            hit = False
            for i in (centre - distance, centre + distance):
                if 0 <= i < len(grid) and grid[i] not in taken:
                    taken.add(grid[i])
                    picked.append(grid[i])
                    hit = True
                    if len(picked) >= count:
                        return picked
            if not hit and (centre - distance < 0
                            and centre + distance >= len(grid)):
                break
    return picked


def _verified_worst_case_impl(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    horizon: int,
    omega: int | None = None,
    reception_model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    max_critical: int = 200_000,
    des_spot_checks: int = 16,
    fallback_samples: int = 4096,
    sweeper=None,
    fidelity: str = "exact",
    budget_ms: float | None = None,
    analytic_upper=None,
) -> PairWorstCase:
    """The worst-case verification engine behind
    :meth:`repro.api.Session.worst_case` (and, through it, the legacy
    :func:`verified_worst_case` shim).

    Two paths, selected by ``budget_ms``:

    * **Unbudgeted** (``budget_ms=None``, the default and the only
      pre-PR-10 behaviour): critical-offset enumeration for exactness,
      falling back to a uniform sweep capped at ``fallback_samples``
      offsets only when the enumeration trips its guard
      (:class:`~repro.backends.base.CriticalSetTooLarge` -- any other
      ``ValueError`` out of a kernel is a genuine bug and propagates),
      then DES spot checks on the most informative offsets.
    * **Budgeted** (``fidelity`` ``"bounded"``/``"auto"`` with a
      budget): the adaptive ladder in :func:`_budgeted_worst_case`.

    ``sweeper`` is the session's configured
    :class:`repro.parallel.ParallelSweep`; its resolved kernel runs
    *both* halves of the setup -- the critical enumeration
    (`critical_offsets(backend=...)`, vectorized under the numpy kernel
    since PR 5) and the offset sweep itself.  The report and the verdict
    are bit-identical for every runtime profile (enumeration, planning
    and spot-check selection are deterministic, each replay is an
    independent computation, and every kernel is pinned against the
    exact reference).
    """
    if sweeper is None:
        from ..parallel import ParallelSweep

        sweeper = ParallelSweep(jobs=1)
    if budget_ms is not None and fidelity in ("bounded", "auto"):
        return _budgeted_worst_case(
            protocol_e, protocol_f, horizon, omega, reception_model,
            turnaround, max_critical, des_spot_checks, sweeper,
            float(budget_ms), analytic_upper,
        )
    exact = True
    fallback_used = False
    try:
        offsets = critical_offsets(
            protocol_e,
            protocol_f,
            omega=omega,
            max_count=max_critical,
            backend=sweeper._resolve_backend(),
            turnaround=turnaround,
        )
        tier_records = [
            {"tier": "critical", "ran": True, "offsets": len(offsets)},
        ]
    except CriticalSetTooLarge:
        exact = False
        fallback_used = True
        hyper = math.lcm(protocol_e.hyperperiod(), protocol_f.hyperperiod())
        step = max(1, hyper // fallback_samples)
        # range(0, hyper, step) yields ceil(hyper / step) offsets, which
        # overshoots whenever fallback_samples does not divide hyper --
        # cap the sample at exactly what the spec asked for.
        offsets = list(range(0, hyper, step))[:fallback_samples]
        tier_records = [
            {"tier": "critical", "ran": False,
             "reason": "critical-set-too-large"},
            {"tier": "dense", "ran": True, "offsets": len(offsets),
             "requested": fallback_samples},
        ]
    report = sweeper.sweep_offsets(
        protocol_e, protocol_f, offsets, horizon, reception_model, turnaround
    )

    # DES cross-check on the most informative offsets: the worst ones
    # plus a deterministic duplicate-free sample of the rest.
    check_offsets = _select_spot_check_offsets(
        offsets,
        (report.worst_offset_one_way, report.worst_offset_two_way),
        des_spot_checks,
    )
    checks = sweeper.spot_check_pairs(
        protocol_e, protocol_f, check_offsets, horizon,
        reception_model, turnaround,
    )
    agrees = not _des_mismatches(checks)
    tier_records.append(
        {"tier": "des", "ran": bool(check_offsets),
         "checks": len(check_offsets), "escalated": False},
    )
    lo = report.worst_one_way
    hi = lo if exact else _one_way_upper(horizon, analytic_upper, lo)
    return PairWorstCase(
        analytic=report,
        des_agrees=agrees,
        offsets_checked=len(offsets),
        fidelity="exact" if exact else "bounded",
        bound_interval=(lo, hi),
        tiers=tuple(tier_records),
        fallback_used=fallback_used,
        budget_ms=None,
    )


def _budgeted_worst_case(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    horizon: int,
    omega: int | None,
    reception_model: ReceptionModel,
    turnaround: int,
    max_critical: int,
    des_spot_checks: int,
    sweeper,
    budget_ms: float,
    analytic_upper,
) -> PairWorstCase:
    """The adaptive fidelity ladder for one budgeted worst-case query.

    Tiers run cheapest-first, each priced by
    :class:`repro.simulation.ladder.LadderPlanner` before it runs:

    1. **analytic** -- free: the predicted worst-case latency (capped by
       the horizon) seeds the upper bound.
    2. **critical** -- the exact enumeration, run only when its implied
       full sweep fits the remaining budget; when it does, the verdict
       is exact and the interval collapses.  The tier is pre-priced from
       :func:`~repro.simulation.ladder.estimate_critical_count` so a
       hopelessly over-budget query never pays the enumeration itself.
    3. **dense** -- otherwise, a prefix-nested low-discrepancy sample
       sized to the budget left after a small DES reserve; its sweep
       maximum is the lower bound.
    4. **des** -- spot checks from the leftover budget, allocated by
       disagreement: half up front (always covering the worst offsets),
       the rest escalated to the neighbours of disagreeing offsets.

    All prices are planner estimates -- never measured wall-clock -- so
    identical queries produce identical provenance.
    """
    from .ladder import (
        estimate_critical_count,
        LadderPlanner,
        low_discrepancy_offsets,
    )

    planner = LadderPlanner(protocol_e, protocol_f, horizon)
    remaining = float(budget_ms)
    hyper = math.lcm(protocol_e.hyperperiod(), protocol_f.hyperperiod())
    upper0 = _one_way_upper(horizon, analytic_upper, None)
    tier_records = [
        {"tier": "analytic", "ran": True, "upper_bound": upper0,
         "estimated_ms": 0.0},
    ]
    offsets = None
    exact = False
    fallback_used = False
    # Pre-price the exact tier from the analytic count estimate: when
    # even the estimated sweep dwarfs the budget, skip the enumeration
    # itself -- on large pairs it costs more than the whole budget.
    guess = estimate_critical_count(protocol_e, protocol_f, hyper)
    guess_ms = planner.sweep_ms(guess)
    candidate = None
    if guess_ms > remaining:
        tier_records.append(
            {"tier": "critical", "ran": False,
             "estimated_offsets": guess, "estimated_ms": guess_ms,
             "reason": "over-budget"},
        )
    else:
        try:
            candidate = critical_offsets(
                protocol_e,
                protocol_f,
                omega=omega,
                max_count=max_critical,
                backend=sweeper._resolve_backend(),
                turnaround=turnaround,
            )
        except CriticalSetTooLarge:
            tier_records.append(
                {"tier": "critical", "ran": False,
                 "reason": "critical-set-too-large"},
            )
    if candidate is not None:
        estimate = planner.sweep_ms(len(candidate))
        if estimate <= remaining:
            offsets = candidate
            exact = True
            remaining -= estimate
            tier_records.append(
                {"tier": "critical", "ran": True,
                 "offsets": len(candidate), "estimated_ms": estimate},
            )
        else:
            tier_records.append(
                {"tier": "critical", "ran": False,
                 "offsets": len(candidate), "estimated_ms": estimate,
                 "reason": "over-budget"},
            )
    if offsets is None:
        fallback_used = True
        size = planner.dense_tier_size(remaining, des_spot_checks, hyper)
        offsets = low_discrepancy_offsets(hyper, size)
        estimate = planner.sweep_ms(len(offsets))
        remaining -= estimate
        tier_records.append(
            {"tier": "dense", "ran": True, "offsets": len(offsets),
             "estimated_ms": estimate},
        )
    report = sweeper.sweep_offsets(
        protocol_e, protocol_f, offsets, horizon, reception_model, turnaround
    )

    # DES spot checks sized to the leftover budget, never the other way
    # round (with the planner's price margin, since replay prices are
    # optimistic on long-hyperperiod pairs); half the allocation replays
    # up front (always covering the worst offsets), the rest only where
    # analytic and DES disagree.
    allocation = planner.spot_check_allocation(remaining, des_spot_checks)
    checked: list[int] = []
    agrees = True
    escalated = False
    if allocation > 0:
        first = max(1, allocation // 2)
        checked = _select_spot_check_offsets(
            offsets,
            (report.worst_offset_one_way, report.worst_offset_two_way),
            first,
        )
        checks = sweeper.spot_check_pairs(
            protocol_e, protocol_f, checked, horizon,
            reception_model, turnaround,
        )
        mismatched = _des_mismatches(checks)
        agrees = not mismatched
        headroom = allocation - len(checked)
        if mismatched and headroom > 0:
            escalated = True
            extra = _neighbour_offsets(
                offsets, mismatched, headroom, exclude=checked
            )
            if extra:
                sweeper.spot_check_pairs(
                    protocol_e, protocol_f, extra, horizon,
                    reception_model, turnaround,
                )
                checked = checked + extra
    tier_records.append(
        {"tier": "des", "ran": bool(checked), "checks": len(checked),
         "allocation": allocation, "escalated": escalated,
         "estimated_ms": planner.checks_ms(len(checked))},
    )
    lo = report.worst_one_way
    hi = lo if exact else _one_way_upper(horizon, analytic_upper, lo)
    return PairWorstCase(
        analytic=report,
        des_agrees=agrees,
        offsets_checked=len(offsets),
        fidelity="exact" if exact else "bounded",
        bound_interval=(lo, hi),
        tiers=tuple(tier_records),
        fallback_used=fallback_used,
        budget_ms=budget_ms,
    )


def verified_worst_case(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    horizon: int,
    omega: int | None = None,
    reception_model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    max_critical: int = 200_000,
    des_spot_checks: int = 16,
    fallback_samples: int = 4096,
    jobs=_UNSET,
    backend=_UNSET,
) -> PairWorstCase:
    """Exact worst-case latency over all phase offsets, cross-validated.

    Thin shim over :meth:`repro.api.Session.worst_case`, kept for the
    pre-Session call shape.  The per-call runtime kwargs (``jobs``,
    ``backend``) are **deprecated**: passing them warns
    (:class:`repro.api.LegacyRuntimeAPIWarning`) and routes through a
    shared legacy session for that runtime shape -- configure a
    :class:`repro.api.RuntimeProfile` once instead.  Results are
    bit-identical to every prior release for every ``jobs``/``backend``
    combination.
    """
    from ..api import RunSpec
    from ..api._compat import legacy_session, warn_legacy

    jobs = 1 if jobs is _UNSET else jobs
    backend = "auto" if backend is _UNSET else backend
    # Only *non-default* runtime plumbing warns: explicitly restating
    # the documented defaults (jobs=1, backend="auto") requests nothing
    # and must not start raising under -W error lanes.
    if jobs != 1 or backend != "auto":
        warn_legacy(
            "verified_worst_case(jobs=..., backend=...)",
            "repro.api.Session.worst_case",
        )
    session = legacy_session(jobs=jobs, backend=backend)
    return session.worst_case(
        RunSpec(
            pair=(protocol_e, protocol_f),
            horizon=horizon,
            omega=omega,
            model=reception_model.value,
            turnaround=turnaround,
            max_critical=max_critical,
            des_spot_checks=des_spot_checks,
            fallback_samples=fallback_samples,
        )
    ).raw


def _run_scenario(
    scenario,
    seed: int,
    reception_model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    advertising_jitter: int = 0,
) -> NetworkResult:
    """Run one :class:`repro.workloads.Scenario` (duck-typed: anything
    with ``protocols``/``phases``/``horizon`` and optional
    ``drift_ppm``/``start_times``) through :func:`simulate_network`."""
    drift = getattr(scenario, "drift_ppm", None) or None
    starts = getattr(scenario, "start_times", None) or None
    return simulate_network(
        scenario.protocols,
        scenario.phases,
        horizon=scenario.horizon,
        reception_model=reception_model,
        turnaround=turnaround,
        advertising_jitter=advertising_jitter,
        drift_ppm=drift,
        start_times=starts,
        seed=seed,
    )


def sweep_network_grid(
    scenarios,
    jobs=_UNSET,
    base_seed: int = 0,
    reception_model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    advertising_jitter: int = 0,
    schedule=_UNSET,
    backend=_UNSET,
) -> list[NetworkResult]:
    """Run every scenario of a grid through the event-driven simulator.

    Thin shim over :meth:`repro.api.Session.grid`, kept for the
    pre-Session call shape.  Results come back in input order; each
    scenario's RNG seed derives from ``(base_seed, its grid index)`` via
    :func:`repro.parallel.derive_seed`, so the output is bit-identical
    for any ``jobs`` value, either ``schedule`` discipline and any
    ``backend`` -- scheduling is invisible to the RNG.

    The per-call runtime kwargs (``jobs``, ``schedule``, ``backend``)
    are **deprecated**: passing them warns
    (:class:`repro.api.LegacyRuntimeAPIWarning`) and routes through a
    shared legacy session for that runtime shape -- configure a
    :class:`repro.api.RuntimeProfile` once instead.  Legacy semantics
    are preserved exactly, including the :attr:`Scenario.backend`
    unanimous-preference resolution when no backend is given.
    """
    from ..api import RunSpec
    from ..api._compat import legacy_session, warn_legacy

    scenarios = list(scenarios)
    # Only *non-default* runtime plumbing warns: explicitly restating
    # the documented defaults (jobs=1, schedule="steal", backend=None)
    # requests nothing and must not start raising under -W error lanes.
    runtime_given = (
        jobs not in (_UNSET, 1)
        or schedule not in (_UNSET, "steal")
        or backend not in (_UNSET, None)
    )
    jobs = 1 if jobs is _UNSET else jobs
    schedule = "steal" if schedule is _UNSET else schedule
    if backend is _UNSET or backend is None:
        hints = {
            getattr(scenario, "backend", None) for scenario in scenarios
        } - {None}
        backend = hints.pop() if len(hints) == 1 else "auto"
    if runtime_given:
        warn_legacy(
            "sweep_network_grid(jobs=..., schedule=..., backend=...)",
            "repro.api.Session.grid",
        )
    session = legacy_session(jobs=jobs, schedule=schedule, backend=backend)
    return session.grid(
        RunSpec(
            grid=scenarios,
            seed=base_seed,
            model=reception_model.value,
            turnaround=turnaround,
            advertising_jitter=advertising_jitter,
        )
    ).raw
