"""Experiment drivers: pair simulations, offset sweeps and networks.

Three levels of fidelity:

* :func:`simulate_pair` -- full event-driven run of two nodes (supports
  drift, jitter, turnaround; collisions cannot occur with only one
  transmitter audible per receiver pair unless both transmit, which the
  channel handles).
* :func:`simulate_network` -- ``S`` devices discovering each other
  simultaneously on one collision-prone channel (the Appendix-B
  scenario).
* The exact analytic sweep lives in :mod:`repro.simulation.analytic`;
  :func:`verified_worst_case` cross-checks DES against analytic results
  on critical offsets.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..core.sequences import NDProtocol
from .analytic import (
    critical_offsets,
    DiscoveryOutcome,
    ReceptionModel,
    SweepReport,
)
from .channel import Channel
from .clock import DriftingClock, IdealClock
from .engine import Simulator
from .node import Node

__all__ = [
    "simulate_pair",
    "simulate_network",
    "NetworkResult",
    "sweep_network_grid",
    "verified_worst_case",
    "PairWorstCase",
]


def _make_pair(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    offset: int,
    sim: Simulator,
    channel: Channel,
    reception_model: ReceptionModel,
    turnaround: int,
    drift_ppm_e: int,
    drift_ppm_f: int,
    advertising_jitter: int,
    seed: int,
) -> tuple[Node, Node]:
    """Build the canonical two-device setup: E at phase 0, F at phase
    ``offset``, node seeds ``seed``/``seed + 1`` -- shared by every pair
    runner so the fidelity knobs cannot diverge between them again."""
    clock_e = (
        DriftingClock(phase=0, drift_ppm=drift_ppm_e)
        if drift_ppm_e
        else IdealClock(phase=0)
    )
    clock_f = (
        DriftingClock(phase=offset, drift_ppm=drift_ppm_f)
        if drift_ppm_f
        else IdealClock(phase=offset)
    )
    node_e = Node(
        "E",
        protocol_e,
        sim,
        channel,
        clock=clock_e,
        reception_model=reception_model,
        turnaround=turnaround,
        advertising_jitter=advertising_jitter,
        seed=seed,
    )
    node_f = Node(
        "F",
        protocol_f,
        sim,
        channel,
        clock=clock_f,
        reception_model=reception_model,
        turnaround=turnaround,
        advertising_jitter=advertising_jitter,
        seed=seed + 1,
    )
    return node_e, node_f


def simulate_pair(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    offset: int,
    horizon: int,
    reception_model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    drift_ppm_e: int = 0,
    drift_ppm_f: int = 0,
    advertising_jitter: int = 0,
    seed: int = 0,
) -> DiscoveryOutcome:
    """Event-driven discovery between two devices.

    Device E runs at phase 0, device F at phase ``offset``; both are in
    range from time 0.  Returns first-decode times per direction (packet
    start timestamps), ``None`` for directions not discovered within
    ``horizon``.
    """
    sim = Simulator()
    channel = Channel()
    node_e, node_f = _make_pair(
        protocol_e,
        protocol_f,
        offset,
        sim,
        channel,
        reception_model,
        turnaround,
        drift_ppm_e,
        drift_ppm_f,
        advertising_jitter,
        seed,
    )
    node_e.activate()
    node_f.activate()
    # Slack covers decode decisions deferred past the last packet end.
    sim.run_until(horizon + turnaround + 1)
    return DiscoveryOutcome(
        offset=offset,
        e_discovered_by_f=node_f.discoveries.get("E"),
        f_discovered_by_e=node_e.discoveries.get("F"),
    )


@dataclass
class NetworkResult:
    """Outcome of a multi-device discovery scenario."""

    n_nodes: int
    horizon: int
    discovery_times: dict[tuple[str, str], int] = field(default_factory=dict)
    """``(receiver, sender) -> time`` for every completed discovery."""
    total_transmissions: int = 0
    total_collisions: int = 0
    packets_lost_to_collisions: int = 0

    @property
    def pairs_expected(self) -> int:
        """Directed pairs that could discover each other."""
        return self.n_nodes * (self.n_nodes - 1)

    @property
    def pairs_discovered(self) -> int:
        """Directed pairs that completed discovery within the horizon."""
        return len(self.discovery_times)

    @property
    def discovery_rate(self) -> float:
        """Fraction of directed pairs discovered."""
        if self.pairs_expected == 0:
            return 1.0
        return self.pairs_discovered / self.pairs_expected

    def latencies(self) -> list[int]:
        """All completed discovery latencies, sorted ascending."""
        return sorted(self.discovery_times.values())

    def quantile(self, q: float) -> int | None:
        """Latency quantile over *completed* discoveries (``None`` if no
        discovery completed).

        Nearest-rank semantics (matching
        :func:`repro.analysis.stats._quantile`): the smallest latency
        whose rank is at least ``q * n``, i.e. index ``ceil(q*n) - 1``,
        clamped to the sample.  ``quantile(0.5)`` over ``[1, 2, 3, 4]``
        is therefore 2 -- the value at rank 2 -- not 3 as naive
        ``int(q*n)`` truncation would give.
        """
        lat = self.latencies()
        if not lat:
            return None
        index = min(len(lat) - 1, max(0, math.ceil(q * len(lat)) - 1))
        return lat[index]


def simulate_network(
    protocols: list[NDProtocol],
    phases: list[int] | None = None,
    horizon: int = 10_000_000,
    reception_model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    advertising_jitter: int = 0,
    drift_ppm: list[int] | None = None,
    start_times: list[int] | None = None,
    seed: int = 0,
) -> NetworkResult:
    """``S = len(protocols)`` devices discovering each other on one
    collision-prone channel (the Section 5.2.2 / Appendix B scenario).

    ``phases`` default to uniformly random offsets within each device's
    own schedule hyperperiod; pass explicit phases for reproducible
    adversarial placements.  ``start_times`` stagger device boots for
    gradual-join scenarios (a device neither transmits nor listens before
    its start time); discovery timestamps stay on the global clock.
    """
    n = len(protocols)
    if n < 2:
        raise ValueError("need at least two devices")
    rng = random.Random(seed)
    if phases is None:
        phases = []
        for proto in protocols:
            period = 1
            if proto.beacons is not None:
                period = max(period, int(proto.beacons.period))
            if proto.reception is not None:
                period = max(period, int(proto.reception.period))
            phases.append(rng.randrange(period))
    if len(phases) != n:
        raise ValueError("phases must match protocols in length")
    if drift_ppm is not None and len(drift_ppm) != n:
        raise ValueError("drift_ppm must match protocols in length")
    if start_times is not None and len(start_times) != n:
        raise ValueError("start_times must match protocols in length")

    sim = Simulator()
    channel = Channel()
    nodes: list[Node] = []
    for i, (proto, phase) in enumerate(zip(protocols, phases)):
        ppm = drift_ppm[i] if drift_ppm is not None else 0
        clock = (
            DriftingClock(phase=phase, drift_ppm=ppm)
            if ppm
            else IdealClock(phase=phase)
        )
        nodes.append(
            Node(
                f"n{i}",
                proto,
                sim,
                channel,
                clock=clock,
                reception_model=reception_model,
                turnaround=turnaround,
                advertising_jitter=advertising_jitter,
                seed=seed + i,
                start_time=start_times[i] if start_times is not None else 0,
            )
        )
    for node in nodes:
        node.activate()
    sim.run_until(horizon + turnaround + 1)

    result = NetworkResult(n_nodes=n, horizon=horizon)
    for node in nodes:
        for sender_name, time in node.discoveries.items():
            result.discovery_times[(node.name, sender_name)] = time
        result.packets_lost_to_collisions += node.packets_missed_collision
    result.total_transmissions = channel.total_transmissions
    result.total_collisions = channel.total_collisions
    return result


def simulate_pair_mutual_assistance(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    offset: int,
    horizon: int,
    reception_model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    drift_ppm_e: int = 0,
    drift_ppm_f: int = 0,
    advertising_jitter: int = 0,
    seed: int = 0,
) -> DiscoveryOutcome:
    """Pair discovery with *mutual assistance* (Appendix C / Griassdi [13]).

    Each beacon carries the sender's next reception-window time; a device
    that discovers its peer schedules one extra response beacon into that
    announced window, converting a one-way discovery into a two-way one
    within at most one reception period -- "actually a form of
    synchronous connectivity", as the paper puts it.

    Accepts the same fidelity knobs as :func:`simulate_pair` (clock
    drift, advertising jitter, RNG seed) so Appendix-C experiments can
    study assistance under imperfect oscillators.

    Returns the two directed discovery times including assisted
    responses.  The interesting metric is ``two_way``: with assistance it
    tracks ``one_way + T_C`` instead of two independent one-way
    latencies.
    """
    sim = Simulator()
    channel = Channel()
    node_e, node_f = _make_pair(
        protocol_e,
        protocol_f,
        offset,
        sim,
        channel,
        reception_model,
        turnaround,
        drift_ppm_e,
        drift_ppm_f,
        advertising_jitter,
        seed,
    )
    nodes = {"E": node_e, "F": node_f}
    omega_by_node = {
        name: (
            int(node.protocol.beacons.beacons[0].duration)
            if node.protocol.beacons is not None
            else 32
        )
        for name, node in nodes.items()
    }

    def assist(discoverer: Node, sender: Node, time: int) -> None:
        # The discovered packet announced the sender's next window: the
        # discoverer answers inside it (schedules are known to the
        # simulator exactly as the payload would convey them).
        if sender.protocol.reception is None:
            return
        omega = omega_by_node[discoverer.name]
        for window in sender.protocol.reception.iter_windows(
            until=sim.now + 2 * int(sender.protocol.reception.period),
            phase=sender.clock.phase,
        ):
            # Aim at the window's middle so turnaround guards and the
            # sender's own beacons are unlikely to blank the response.
            target = int(window.start) + int(window.duration) // 2
            if target > sim.now + turnaround:
                discoverer.schedule_response_tx(omega, at=target)
                return

    node_e.on_discovery = lambda me, peer, t: assist(me, nodes[peer.name], t)
    node_f.on_discovery = lambda me, peer, t: assist(me, nodes[peer.name], t)
    node_e.activate()
    node_f.activate()
    sim.run_until(horizon + turnaround + 1)
    return DiscoveryOutcome(
        offset=offset,
        e_discovered_by_f=node_f.discoveries.get("E"),
        f_discovered_by_e=node_e.discoveries.get("F"),
    )


@dataclass(frozen=True)
class PairWorstCase:
    """Exact worst-case discovery of a protocol pair with DES cross-check."""

    analytic: SweepReport
    des_agrees: bool
    """Did the event-driven simulator reproduce the analytic worst case?"""
    offsets_checked: int


def _select_spot_check_offsets(
    offsets,
    required,
    count: int,
    rng_seed: int = 1234,
) -> list[int]:
    """Deterministic, duplicate-free DES spot-check offset selection.

    Always includes every offset in ``required`` (the sweep's worst
    offsets), then fills up to ``min(count, unique offsets)`` with a
    seeded :meth:`random.Random.sample` over the remaining *unique*
    offsets in first-occurrence order.

    Replaces a rejection loop that drew until the set was full: with
    duplicate-heavy offset lists its target ``min(count, len(offsets))``
    over-counted duplicates, so fewer unique values than ``count`` spun
    it forever, and collision retries made the number of RNG draws an
    accident of the input.  Sampling without replacement from the
    deduplicated pool is exact, draw-count-stable and cannot stall.
    """
    unique = list(dict.fromkeys(offsets))
    chosen = dict.fromkeys(offset for offset in required if offset is not None)
    target = min(count, len(unique))
    remaining = [offset for offset in unique if offset not in chosen]
    need = target - len(chosen)
    if need > 0:
        rng = random.Random(rng_seed)
        chosen.update(
            dict.fromkeys(rng.sample(remaining, min(need, len(remaining))))
        )
    return sorted(chosen)


#: Sentinel distinguishing "caller left the runtime kwarg alone" from an
#: explicit value -- only explicit legacy runtime plumbing deprecation-warns.
_UNSET = object()


def _verified_worst_case_impl(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    horizon: int,
    omega: int | None = None,
    reception_model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    max_critical: int = 200_000,
    des_spot_checks: int = 16,
    fallback_samples: int = 4096,
    sweeper=None,
) -> PairWorstCase:
    """The worst-case verification engine behind
    :meth:`repro.api.Session.worst_case` (and, through it, the legacy
    :func:`verified_worst_case` shim).

    Uses the critical-offset enumeration for exactness (falling back to a
    uniform sweep when the critical set explodes), then replays a handful
    of offsets -- including the worst ones -- through the event-driven
    simulator and checks for exact agreement.  ``sweeper`` is the
    session's configured :class:`repro.parallel.ParallelSweep`; its
    resolved kernel runs *both* halves of the setup -- the critical
    enumeration (`critical_offsets(backend=...)`, vectorized under the
    numpy kernel since PR 5) and the offset sweep itself.  The report
    and the verdict are bit-identical for every runtime profile
    (enumeration and spot-check selection are deterministic, each
    replay is an independent computation, and every kernel is pinned
    against the exact reference).
    """
    if sweeper is None:
        from ..parallel import ParallelSweep

        sweeper = ParallelSweep(jobs=1)
    try:
        offsets = critical_offsets(
            protocol_e,
            protocol_f,
            omega=omega,
            max_count=max_critical,
            backend=sweeper._resolve_backend(),
            turnaround=turnaround,
        )
    except ValueError:
        hyper = math.lcm(protocol_e.hyperperiod(), protocol_f.hyperperiod())
        step = max(1, hyper // fallback_samples)
        offsets = list(range(0, hyper, step))
    report = sweeper.sweep_offsets(
        protocol_e, protocol_f, offsets, horizon, reception_model, turnaround
    )

    # DES cross-check on the most informative offsets: the worst ones
    # plus a deterministic duplicate-free sample of the rest.
    check_offsets = _select_spot_check_offsets(
        offsets,
        (report.worst_offset_one_way, report.worst_offset_two_way),
        des_spot_checks,
    )
    checks = sweeper.spot_check_pairs(
        protocol_e, protocol_f, check_offsets, horizon,
        reception_model, turnaround,
    )
    agrees = all(
        analytic_outcome.e_discovered_by_f == des_outcome.e_discovered_by_f
        and analytic_outcome.f_discovered_by_e == des_outcome.f_discovered_by_e
        for analytic_outcome, des_outcome in checks
    )
    return PairWorstCase(
        analytic=report, des_agrees=agrees, offsets_checked=len(offsets)
    )


def verified_worst_case(
    protocol_e: NDProtocol,
    protocol_f: NDProtocol,
    horizon: int,
    omega: int | None = None,
    reception_model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    max_critical: int = 200_000,
    des_spot_checks: int = 16,
    fallback_samples: int = 4096,
    jobs=_UNSET,
    backend=_UNSET,
) -> PairWorstCase:
    """Exact worst-case latency over all phase offsets, cross-validated.

    Thin shim over :meth:`repro.api.Session.worst_case`, kept for the
    pre-Session call shape.  The per-call runtime kwargs (``jobs``,
    ``backend``) are **deprecated**: passing them warns
    (:class:`repro.api.LegacyRuntimeAPIWarning`) and routes through a
    shared legacy session for that runtime shape -- configure a
    :class:`repro.api.RuntimeProfile` once instead.  Results are
    bit-identical to every prior release for every ``jobs``/``backend``
    combination.
    """
    from ..api import RunSpec
    from ..api._compat import legacy_session, warn_legacy

    jobs = 1 if jobs is _UNSET else jobs
    backend = "auto" if backend is _UNSET else backend
    # Only *non-default* runtime plumbing warns: explicitly restating
    # the documented defaults (jobs=1, backend="auto") requests nothing
    # and must not start raising under -W error lanes.
    if jobs != 1 or backend != "auto":
        warn_legacy(
            "verified_worst_case(jobs=..., backend=...)",
            "repro.api.Session.worst_case",
        )
    session = legacy_session(jobs=jobs, backend=backend)
    return session.worst_case(
        RunSpec(
            pair=(protocol_e, protocol_f),
            horizon=horizon,
            omega=omega,
            model=reception_model.value,
            turnaround=turnaround,
            max_critical=max_critical,
            des_spot_checks=des_spot_checks,
            fallback_samples=fallback_samples,
        )
    ).raw


def _run_scenario(
    scenario,
    seed: int,
    reception_model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    advertising_jitter: int = 0,
) -> NetworkResult:
    """Run one :class:`repro.workloads.Scenario` (duck-typed: anything
    with ``protocols``/``phases``/``horizon`` and optional
    ``drift_ppm``/``start_times``) through :func:`simulate_network`."""
    drift = getattr(scenario, "drift_ppm", None) or None
    starts = getattr(scenario, "start_times", None) or None
    return simulate_network(
        scenario.protocols,
        scenario.phases,
        horizon=scenario.horizon,
        reception_model=reception_model,
        turnaround=turnaround,
        advertising_jitter=advertising_jitter,
        drift_ppm=drift,
        start_times=starts,
        seed=seed,
    )


def sweep_network_grid(
    scenarios,
    jobs=_UNSET,
    base_seed: int = 0,
    reception_model: ReceptionModel = ReceptionModel.POINT,
    turnaround: int = 0,
    advertising_jitter: int = 0,
    schedule=_UNSET,
    backend=_UNSET,
) -> list[NetworkResult]:
    """Run every scenario of a grid through the event-driven simulator.

    Thin shim over :meth:`repro.api.Session.grid`, kept for the
    pre-Session call shape.  Results come back in input order; each
    scenario's RNG seed derives from ``(base_seed, its grid index)`` via
    :func:`repro.parallel.derive_seed`, so the output is bit-identical
    for any ``jobs`` value, either ``schedule`` discipline and any
    ``backend`` -- scheduling is invisible to the RNG.

    The per-call runtime kwargs (``jobs``, ``schedule``, ``backend``)
    are **deprecated**: passing them warns
    (:class:`repro.api.LegacyRuntimeAPIWarning`) and routes through a
    shared legacy session for that runtime shape -- configure a
    :class:`repro.api.RuntimeProfile` once instead.  Legacy semantics
    are preserved exactly, including the :attr:`Scenario.backend`
    unanimous-preference resolution when no backend is given.
    """
    from ..api import RunSpec
    from ..api._compat import legacy_session, warn_legacy

    scenarios = list(scenarios)
    # Only *non-default* runtime plumbing warns: explicitly restating
    # the documented defaults (jobs=1, schedule="steal", backend=None)
    # requests nothing and must not start raising under -W error lanes.
    runtime_given = (
        jobs not in (_UNSET, 1)
        or schedule not in (_UNSET, "steal")
        or backend not in (_UNSET, None)
    )
    jobs = 1 if jobs is _UNSET else jobs
    schedule = "steal" if schedule is _UNSET else schedule
    if backend is _UNSET or backend is None:
        hints = {
            getattr(scenario, "backend", None) for scenario in scenarios
        } - {None}
        backend = hints.pop() if len(hints) == 1 else "auto"
    if runtime_given:
        warn_legacy(
            "sweep_network_grid(jobs=..., schedule=..., backend=...)",
            "repro.api.Session.grid",
        )
    session = legacy_session(jobs=jobs, schedule=schedule, backend=backend)
    return session.grid(
        RunSpec(
            grid=scenarios,
            seed=base_seed,
            model=reception_model.value,
            turnaround=turnaround,
            advertising_jitter=advertising_jitter,
        )
    ).raw
