"""Clock models: ideal and ppm-drifting local clocks.

ND protocols are asynchronous by definition -- no common time base -- but
real crystals additionally *drift*: a +-20..50 ppm rate error is typical
for the sleep-clock crystals of BLE-class devices.  Drift perturbs the
perfect periodicity the bounds assume; the robustness experiments use
:class:`DriftingClock` to measure how much of the theoretical guarantee
survives imperfect oscillators.

Conversions are exact on the integer grid: local time is mapped to
global microseconds with rational arithmetic and rounding, so a clock
with ``drift_ppm=0`` is bit-identical to :class:`IdealClock`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

__all__ = ["IdealClock", "DriftingClock"]


@dataclass(frozen=True)
class IdealClock:
    """A perfect clock: local time == global time, plus a phase offset."""

    phase: int = 0
    """Global time at which the device's local time is zero."""

    def to_global(self, local_time: int) -> int:
        """Map a local timestamp to global simulation time."""
        return local_time + self.phase

    def to_local(self, global_time: int) -> int:
        """Map a global timestamp to the device's local time."""
        return global_time - self.phase


@dataclass(frozen=True)
class DriftingClock:
    """A clock running fast or slow by ``drift_ppm`` parts per million.

    A device that believes ``t_local`` microseconds elapsed has really
    seen ``t_local * (1 + drift_ppm * 1e-6)`` global microseconds: a
    positive ppm means the crystal is *slow* (local events spread out in
    global time).
    """

    phase: int = 0
    drift_ppm: int = 0

    def _rate(self) -> Fraction:
        return 1 + Fraction(self.drift_ppm, 1_000_000)

    def to_global(self, local_time: int) -> int:
        """Map local to global time (rounded to the integer grid)."""
        return self.phase + round(local_time * self._rate())

    def to_local(self, global_time: int) -> int:
        """Map global to local time (rounded to the integer grid)."""
        return round((global_time - self.phase) / self._rate())
