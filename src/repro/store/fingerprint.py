"""Content-addressed fingerprints for ``(verb, RunSpec)`` pairs.

The fingerprint is the store key: sha256 over the compact, key-sorted
JSON of ``{"format": 1, "verb": <verb>, "spec": <canonical spec>}``.

Two invariance guarantees define the contract:

* **Runtime invariance** -- :class:`repro.api.RuntimeProfile` never
  enters the hash.  Results are bit-identical across backend/jobs/
  schedule/mp_context by the kernel-equivalence gates, so runtime knobs
  must not split the cache.
* **Spelling invariance** -- the spec payload is ``RunSpec.to_dict()``
  (tuples normalized to lists, so JSON round-trips of the same spec
  hash identically), with the declarative ``pair`` description replaced
  by its schema-canonical form
  (:func:`repro.protocols.canonical_pair`): filled-in constructor
  defaults, so ``{"kind": "symmetric"}`` and its fully-spelled
  equivalent address the same entry, and fingerprints derive from
  constructor schemas rather than import paths.

Specs holding live objects (protocol instances, Scenario lists) have no
declarative identity and raise :class:`~repro.api.SpecError` -- callers
treat that as "not storable" and bypass the store.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping

from ..api.spec import SpecError

__all__ = ["FINGERPRINT_FORMAT", "canonical_run_payload", "run_fingerprint"]

#: Bumping this invalidates every existing store entry; do so whenever
#: a semantic change makes old payloads incomparable to new ones.
FINGERPRINT_FORMAT = 1


def canonical_run_payload(verb: str, spec) -> dict:
    """The exact JSON-shaped payload the fingerprint hashes.

    Raises :class:`SpecError` when the spec cannot be serialized (live
    objects in declarative slots).
    """
    payload = spec.to_dict()
    pair = payload.get("pair")
    if isinstance(pair, Mapping) and "kind" in pair:
        from ..protocols.registry import canonical_pair

        payload["pair"] = canonical_pair(pair)
    return {"format": FINGERPRINT_FORMAT, "verb": str(verb), "spec": payload}


def run_fingerprint(verb: str, spec) -> str:
    """The sha256 hex fingerprint addressing ``(verb, spec)``."""
    payload = canonical_run_payload(verb, spec)
    try:
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SpecError(
            f"spec is not JSON-serializable and cannot be fingerprinted: {exc}"
        ) from exc
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
