"""The content-addressed :class:`ResultStore`.

See :mod:`repro.store` for the layout and fingerprint contract.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path

from ..api.result import RunResult, rehydrate_raw
from .fingerprint import FINGERPRINT_FORMAT, run_fingerprint

__all__ = ["ResultStore", "DEFAULT_STORE_ROOT"]

#: The repository-conventional store location (next to the pinned CSVs).
DEFAULT_STORE_ROOT = "results/store"


class ResultStore:
    """Content-addressed, crash-tolerant persistence for
    :class:`~repro.api.RunResult`.

    * **Atomic writes** -- entries are written to a temp file in the
      destination directory and ``os.replace``d into place, so a reader
      (or a concurrent writer) never observes a torn entry; last writer
      wins with identical content, since the key is content-addressed.
    * **In-process LRU** -- the hottest ``memory_entries`` results are
      served without touching disk.
    * **On-disk eviction** -- :meth:`gc` applies TTL (age since last
      access) then LRU (keep the ``max_entries`` most recently used);
      reads ``touch`` their entry so recency tracks use, not creation.
    * **Corruption tolerance** -- an unreadable or mismatched entry is
      moved to ``quarantine/`` and reported as a miss, never raised.
    * **Copy semantics** -- :meth:`get` returns a *private*
      :class:`RunResult` on every call (memory hits are detached deep
      copies, never the LRU's own object) and :meth:`put` remembers a
      detached snapshot, never the caller's live result.  Mutating a
      returned result -- its ``payload``, its ``store_meta`` -- can
      therefore never contaminate another caller or the persisted
      entry.
    * **Thread safety** -- one store instance may be shared across
      threads (the parallel :class:`~repro.campaign.CampaignRunner`
      does exactly that): the in-process LRU and the ``stats`` counters
      are lock-protected, writes are atomic at the filesystem level,
      and concurrent ``put`` under one fingerprint is last-writer-wins
      -- harmless by construction, since the key is content-addressed
      and both writers carry the same numbers.
    """

    def __init__(
        self,
        root=DEFAULT_STORE_ROOT,
        memory_entries: int = 128,
        max_entries: int | None = None,
        ttl_seconds: float | None = None,
    ) -> None:
        self.root = Path(root)
        self.memory_entries = int(memory_entries)
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._memory: OrderedDict[str, RunResult] = OrderedDict()
        self._lock = threading.RLock()
        self.stats = {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0}

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(verb: str, spec) -> str:
        """Delegates to :func:`repro.store.run_fingerprint`."""
        return run_fingerprint(verb, spec)

    def _object_path(self, fingerprint: str) -> Path:
        return self.root / "objects" / fingerprint[:2] / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> RunResult | None:
        """The stored result for ``fingerprint``, or ``None`` on miss.

        Every hit returns a **private copy**: memory hits clone the
        LRU's detached snapshot (and rehydrate ``raw`` from the cloned
        payload), disk hits are freshly parsed.  Callers may freely
        mutate the returned result -- attach ``store_meta``, edit the
        payload -- without contaminating other callers or the store.
        """
        with self._lock:
            cached = self._memory.get(fingerprint)
            if cached is not None:
                self._memory.move_to_end(fingerprint)
                self.stats["hits"] += 1
        if cached is not None:
            # Clone outside the lock: snapshots in the LRU are never
            # mutated after insertion, so the deep copy needs no guard.
            result = cached.clone()
            result.raw = rehydrate_raw(result.verb, result.payload)
            return result
        path = self._object_path(fingerprint)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("format") != FINGERPRINT_FORMAT:
                raise ValueError(f"unknown entry format {payload.get('format')!r}")
            if payload.get("fingerprint") != fingerprint:
                raise ValueError("entry fingerprint does not match its path")
            result = RunResult.from_dict(payload["result"])
        except FileNotFoundError:
            with self._lock:
                self.stats["misses"] += 1
            return None
        except OSError:
            with self._lock:
                self.stats["misses"] += 1
            return None
        except (json.JSONDecodeError, ValueError, KeyError, TypeError):
            self._quarantine(path)
            with self._lock:
                self.stats["misses"] += 1
            return None
        result.raw = rehydrate_raw(result.verb, result.payload)
        try:
            os.utime(path)  # recency for the on-disk LRU
        except OSError:
            pass
        with self._lock:
            self._remember(fingerprint, result.clone())
            self.stats["hits"] += 1
        return result

    def put(self, fingerprint: str, result: RunResult) -> Path:
        """Persist ``result`` under ``fingerprint`` atomically.

        The in-process LRU remembers a **detached snapshot**, so the
        caller keeps exclusive ownership of ``result`` -- mutating it
        afterwards (the session attaches ``store_meta``, consumers may
        edit payloads in place) never reaches the store.  Concurrent
        ``put`` under one fingerprint is last-writer-wins: both the
        ``os.replace`` and the LRU insert are atomic, and a
        content-addressed key means both writers carry the same
        numbers, so either order leaves a consistent entry.
        """
        path = self._object_path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "format": FINGERPRINT_FORMAT,
            "fingerprint": fingerprint,
            "saved_unix": time.time(),
            "result": result.to_dict(),
        }
        blob = json.dumps(envelope, indent=2, sort_keys=True) + "\n"
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{fingerprint[:12]}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(blob)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        with self._lock:
            self._remember(fingerprint, result.clone())
            self.stats["writes"] += 1
        return path

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._memory:
                return True
        return self._object_path(fingerprint).exists()

    def known_fingerprints(self) -> set[str]:
        """Every fingerprint currently persisted on disk."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return set()
        return {path.stem for path in objects.glob("*/*.json")}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats_payload(self) -> dict:
        """One JSON-shaped snapshot of the store's state: on-disk
        object count and total bytes, quarantine count, the in-process
        memory LRU's occupancy/limit, and the lifetime hit/miss/write/
        corrupt counters (``repro-nd store stats`` and the service
        ``stats`` verb both serve exactly this)."""
        objects = self.root / "objects"
        count = 0
        total_bytes = 0
        if objects.is_dir():
            for path in objects.glob("*/*.json"):
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue  # racing a concurrent gc: skip, don't crash
                count += 1
        quarantine = self.root / "quarantine"
        quarantined = (
            sum(1 for _ in quarantine.glob("*.json"))
            if quarantine.is_dir()
            else 0
        )
        with self._lock:
            counters = dict(self.stats)
            memory_entries = len(self._memory)
        return {
            "root": str(self.root),
            "objects": count,
            "total_bytes": total_bytes,
            "quarantined": quarantined,
            "memory": {
                "entries": memory_entries,
                "limit": self.memory_entries,
            },
            "counters": counters,
        }

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def gc(
        self,
        max_entries: int | None = None,
        ttl_seconds: float | None = None,
        dry_run: bool = False,
    ) -> dict:
        """Apply TTL then LRU eviction to the on-disk store.

        Arguments default to the limits configured at construction; both
        ``None`` means the scan is a no-op beyond reporting.  Recency is
        file mtime, which :meth:`get` refreshes on every disk read.

        The report accounts for every entry exactly once: ``scanned``
        is the number of entries enumerated, ``removed`` the doomed
        entries actually unlinked, ``failed`` the doomed entries whose
        unlink raised (they stay on disk, but are dropped from the
        in-process LRU either way -- a doomed entry must not keep being
        served from memory), and ``kept`` the survivors, with
        ``scanned == len(removed) + len(failed) + kept``.
        """
        if max_entries is None:
            max_entries = self.max_entries
        if ttl_seconds is None:
            ttl_seconds = self.ttl_seconds
        objects = self.root / "objects"
        entries = []
        if objects.is_dir():
            for path in objects.glob("*/*.json"):
                try:
                    entries.append((path.stat().st_mtime, path))
                except OSError:
                    continue
        entries.sort()  # oldest first
        scanned = len(entries)
        now = time.time()
        doomed = []
        if ttl_seconds is not None:
            fresh = []
            for mtime, path in entries:
                if now - mtime > ttl_seconds:
                    doomed.append(path)
                else:
                    fresh.append((mtime, path))
            entries = fresh
        if max_entries is not None and len(entries) > max_entries:
            excess = len(entries) - max_entries
            doomed.extend(path for _, path in entries[:excess])
            entries = entries[excess:]
        removed = []
        failed = []
        for path in doomed:
            if dry_run:
                removed.append(path.stem)
                continue
            # Doomed entries leave the memory LRU whether or not the
            # unlink below succeeds: an entry past its TTL/LRU budget
            # must not keep being served from memory.
            with self._lock:
                self._memory.pop(path.stem, None)
            try:
                path.unlink()
            except OSError:
                failed.append(path.stem)
                continue
            removed.append(path.stem)
        return {
            "scanned": scanned,
            "removed": removed,
            "failed": failed,
            "kept": len(entries),
            "dry_run": dry_run,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _remember(self, fingerprint: str, result: RunResult) -> None:
        """Insert a *detached* snapshot into the LRU (caller holds
        ``_lock`` and has already cloned; snapshots are never mutated
        after insertion, which is what makes lock-free reads of a
        popped snapshot safe)."""
        if self.memory_entries <= 0:
            return
        self._memory[fingerprint] = result
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is diagnosable but inert."""
        with self._lock:
            self.stats["corrupt"] += 1
        target = self.root / "quarantine" / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def __repr__(self) -> str:
        return (
            f"ResultStore(root={str(self.root)!r}, "
            f"memory_entries={self.memory_entries})"
        )
