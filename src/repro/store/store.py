"""The content-addressed :class:`ResultStore`.

See :mod:`repro.store` for the layout and fingerprint contract.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import OrderedDict
from pathlib import Path

from ..api.result import RunResult, rehydrate_raw
from .fingerprint import FINGERPRINT_FORMAT, run_fingerprint

__all__ = ["ResultStore", "DEFAULT_STORE_ROOT"]

#: The repository-conventional store location (next to the pinned CSVs).
DEFAULT_STORE_ROOT = "results/store"


class ResultStore:
    """Content-addressed, crash-tolerant persistence for
    :class:`~repro.api.RunResult`.

    * **Atomic writes** -- entries are written to a temp file in the
      destination directory and ``os.replace``d into place, so a reader
      (or a concurrent writer) never observes a torn entry; last writer
      wins with identical content, since the key is content-addressed.
    * **In-process LRU** -- the hottest ``memory_entries`` results are
      served without touching disk.
    * **On-disk eviction** -- :meth:`gc` applies TTL (age since last
      access) then LRU (keep the ``max_entries`` most recently used);
      reads ``touch`` their entry so recency tracks use, not creation.
    * **Corruption tolerance** -- an unreadable or mismatched entry is
      moved to ``quarantine/`` and reported as a miss, never raised.
    """

    def __init__(
        self,
        root=DEFAULT_STORE_ROOT,
        memory_entries: int = 128,
        max_entries: int | None = None,
        ttl_seconds: float | None = None,
    ) -> None:
        self.root = Path(root)
        self.memory_entries = int(memory_entries)
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._memory: OrderedDict[str, RunResult] = OrderedDict()
        self.stats = {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0}

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(verb: str, spec) -> str:
        """Delegates to :func:`repro.store.run_fingerprint`."""
        return run_fingerprint(verb, spec)

    def _object_path(self, fingerprint: str) -> Path:
        return self.root / "objects" / fingerprint[:2] / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> RunResult | None:
        """The stored result for ``fingerprint``, or ``None`` on miss."""
        cached = self._memory.get(fingerprint)
        if cached is not None:
            self._memory.move_to_end(fingerprint)
            self.stats["hits"] += 1
            return cached
        path = self._object_path(fingerprint)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("format") != FINGERPRINT_FORMAT:
                raise ValueError(f"unknown entry format {payload.get('format')!r}")
            if payload.get("fingerprint") != fingerprint:
                raise ValueError("entry fingerprint does not match its path")
            result = RunResult.from_dict(payload["result"])
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except OSError:
            self.stats["misses"] += 1
            return None
        except (json.JSONDecodeError, ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.stats["misses"] += 1
            return None
        result.raw = rehydrate_raw(result.verb, result.payload)
        try:
            os.utime(path)  # recency for the on-disk LRU
        except OSError:
            pass
        self._remember(fingerprint, result)
        self.stats["hits"] += 1
        return result

    def put(self, fingerprint: str, result: RunResult) -> Path:
        """Persist ``result`` under ``fingerprint`` atomically."""
        path = self._object_path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "format": FINGERPRINT_FORMAT,
            "fingerprint": fingerprint,
            "saved_unix": time.time(),
            "result": result.to_dict(),
        }
        blob = json.dumps(envelope, indent=2, sort_keys=True) + "\n"
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{fingerprint[:12]}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(blob)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self._remember(fingerprint, result)
        self.stats["writes"] += 1
        return path

    def __contains__(self, fingerprint: str) -> bool:
        return (
            fingerprint in self._memory
            or self._object_path(fingerprint).exists()
        )

    def known_fingerprints(self) -> set[str]:
        """Every fingerprint currently persisted on disk."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return set()
        return {path.stem for path in objects.glob("*/*.json")}

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def gc(
        self,
        max_entries: int | None = None,
        ttl_seconds: float | None = None,
        dry_run: bool = False,
    ) -> dict:
        """Apply TTL then LRU eviction to the on-disk store.

        Arguments default to the limits configured at construction; both
        ``None`` means the scan is a no-op beyond reporting.  Recency is
        file mtime, which :meth:`get` refreshes on every disk read.
        """
        if max_entries is None:
            max_entries = self.max_entries
        if ttl_seconds is None:
            ttl_seconds = self.ttl_seconds
        objects = self.root / "objects"
        entries = []
        if objects.is_dir():
            for path in objects.glob("*/*.json"):
                try:
                    entries.append((path.stat().st_mtime, path))
                except OSError:
                    continue
        entries.sort()  # oldest first
        now = time.time()
        doomed = []
        if ttl_seconds is not None:
            fresh = []
            for mtime, path in entries:
                if now - mtime > ttl_seconds:
                    doomed.append(path)
                else:
                    fresh.append((mtime, path))
            entries = fresh
        if max_entries is not None and len(entries) > max_entries:
            excess = len(entries) - max_entries
            doomed.extend(path for _, path in entries[:excess])
            entries = entries[excess:]
        removed = []
        for path in doomed:
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    continue
                self._memory.pop(path.stem, None)
            removed.append(path.stem)
        return {
            "scanned": len(removed) + len(entries),
            "removed": removed,
            "kept": len(entries),
            "dry_run": dry_run,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _remember(self, fingerprint: str, result: RunResult) -> None:
        if self.memory_entries <= 0:
            return
        self._memory[fingerprint] = result
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is diagnosable but inert."""
        self.stats["corrupt"] += 1
        target = self.root / "quarantine" / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def __repr__(self) -> str:
        return (
            f"ResultStore(root={str(self.root)!r}, "
            f"memory_entries={self.memory_entries})"
        )
