"""Content-addressed result store: fingerprint -> :class:`RunResult`.

The paper's tables and figures are one large parameter lattice; this
package converts repeat queries over that lattice from O(sweep) to
O(lookup).  A **fingerprint** addresses one ``(verb, RunSpec)``
experiment; the **store** persists the corresponding
:class:`~repro.api.RunResult` durably and serves it back.

Fingerprint contract
--------------------
``run_fingerprint(verb, spec)`` is sha256 over the compact key-sorted
JSON of ``{"format": 1, "verb": ..., "spec": ...}`` where the spec
payload is ``RunSpec.to_dict()`` with the declarative ``pair``
description replaced by its schema-canonical form
(:func:`repro.protocols.canonical_pair`).  Invariants:

* :class:`~repro.api.RuntimeProfile` runtime knobs (backend, jobs,
  schedule, mp_context, ...) never enter the hash -- results are
  bit-identical across them per the kernel-equivalence gates, so one
  entry serves every runtime.
* JSON round-trips of the same spec hash identically (tuples normalize
  to lists before hashing).
* Pair descriptions hash by constructor schema with defaults filled
  in, not by import path or call-site spelling.
* Specs holding live objects raise :class:`~repro.api.SpecError`; the
  session treats such specs as unstorable and computes directly.

On-disk layout (default root ``results/store/``)
------------------------------------------------
::

    <root>/objects/<fp[:2]>/<fp>.json   # envelope: format, fingerprint,
                                        #   saved_unix, result (RunResult.to_dict)
    <root>/quarantine/<fp>.json         # corrupt entries, moved aside

Writes are write-then-``os.replace`` (atomic on POSIX), so concurrent
writers and crash-interrupted writes can never tear an entry; a corrupt
or mismatched entry loads as a *miss* and is quarantined, never raised.
Reads refresh the entry's mtime, so :meth:`ResultStore.gc`'s TTL/LRU
eviction tracks last use.
"""

from .fingerprint import (
    canonical_run_payload,
    FINGERPRINT_FORMAT,
    run_fingerprint,
)
from .store import DEFAULT_STORE_ROOT, ResultStore

__all__ = [
    "DEFAULT_STORE_ROOT",
    "FINGERPRINT_FORMAT",
    "ResultStore",
    "canonical_run_payload",
    "run_fingerprint",
]
