"""Content-addressed result store: fingerprint -> :class:`RunResult`.

The paper's tables and figures are one large parameter lattice; this
package converts repeat queries over that lattice from O(sweep) to
O(lookup).  A **fingerprint** addresses one ``(verb, RunSpec)``
experiment; the **store** persists the corresponding
:class:`~repro.api.RunResult` durably and serves it back.

Fingerprint contract
--------------------
``run_fingerprint(verb, spec)`` is sha256 over the compact key-sorted
JSON of ``{"format": 1, "verb": ..., "spec": ...}`` where the spec
payload is ``RunSpec.to_dict()`` with the declarative ``pair``
description replaced by its schema-canonical form
(:func:`repro.protocols.canonical_pair`).  Invariants:

* :class:`~repro.api.RuntimeProfile` runtime knobs (backend, jobs,
  schedule, mp_context, ...) never enter the hash -- results are
  bit-identical across them per the kernel-equivalence gates, so one
  entry serves every runtime.
* JSON round-trips of the same spec hash identically (tuples normalize
  to lists before hashing).
* Pair descriptions hash by constructor schema with defaults filled
  in, not by import path or call-site spelling.
* Specs holding live objects raise :class:`~repro.api.SpecError`; the
  session treats such specs as unstorable and computes directly.

On-disk layout (default root ``results/store/``)
------------------------------------------------
::

    <root>/objects/<fp[:2]>/<fp>.json   # envelope: format, fingerprint,
                                        #   saved_unix, result (RunResult.to_dict)
    <root>/quarantine/<fp>.json         # corrupt entries, moved aside

Writes are write-then-``os.replace`` (atomic on POSIX), so concurrent
writers and crash-interrupted writes can never tear an entry; a corrupt
or mismatched entry loads as a *miss* and is quarantined, never raised.
Reads refresh the entry's mtime, so :meth:`ResultStore.gc`'s TTL/LRU
eviction tracks last use.

Concurrency and copy semantics
------------------------------
One :class:`ResultStore` instance may be shared by concurrent sessions
-- threads in one process (the parallel
:class:`~repro.campaign.CampaignRunner`'s worker sessions) and
unrelated processes over one root directory:

* ``get`` returns a **private copy on every call**: memory-LRU hits
  clone the stored snapshot (``raw`` rehydrated from the cloned
  payload), disk hits are freshly parsed.  Mutating a returned result
  -- its ``payload``, the per-call ``store_meta`` the session attaches
  -- never reaches another caller, the LRU, or the on-disk entry.
* ``put`` remembers a **detached snapshot**, never the caller's live
  :class:`~repro.api.RunResult`; the caller keeps exclusive ownership
  of what it passed in.
* The in-process LRU and the ``stats`` counters are lock-protected, so
  mixed get/put traffic from many threads cannot tear them and the LRU
  stays bounded.
* Concurrent ``put`` under one fingerprint is **last-writer-wins**,
  which is safe by construction: the key is content-addressed, so
  every writer carries the same numbers and either ``os.replace``
  order leaves a consistent entry (only runtime provenance such as
  timings may differ).
"""

from .fingerprint import (
    canonical_run_payload,
    FINGERPRINT_FORMAT,
    run_fingerprint,
)
from .store import DEFAULT_STORE_ROOT, ResultStore

__all__ = [
    "DEFAULT_STORE_ROOT",
    "FINGERPRINT_FORMAT",
    "ResultStore",
    "canonical_run_payload",
    "run_fingerprint",
]
