"""Store-fed benchmark tables: campaign definitions rendered through
:func:`repro.analysis.rows_from_store`.

First slice of the "store-aware analysis surface" ROADMAP item: the
``val-prot`` table (the protocol-zoo validation of
``benchmarks/bench_validation_protocols.py``) as its own checked-in
campaign (``campaigns/val-prot.json``) whose sweep-derived columns are
read straight from store payloads via the generic
:func:`~repro.analysis.rows_from_store` path -- dotted payload columns,
no bespoke payload plumbing -- while the closed-form columns (duty
cycle, claimed worst case, utilization-bound gap) are recomputed.

The four runs are **spec-identical** to the golden campaign's
``val-prot`` entries, so they share fingerprints: a store populated by
either campaign (or by the sweep service) renders this table, and
:func:`regenerate_val_prot_csv` reproduces the pinned
``results/val-prot.csv`` byte-identically.
"""

from __future__ import annotations

from pathlib import Path

from .campaign import Campaign
from .golden import _zoo_instance, _zoo_offsets, OMEGA, SLOT, ZOO_CONFIGS

__all__ = [
    "build_val_prot_campaign",
    "regenerate_val_prot_csv",
    "VAL_PROT_CAMPAIGN_PATH",
    "val_prot_rows",
]

#: The checked-in serialized form of :func:`build_val_prot_campaign`.
VAL_PROT_CAMPAIGN_PATH = (
    Path(__file__).resolve().parents[3] / "campaigns" / "val-prot.json"
)

#: Sweep-derived columns, as dotted payload paths for
#: :func:`repro.analysis.rows_from_store`.
STORE_COLUMNS = ("worst_one_way", "failures")


def build_val_prot_campaign() -> Campaign:
    """The four protocol-zoo validation sweeps, spec-identical to the
    golden campaign's ``val-prot`` entries (same fingerprints)."""
    runs = []
    for display, class_name, params in ZOO_CONFIGS:
        instance = _zoo_instance(class_name, params)
        runs.append({
            "verb": "sweep",
            "label": f"val-prot:{display}",
            "spec": {
                "pair": {
                    "kind": "zoo",
                    "protocol": class_name,
                    "params": dict(params, slot_length=SLOT, omega=OMEGA),
                },
                "offsets": _zoo_offsets(instance, 256, slot_filter=True),
                "horizon": int(instance.predicted_worst_case_latency()) * 3,
            },
        })
    return Campaign(
        name="val-prot",
        description=(
            "The protocol-zoo validation sweeps behind the pinned "
            "val-prot CSV, as a store-fed table campaign (spec-identical "
            "to the golden campaign's val-prot entries)."
        ),
        runs=runs,
    )


def val_prot_rows(store, campaign: Campaign | None = None):
    """``(headers, rows)`` of the val-prot table from a populated store.

    Sweep-derived columns come through
    :func:`repro.analysis.rows_from_store` (``worst_one_way``,
    ``failures`` as dotted payload paths); duty cycle, the claimed
    worst case and the utilization-bound gap ratio are closed-form.
    Raises ``KeyError`` naming the first missing entry, like
    :func:`~repro.campaign.golden.golden_rows`.
    """
    from ..analysis import gap_for_protocol, rows_from_store
    from ..protocols import Role

    campaign = campaign or build_val_prot_campaign()
    entries = campaign.expand()
    stored = rows_from_store(
        store,
        [(entry.verb, entry.spec) for entry in entries],
        STORE_COLUMNS,
    )
    rows = []
    for (display, class_name, params), entry, row in zip(
        ZOO_CONFIGS, entries, stored
    ):
        worst_one_way, failures = row
        if worst_one_way is None:
            raise KeyError(
                f"store {store.root} is missing campaign entry "
                f"{entry.label!r} (fingerprint "
                f"{store.fingerprint(entry.verb, entry.spec)}); run the "
                f"val-prot (or golden) campaign first"
            )
        instance = _zoo_instance(class_name, params)
        claim = instance.predicted_worst_case_latency()
        full_latency = (
            worst_one_way + instance.device(Role.E).beacons.max_gap
        )
        gap = gap_for_protocol(
            instance, omega=OMEGA, measured_latency=full_latency
        )
        rows.append([
            display,
            instance.duty_cycle(),
            claim / 1e3,
            worst_one_way / 1e3,
            failures,
            gap.ratio_constrained,
        ])
    headers = [
        "protocol", "eta", "claimed worst [ms]", "measured worst [ms]",
        "failures", "x util-bound",
    ]
    return headers, rows


def regenerate_val_prot_csv(store, results_dir) -> Path:
    """Write ``val-prot.csv`` under ``results_dir`` from a populated
    store -- byte-identical to the pinned file."""
    from ..analysis import write_csv

    headers, rows = val_prot_rows(store)
    return write_csv(Path(results_dir) / "val-prot.csv", headers, rows)
