"""Declarative campaign definitions: a parameter lattice of RunSpecs.

A campaign file (TOML or JSON) names a list of **runs**; each run gives
a verb (``sweep`` / ``worst_case`` / ``grid`` / ``simulate``), a base
:class:`~repro.api.RunSpec` payload, and optionally **axes** -- a
mapping from dotted spec paths to value lists, expanded as a cross
product::

    name = "slot-ablation"

    [[runs]]
    verb = "sweep"
    label = "searchlight"
    spec = {pair = {kind = "zoo", protocol = "Searchlight",
                    params = {period_slots = 8, omega = 32}},
            sampling = "critical", omega = 32}
    [runs.axes]
    "pair.params.slot_length" = [96, 160, 320, 1280]

Expansion is deterministic: runs in file order, axes in file key order,
row-major with the last axis fastest (the same convention as
:func:`repro.workloads.scenario_grid`), so entry indices -- and the
resume bookkeeping built on them -- are stable across loads.
"""

from __future__ import annotations

import itertools
import json
import math
from copy import deepcopy
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from ..api.spec import RunSpec, SpecError

__all__ = ["Campaign", "CampaignEntry", "VERBS"]

#: The Session verbs a campaign run may name.
VERBS = ("sweep", "worst_case", "grid", "simulate")


@dataclass(frozen=True)
class CampaignEntry:
    """One expanded lattice point: a concrete spec for one verb."""

    index: int
    """Position in the campaign's deterministic expansion order."""
    run_index: int
    """Which ``runs`` block this entry came from."""
    verb: str
    label: str
    spec: RunSpec

    def cost_hint(self) -> float:
        """Deterministic relative cost of this entry, derived from the
        spec alone.

        The override point :func:`repro.parallel.estimate_scenario_cost`
        looks for -- which makes a campaign lattice schedulable by
        :func:`repro.parallel.plan_longest_first` exactly like a
        scenario grid: the parallel :class:`~repro.campaign.CampaignRunner`
        submits entries in descending estimated cost so the long poles
        start first.  Rank-only, like every cost hint: a misestimate
        costs wall-clock, never correctness (completion merges are
        index-stable).  Unestimable specs rank neutrally at ``1.0``.
        """
        try:
            return max(_estimate_entry_cost(self.verb, self.spec), 1.0)
        except Exception:
            # A spec this estimator cannot price (exotic factory, live
            # objects...) still has to schedule; rank it neutrally.
            return 1.0


def _estimate_entry_cost(verb: str, spec: RunSpec) -> float:
    """Per-verb event-rate cost of one entry (see ``cost_hint``).

    Pair verbs price as offsets-to-evaluate x the per-offset event rate
    of :func:`repro.parallel.schedule.default_simulation_cost` over the
    sweep horizon (``worst_case`` doubles: enumeration plus DES
    replays ride on top of its sweep); scenario verbs delegate to the
    grid scheduler's own :func:`estimate_scenario_cost`.
    """
    from ..api.spec import build_grid, build_pair, build_scenario
    from ..parallel.schedule import (
        default_simulation_cost,
        estimate_scenario_cost,
    )

    if verb in ("sweep", "worst_case"):
        protocol_e, protocol_f, base = build_pair(spec.pair)
        horizon = spec.horizon
        if horizon is None:
            if base is None:
                base = math.lcm(
                    protocol_e.hyperperiod(), protocol_f.hyperperiod()
                )
            horizon = int(base) * spec.horizon_multiple
        if spec.offsets is not None:
            n_offsets = len(spec.offsets)
        elif spec.sampling == "critical":
            # The true critical count needs the enumeration itself;
            # cap-bounded hyperperiod breakpoints are a rank-only proxy.
            hyper = math.lcm(
                protocol_e.hyperperiod(), protocol_f.hyperperiod()
            )
            n_offsets = min(spec.max_critical, hyper)
        else:
            n_offsets = spec.samples
        cost = n_offsets * default_simulation_cost(
            (protocol_e, protocol_f), horizon
        )
        return cost * 2.0 if verb == "worst_case" else cost
    if verb == "simulate":
        return estimate_scenario_cost(build_scenario(spec.scenario))
    if verb == "grid":
        return float(
            sum(estimate_scenario_cost(s) for s in build_grid(spec.grid))
        )
    return 1.0


def _set_path(payload: dict, path: str, value) -> None:
    """Set ``payload[a][b][c] = value`` for dotted path ``a.b.c``,
    creating intermediate mappings as needed."""
    keys = path.split(".")
    node = payload
    for key in keys[:-1]:
        nxt = node.get(key)
        if not isinstance(nxt, dict):
            nxt = {}
            node[key] = nxt
        node = nxt
    node[keys[-1]] = value


class Campaign:
    """A validated campaign definition (see module docstring)."""

    def __init__(self, name: str, runs: Sequence[Mapping], description: str = ""):
        self.name = str(name)
        self.description = str(description)
        self.runs = [dict(run) for run in runs]
        self._validate()

    def _validate(self) -> None:
        if not self.name:
            raise SpecError("campaign needs a non-empty name")
        if not self.runs:
            raise SpecError("campaign needs at least one run")
        for i, run in enumerate(self.runs):
            unknown = set(run) - {"verb", "spec", "axes", "label"}
            if unknown:
                raise SpecError(
                    f"unknown campaign run key(s) in runs[{i}]: "
                    f"{sorted(unknown)}; known: ['axes', 'label', 'spec', 'verb']"
                )
            verb = run.get("verb")
            if verb not in VERBS:
                raise SpecError(
                    f"runs[{i}].verb must be one of {list(VERBS)}, got {verb!r}"
                )
            spec = run.get("spec", {})
            if not isinstance(spec, Mapping):
                raise SpecError(f"runs[{i}].spec must be a mapping, got {spec!r}")
            axes = run.get("axes", {})
            if not isinstance(axes, Mapping):
                raise SpecError(f"runs[{i}].axes must be a mapping, got {axes!r}")
            for axis, values in axes.items():
                if not isinstance(axis, str) or not axis:
                    raise SpecError(f"runs[{i}] axis names must be strings")
                if (
                    not isinstance(values, Sequence)
                    or isinstance(values, (str, bytes))
                    or not values
                ):
                    raise SpecError(
                        f"runs[{i}].axes[{axis!r}] must be a non-empty list, "
                        f"got {values!r}"
                    )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = {"name": self.name, "runs": deepcopy(self.runs)}
        if self.description:
            payload["description"] = self.description
        return payload

    @classmethod
    def from_dict(cls, data: Mapping) -> "Campaign":
        if not isinstance(data, Mapping):
            raise SpecError(f"campaign payload must be a mapping, got {data!r}")
        unknown = set(data) - {"name", "description", "runs"}
        if unknown:
            raise SpecError(
                f"unknown campaign key(s): {sorted(unknown)}; "
                f"known: ['description', 'name', 'runs']"
            )
        return cls(
            name=data.get("name", ""),
            runs=data.get("runs", []),
            description=data.get("description", ""),
        )

    @classmethod
    def from_file(cls, path) -> "Campaign":
        """Load a campaign from ``.toml`` / ``.json`` (extension picks
        the parser; anything else tries JSON first, then TOML)."""
        import tomllib

        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SpecError(f"cannot read campaign {path}: {exc}") from exc
        suffix = path.suffix.lower()
        try:
            if suffix == ".toml":
                return cls.from_dict(tomllib.loads(text))
            if suffix == ".json":
                return cls.from_dict(json.loads(text))
            try:
                return cls.from_dict(json.loads(text))
            except json.JSONDecodeError:
                return cls.from_dict(tomllib.loads(text))
        except (json.JSONDecodeError, tomllib.TOMLDecodeError) as exc:
            raise SpecError(f"malformed campaign {path}: {exc}") from exc

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def expand(self) -> list[CampaignEntry]:
        """The concrete lattice: every run's axes cross product, in the
        deterministic order described in the module docstring.  Spec
        validation happens here (each point becomes a
        :class:`~repro.api.RunSpec`), so a bad lattice fails before
        anything executes."""
        entries: list[CampaignEntry] = []
        index = 0
        for run_index, run in enumerate(self.runs):
            verb = run["verb"]
            axes = run.get("axes") or {}
            names = list(axes)
            points = (
                itertools.product(*(axes[name] for name in names))
                if names
                else [()]
            )
            for point in points:
                payload = deepcopy(dict(run.get("spec") or {}))
                for name, value in zip(names, point):
                    _set_path(payload, name, value)
                try:
                    spec = RunSpec.from_dict(payload)
                except SpecError as exc:
                    raise SpecError(
                        f"campaign {self.name!r} runs[{run_index}] expands "
                        f"to an invalid spec at "
                        f"{dict(zip(names, point))}: {exc}"
                    ) from exc
                label = str(run.get("label") or verb)
                if names:
                    label += (
                        "["
                        + ",".join(
                            f"{name}={value}"
                            for name, value in zip(names, point)
                        )
                        + "]"
                    )
                entries.append(
                    CampaignEntry(
                        index=index,
                        run_index=run_index,
                        verb=verb,
                        label=label,
                        spec=spec,
                    )
                )
                index += 1
        return entries
