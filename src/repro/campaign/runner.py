"""Resumable campaign execution over a content-addressed result store.

:class:`CampaignRunner` expands a :class:`~repro.campaign.Campaign`
into its lattice of RunSpecs and drives each one through a
store-backed :class:`~repro.api.Session`.  Entries whose fingerprint
is already in the store are satisfied by a lookup; only missing
fingerprints execute.  A JSON **manifest** is atomically rewritten
after every entry, so an interrupted campaign (Ctrl-C, OOM, machine
loss) resumes by simply re-running the same command: completed
entries hit the store and are skipped, and the manifest converges to
``complete: true``.  On resume the manifest **merges** into its
previous self -- records carried by an existing manifest (statuses,
wall-clock, error strings) survive until the entry is actually
re-processed, so an interrupted or capped rerun never loses what an
earlier invocation learned.

Entry-level parallelism
-----------------------
``run(entry_jobs=N)`` executes lattice entries over ``N`` work-stealing
worker threads, each owning a store-backed sibling
:class:`~repro.api.Session` (:meth:`Session.worker`): entries are
submitted individually in descending estimated cost
(:func:`repro.parallel.plan_longest_first` over
:meth:`CampaignEntry.cost_hint`), idle workers steal the next pending
entry, and completions merge back into the manifest **in arrival
order** with the same atomic write-after-every-entry checkpointing as
the serial path.  Correctness does not depend on the schedule: each
entry is an independent deterministic computation keyed by its
content-addressed fingerprint, so a parallel run produces a store and
final manifest content-equivalent to the serial run (the bench's hard
exit gate).  ``max_runs`` capping picks the same entries the serial
loop would (store misses in lattice order), per-entry failures are
isolated to their record, and Ctrl-C leaves a current manifest behind
exactly as before.  The one sanctioned divergence: duplicate
fingerprints *within* one campaign may both execute concurrently
instead of second-hits-first -- last-writer-wins with identical
numbers, per the store's concurrency contract.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

from ..api.session import Session
from ..store import ResultStore
from .campaign import Campaign

__all__ = ["CampaignRunner", "MANIFEST_FORMAT"]

#: Manifest schema version.
MANIFEST_FORMAT = 1


def _atomic_write_json(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CampaignRunner:
    """Execute a campaign against a result store (see module docstring).

    Parameters
    ----------
    campaign:
        A :class:`Campaign` (use :meth:`Campaign.from_file` for files).
    store:
        A :class:`~repro.store.ResultStore` or a path for one.
    profile:
        Optional :class:`~repro.api.RuntimeProfile` for the owned
        Session.  Runtime-only: it never affects fingerprints, so a
        campaign resumed under a different profile still hits the
        same entries.
    manifest_path:
        Where to write the manifest; defaults to
        ``results/campaigns/<name>.json``.
    """

    def __init__(self, campaign: Campaign, store, profile=None, manifest_path=None):
        self.campaign = campaign
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.profile = profile
        self.manifest_path = (
            Path(manifest_path)
            if manifest_path is not None
            else Path("results") / "campaigns" / f"{campaign.name}.json"
        )

    # ------------------------------------------------------------------
    def _fingerprints(self, entries):
        return [
            ResultStore.fingerprint(entry.verb, entry.spec) for entry in entries
        ]

    def _prior_records(self) -> dict:
        """fingerprint -> entry record from an existing manifest for
        *this* campaign; empty when there is nothing usable to merge
        (no manifest, unreadable, other campaign, other format)."""
        try:
            prior = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if (
            not isinstance(prior, dict)
            or prior.get("format") != MANIFEST_FORMAT
            or prior.get("campaign") != self.campaign.name
        ):
            return {}
        records = {}
        for record in prior.get("entries", ()):
            if isinstance(record, dict) and record.get("fingerprint"):
                records[record["fingerprint"]] = record
        return records

    def _manifest_skeleton(self, entries, fingerprints) -> dict:
        """The run's starting manifest, **merged** with any prior one.

        Records are keyed by fingerprint (stable across campaign-file
        reloads and lattice edits), and a prior record's status, source,
        wall-clock and error string carry over until this run actually
        re-processes the entry -- so a resumed or capped invocation
        never discards what an earlier one recorded.
        """
        prior = self._prior_records()
        records = []
        for entry, fp in zip(entries, fingerprints):
            record = {
                "index": entry.index,
                "label": entry.label,
                "verb": entry.verb,
                "fingerprint": fp,
                "status": "pending",
            }
            carried = prior.get(fp)
            if carried is not None:
                for key in ("status", "source", "seconds", "error"):
                    if key in carried:
                        record[key] = carried[key]
            records.append(record)
        manifest = {
            "format": MANIFEST_FORMAT,
            "campaign": self.campaign.name,
            "store": str(self.store.root),
            "total": len(entries),
            "executed": 0,
            "hits": 0,
            "failed": 0,
            "complete": False,
            "entries": records,
        }
        self._summarize(manifest)
        return manifest

    @staticmethod
    def _summarize(manifest: dict) -> None:
        records = manifest["entries"]
        manifest["executed"] = sum(
            1 for r in records if r.get("source") == "executed"
        )
        manifest["hits"] = sum(1 for r in records if r.get("source") == "hit")
        manifest["failed"] = sum(1 for r in records if r["status"] == "failed")
        manifest["complete"] = all(r["status"] == "done" for r in records)

    def _checkpoint(self, manifest: dict) -> None:
        self._summarize(manifest)
        _atomic_write_json(self.manifest_path, manifest)

    # ------------------------------------------------------------------
    # Per-entry execution (shared by the serial and parallel paths)
    # ------------------------------------------------------------------
    @staticmethod
    def _process_entry(session, entry):
        """Drive one entry through ``session``; returns
        ``(record patch, executed flag)``.  Exceptions are isolated to
        the entry's record; KeyboardInterrupt propagates."""
        start = time.perf_counter()
        try:
            result = getattr(session, entry.verb)(entry.spec)
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            return (
                {
                    "status": "failed",
                    "error": f"{type(exc).__name__}: {exc}",
                    "seconds": time.perf_counter() - start,
                },
                False,
            )
        meta = result.store_meta or {}
        hit = bool(meta.get("hit"))
        return (
            {
                "status": "done",
                "source": "hit" if hit else "executed",
                "seconds": time.perf_counter() - start,
            },
            not hit,
        )

    @staticmethod
    def _apply(record: dict, patch: dict) -> None:
        """Replace a record's outcome fields with this run's patch
        (stale carried-over keys must not survive a fresh outcome)."""
        for key in ("status", "source", "seconds", "error"):
            record.pop(key, None)
        record.update(patch)

    @staticmethod
    def _mark_capped(record: dict) -> None:
        """``max_runs`` prevented this entry from executing.  A prior
        *failed* record keeps its error string (the whole point of the
        manifest merge); anything else -- including a stale ``done``
        whose store entry has since been evicted -- becomes a plain
        ``skipped``."""
        if record.get("status") == "failed":
            return
        CampaignRunner._apply(record, {"status": "skipped"})

    # ------------------------------------------------------------------
    def run(
        self,
        max_runs: int | None = None,
        session: Session | None = None,
        entry_jobs: int | None = None,
    ) -> dict:
        """Run the campaign; returns the final manifest dict.

        ``max_runs`` caps how many entries may *execute* (store
        misses); store hits are always processed, so a capped rerun
        still makes forward progress through the remaining lattice.
        A per-entry exception marks that entry ``failed`` and moves
        on; KeyboardInterrupt propagates (the manifest on disk is
        already current up to the interrupted entry).

        ``entry_jobs`` >= 2 executes entries over that many
        work-stealing worker threads (longest estimated cost first, see
        the module docstring); ``None``/``1`` keeps the serial loop.
        ``session`` overrides the runner-owned session(s): a real
        :class:`Session` contributes per-thread siblings via
        :meth:`Session.worker` under the parallel path, anything else
        (test doubles) is shared as-is and must tolerate the
        concurrency it is handed.
        """
        entries = self.campaign.expand()
        fingerprints = self._fingerprints(entries)
        manifest = self._manifest_skeleton(entries, fingerprints)
        _atomic_write_json(self.manifest_path, manifest)
        if entry_jobs is not None and int(entry_jobs) > 1:
            return self._run_parallel(
                entries, fingerprints, manifest, max_runs, session,
                int(entry_jobs),
            )
        return self._run_serial(
            entries, fingerprints, manifest, max_runs, session
        )

    # ------------------------------------------------------------------
    def _run_serial(self, entries, fingerprints, manifest, max_runs, session):
        own_session = session is None
        if own_session:
            session = Session(self.profile, store=self.store)
        executed = 0
        try:
            for entry, fp, record in zip(
                entries, fingerprints, manifest["entries"]
            ):
                will_execute = fp not in self.store
                if (
                    will_execute
                    and max_runs is not None
                    and executed >= max_runs
                ):
                    self._mark_capped(record)
                    self._checkpoint(manifest)
                    continue
                patch, did_execute = self._process_entry(session, entry)
                if did_execute:
                    executed += 1
                self._apply(record, patch)
                self._checkpoint(manifest)
        finally:
            if own_session:
                session.close()
        return manifest

    # ------------------------------------------------------------------
    def _run_parallel(
        self, entries, fingerprints, manifest, max_runs, session, entry_jobs
    ):
        from concurrent.futures import (
            FIRST_COMPLETED,
            ThreadPoolExecutor,
            wait,
        )

        from ..parallel.schedule import plan_longest_first

        records = manifest["entries"]

        # The execution budget is decided up front, from the same store
        # snapshot and in the same lattice order the serial loop would
        # consult: hits always process, and the first ``max_runs``
        # misses (in lattice order) may execute; later misses are
        # capped before anything is submitted.
        allowed = []
        budget = max_runs
        for position, fp in enumerate(fingerprints):
            if fp in self.store:
                allowed.append(position)
            elif budget is None or budget > 0:
                allowed.append(position)
                if budget is not None:
                    budget -= 1
            else:
                self._mark_capped(records[position])
        self._checkpoint(manifest)

        # Longest-first work stealing over *entries*: submit in
        # descending estimated cost (CampaignEntry.cost_hint through
        # the grid scheduler's planner) so the long poles start first;
        # the pool's shared queue is the stealing mechanism.
        allowed_set = set(allowed)
        order = [
            position
            for position in plan_longest_first(entries)
            if position in allowed_set
        ]

        # Worker sessions: one store-backed sibling session per worker
        # thread (sharing the profile and the *instance* of the store),
        # lazily created and deterministically closed.  An injected
        # non-Session test double is shared as-is.
        local = threading.local()
        created = []
        created_lock = threading.Lock()

        def worker_session():
            sess = getattr(local, "session", None)
            if sess is None:
                if session is None:
                    sess = Session(self.profile, store=self.store)
                elif callable(getattr(session, "worker", None)):
                    sess = session.worker()
                else:
                    return session  # shared test double
                local.session = sess
                with created_lock:
                    created.append(sess)
            return sess

        def task(position):
            return position, self._process_entry(
                worker_session(), entries[position]
            )

        executed = 0
        executor = ThreadPoolExecutor(
            max_workers=entry_jobs, thread_name_prefix="campaign-entry"
        )
        try:
            pending = {executor.submit(task, position) for position in order}
            try:
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    # Merge completions in arrival order, checkpointing
                    # after every entry exactly like the serial loop.
                    for future in done:
                        position, (patch, did_execute) = future.result()
                        if did_execute:
                            executed += 1
                        self._apply(records[position], patch)
                        self._checkpoint(manifest)
            except BaseException:
                # Ctrl-C (or a worker's KeyboardInterrupt surfacing
                # through .result()): drop everything not yet started;
                # in-flight entries run to completion below so their
                # sessions shut down cleanly.  Their results reach the
                # store but not the manifest -- the resume hits them.
                for future in pending:
                    future.cancel()
                raise
        finally:
            executor.shutdown(wait=True, cancel_futures=True)
            for sess in created:
                sess.close()
        return manifest

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """Store-membership view of the campaign without executing
        anything: which fingerprints are present, which are missing."""
        entries = self.campaign.expand()
        fingerprints = self._fingerprints(entries)
        missing = [
            {"index": entry.index, "label": entry.label, "fingerprint": fp}
            for entry, fp in zip(entries, fingerprints)
            if fp not in self.store
        ]
        return {
            "campaign": self.campaign.name,
            "store": str(self.store.root),
            "total": len(entries),
            "stored": len(entries) - len(missing),
            "missing": missing,
            "complete": not missing,
            "manifest": str(self.manifest_path),
            "manifest_exists": self.manifest_path.exists(),
        }
