"""Resumable campaign execution over a content-addressed result store.

:class:`CampaignRunner` expands a :class:`~repro.campaign.Campaign`
into its lattice of RunSpecs and drives each one through a
store-backed :class:`~repro.api.Session`.  Entries whose fingerprint
is already in the store are satisfied by a lookup; only missing
fingerprints execute.  A JSON **manifest** is atomically rewritten
after every entry, so an interrupted campaign (Ctrl-C, OOM, machine
loss) resumes by simply re-running the same command: completed
entries hit the store and are skipped, and the manifest converges to
``complete: true``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from ..api.session import Session
from ..store import ResultStore
from .campaign import Campaign

__all__ = ["CampaignRunner", "MANIFEST_FORMAT"]

#: Manifest schema version.
MANIFEST_FORMAT = 1


def _atomic_write_json(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CampaignRunner:
    """Execute a campaign against a result store (see module docstring).

    Parameters
    ----------
    campaign:
        A :class:`Campaign` (use :meth:`Campaign.from_file` for files).
    store:
        A :class:`~repro.store.ResultStore` or a path for one.
    profile:
        Optional :class:`~repro.api.RuntimeProfile` for the owned
        Session.  Runtime-only: it never affects fingerprints, so a
        campaign resumed under a different profile still hits the
        same entries.
    manifest_path:
        Where to write the manifest; defaults to
        ``results/campaigns/<name>.json``.
    """

    def __init__(self, campaign: Campaign, store, profile=None, manifest_path=None):
        self.campaign = campaign
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.profile = profile
        self.manifest_path = (
            Path(manifest_path)
            if manifest_path is not None
            else Path("results") / "campaigns" / f"{campaign.name}.json"
        )

    # ------------------------------------------------------------------
    def _fingerprints(self, entries):
        return [
            ResultStore.fingerprint(entry.verb, entry.spec) for entry in entries
        ]

    def _manifest_skeleton(self, entries, fingerprints) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "campaign": self.campaign.name,
            "store": str(self.store.root),
            "total": len(entries),
            "executed": 0,
            "hits": 0,
            "failed": 0,
            "complete": False,
            "entries": [
                {
                    "index": entry.index,
                    "label": entry.label,
                    "verb": entry.verb,
                    "fingerprint": fp,
                    "status": "pending",
                }
                for entry, fp in zip(entries, fingerprints)
            ],
        }

    @staticmethod
    def _summarize(manifest: dict) -> None:
        records = manifest["entries"]
        manifest["executed"] = sum(
            1 for r in records if r.get("source") == "executed"
        )
        manifest["hits"] = sum(1 for r in records if r.get("source") == "hit")
        manifest["failed"] = sum(1 for r in records if r["status"] == "failed")
        manifest["complete"] = all(r["status"] == "done" for r in records)

    # ------------------------------------------------------------------
    def run(self, max_runs: int | None = None, session: Session | None = None) -> dict:
        """Run the campaign; returns the final manifest dict.

        ``max_runs`` caps how many entries may *execute* (store
        misses); store hits are always processed, so a capped rerun
        still makes forward progress through the remaining lattice.
        A per-entry exception marks that entry ``failed`` and moves
        on; KeyboardInterrupt propagates (the manifest on disk is
        already current up to the interrupted entry).
        """
        entries = self.campaign.expand()
        fingerprints = self._fingerprints(entries)
        manifest = self._manifest_skeleton(entries, fingerprints)
        _atomic_write_json(self.manifest_path, manifest)

        own_session = session is None
        if own_session:
            session = Session(self.profile, store=self.store)
        executed = 0
        try:
            for entry, fp, record in zip(
                entries, fingerprints, manifest["entries"]
            ):
                will_execute = fp not in self.store
                if (
                    will_execute
                    and max_runs is not None
                    and executed >= max_runs
                ):
                    record["status"] = "skipped"
                    self._summarize(manifest)
                    _atomic_write_json(self.manifest_path, manifest)
                    continue
                start = time.perf_counter()
                try:
                    result = getattr(session, entry.verb)(entry.spec)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    record["status"] = "failed"
                    record["error"] = f"{type(exc).__name__}: {exc}"
                    record["seconds"] = time.perf_counter() - start
                else:
                    meta = result.store_meta or {}
                    hit = bool(meta.get("hit"))
                    if not hit:
                        executed += 1
                    record["status"] = "done"
                    record["source"] = "hit" if hit else "executed"
                    record["seconds"] = time.perf_counter() - start
                self._summarize(manifest)
                _atomic_write_json(self.manifest_path, manifest)
        finally:
            if own_session:
                session.close()
        return manifest

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """Store-membership view of the campaign without executing
        anything: which fingerprints are present, which are missing."""
        entries = self.campaign.expand()
        fingerprints = self._fingerprints(entries)
        missing = [
            {"index": entry.index, "label": entry.label, "fingerprint": fp}
            for entry, fp in zip(entries, fingerprints)
            if fp not in self.store
        ]
        return {
            "campaign": self.campaign.name,
            "store": str(self.store.root),
            "total": len(entries),
            "stored": len(entries) - len(missing),
            "missing": missing,
            "complete": not missing,
            "manifest": str(self.manifest_path),
            "manifest_exists": self.manifest_path.exists(),
        }
