"""Resumable experiment campaigns over the content-addressed store.

A **campaign** is a declarative TOML/JSON file expanding a parameter
lattice into :class:`~repro.api.RunSpec` descriptions
(:class:`Campaign`); a :class:`CampaignRunner` drives the lattice
through a store-backed :class:`~repro.api.Session`, skipping every
entry whose fingerprint is already stored and atomically checkpointing
a JSON manifest after each entry.  Interrupt it anywhere and re-run
the same command: only missing fingerprints execute.

Quickstart::

    from repro.campaign import Campaign, CampaignRunner
    from repro.store import ResultStore

    campaign = Campaign.from_file("campaigns/golden.json")
    runner = CampaignRunner(campaign, ResultStore("results/store"))
    manifest = runner.run()          # resumable: hits skip computation
    assert manifest["complete"]

or from the command line::

    repro campaign run campaigns/golden.json
    repro campaign status campaigns/golden.json
    repro campaign gc --max-entries 1000 --ttl 604800

The checked-in golden campaign (:mod:`repro.campaign.golden`)
regenerates the pinned validation CSVs byte-identically from store
payloads.
"""

from .campaign import Campaign, CampaignEntry, VERBS
from .golden import (
    build_golden_campaign,
    GOLDEN_CAMPAIGN_PATH,
    golden_rows,
    regenerate_golden_csvs,
)
from .runner import CampaignRunner, MANIFEST_FORMAT
from .tables import (
    build_val_prot_campaign,
    regenerate_val_prot_csv,
    VAL_PROT_CAMPAIGN_PATH,
    val_prot_rows,
)

__all__ = [
    "Campaign",
    "CampaignEntry",
    "CampaignRunner",
    "MANIFEST_FORMAT",
    "VERBS",
    "build_golden_campaign",
    "build_val_prot_campaign",
    "GOLDEN_CAMPAIGN_PATH",
    "golden_rows",
    "regenerate_golden_csvs",
    "regenerate_val_prot_csv",
    "VAL_PROT_CAMPAIGN_PATH",
    "val_prot_rows",
]
