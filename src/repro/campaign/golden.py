"""The golden-result CSVs as a checked-in campaign definition.

``campaigns/golden.json`` (kept equal to :func:`build_golden_campaign`
by ``tests/test_campaign_golden.py``) describes every offset sweep
behind the pinned validation/ablation CSVs -- VAL-UNI, VAL-PROT and
ABL-SLOT-empirical -- as declarative RunSpecs.  Running it through a
:class:`~repro.campaign.CampaignRunner` populates a result store;
:func:`regenerate_golden_csvs` then rebuilds the four CSVs (the
ABL-SLOT-analytic table is closed-form and needs no sweeps) from store
payloads plus recomputed closed-form columns, **byte-identically** to
the files under ``results/``:

* the sweeps reuse the exact benchmark recipes (same offsets, horizons
  and reception model), and the store round-trips payload numbers
  through JSON losslessly (ints stay ints, floats repr-round-trip);
* rows go through the same :func:`repro.analysis.write_csv`.

A second run of the same campaign against a warm store executes zero
sweeps -- every fingerprint hits -- which is the regression gate
``benchmarks/bench_parallel_speedup.py`` records.
"""

from __future__ import annotations

from pathlib import Path

from .campaign import Campaign

__all__ = [
    "build_golden_campaign",
    "golden_rows",
    "regenerate_golden_csvs",
    "GOLDEN_CAMPAIGN_PATH",
]

#: The checked-in serialized form of :func:`build_golden_campaign`.
GOLDEN_CAMPAIGN_PATH = (
    Path(__file__).resolve().parents[3] / "campaigns" / "golden.json"
)

OMEGA = 32
SLOT = 2_000

#: (window, k, stride) budgets of benchmarks/bench_validation_unidirectional.py
UNI_CONFIGS = [
    (320, 10, 11),
    (100, 7, 8),
    (64, 5, 7),
    (500, 4, 9),
    (64, 16, 33),
    (200, 20, 21),
]

#: (display name, zoo class, constructor params) of bench_validation_protocols.py
ZOO_CONFIGS = [
    ("Disco", "Disco", {"prime1": 5, "prime2": 7}),
    ("U-Connect", "UConnect", {"prime": 7}),
    ("Searchlight-S", "Searchlight", {"period_slots": 8}),
    ("Diffcodes", "Diffcodes", {"q": 3}),
]

#: Slot lengths of benchmarks/bench_ablation_slot_length.py (empirical half).
SIM_SLOTS = [96, 160, 320, 1_280]

#: I/omega ratios of the analytic half (no sweeps -- closed form).
RATIOS = [2, 3, 4, 8, 16, 64, 256]


def _zoo_instance(class_name: str, params: dict):
    from .. import protocols as zoo

    return getattr(zoo, class_name)(**params, slot_length=SLOT, omega=OMEGA)


def _zoo_offsets(instance, n_offsets: int, slot_filter: bool) -> list[int]:
    """The benchmark offset grids: uniform over one advertiser period,
    optionally excluding the slot-aligned deadlock measure."""
    from ..protocols import Role

    period = int(instance.device(Role.E).beacons.period)
    step = max(1, period // n_offsets)
    offsets = range(0, period, step)
    if not slot_filter:
        return list(offsets)
    return [
        off for off in offsets if 2 * OMEGA <= off % SLOT <= SLOT - 2 * OMEGA
    ]


def build_golden_campaign() -> Campaign:
    """The golden campaign, built from the benchmark recipes."""
    from .. import protocols as zoo
    from ..core.optimal import synthesize_unidirectional

    runs = []
    for window, k, stride in UNI_CONFIGS:
        design = synthesize_unidirectional(OMEGA, window, k, stride)
        runs.append({
            "verb": "sweep",
            "label": f"val-uni:d={window},k={k},n={stride}",
            "spec": {
                "pair": {
                    "kind": "unidirectional",
                    "omega": OMEGA,
                    "window": window,
                    "k": k,
                    "stride": stride,
                },
                "sampling": "critical",
                "omega": OMEGA,
                "horizon": design.worst_case_latency * 2 + 1,
            },
        })
    for display, class_name, params in ZOO_CONFIGS:
        instance = _zoo_instance(class_name, params)
        runs.append({
            "verb": "sweep",
            "label": f"val-prot:{display}",
            "spec": {
                "pair": {
                    "kind": "zoo",
                    "protocol": class_name,
                    "params": dict(params, slot_length=SLOT, omega=OMEGA),
                },
                "offsets": _zoo_offsets(instance, 256, slot_filter=True),
                "horizon": int(instance.predicted_worst_case_latency()) * 3,
            },
        })
    for slot in SIM_SLOTS:
        instance = zoo.Searchlight(
            period_slots=8, slot_length=slot, omega=OMEGA
        )
        runs.append({
            "verb": "sweep",
            "label": f"abl-slot:{slot}",
            "spec": {
                "pair": {
                    "kind": "zoo",
                    "protocol": "Searchlight",
                    "params": {
                        "period_slots": 8,
                        "slot_length": slot,
                        "omega": OMEGA,
                    },
                },
                "offsets": _zoo_offsets(instance, 400, slot_filter=False),
                "horizon": int(instance.predicted_worst_case_latency() * 3),
            },
        })
    return Campaign(
        name="golden",
        description=(
            "Every offset sweep behind the pinned validation/ablation "
            "CSVs (val-uni, val-prot, abl-slot-empirical), as "
            "store-addressable RunSpecs."
        ),
        runs=runs,
    )


# ----------------------------------------------------------------------
# Store-fed regeneration of the pinned CSVs
# ----------------------------------------------------------------------


def _payloads_by_label(store, campaign: Campaign) -> dict:
    """label -> stored sweep payload for every campaign entry; raises
    ``KeyError`` naming the first missing fingerprint (run the campaign
    first)."""
    payloads = {}
    for entry in campaign.expand():
        fp = store.fingerprint(entry.verb, entry.spec)
        result = store.get(fp)
        if result is None:
            raise KeyError(
                f"store {store.root} is missing campaign entry "
                f"{entry.label!r} (fingerprint {fp}); run the golden "
                f"campaign first"
            )
        payloads[entry.label] = result.payload
    return payloads


def golden_rows(store, campaign: Campaign | None = None) -> dict:
    """Rebuild the four golden tables from a populated store.

    Returns ``{csv stem: (headers, rows)}`` with sweep-derived columns
    read from store payloads and closed-form columns recomputed -- the
    exact row recipes of the three benchmarks.
    """
    from ..analysis import gap_for_protocol
    from ..core.bounds import unidirectional_bound
    from ..core.optimal import synthesize_unidirectional
    from ..core.slotted_bounds import slot_length_analysis
    from ..protocols import Role

    campaign = campaign or build_golden_campaign()
    payloads = _payloads_by_label(store, campaign)

    uni_rows = []
    for window, k, stride in UNI_CONFIGS:
        design = synthesize_unidirectional(OMEGA, window, k, stride)
        payload = payloads[f"val-uni:d={window},k={k},n={stride}"]
        bound = unidirectional_bound(OMEGA, design.beta, design.gamma)
        measured_full = payload["worst_one_way"] + design.beacons.period
        uni_rows.append([
            f"d={window},k={k},n={stride}",
            design.beta,
            design.gamma,
            bound / 1e6,
            measured_full / 1e6,
            payload["failures"],
            payload["offsets_evaluated"],
        ])

    prot_rows = []
    for display, class_name, params in ZOO_CONFIGS:
        instance = _zoo_instance(class_name, params)
        payload = payloads[f"val-prot:{display}"]
        claim = instance.predicted_worst_case_latency()
        full_latency = (
            payload["worst_one_way"]
            + instance.device(Role.E).beacons.max_gap
        )
        gap = gap_for_protocol(
            instance, omega=OMEGA, measured_latency=full_latency
        )
        prot_rows.append([
            display,
            instance.duty_cycle(),
            claim / 1e3,
            payload["worst_one_way"] / 1e3,
            payload["failures"],
            gap.ratio_constrained,
        ])

    analytic_rows = [
        [
            r,
            slot_length_analysis(float(r)).overlap_success_fraction,
            slot_length_analysis(float(r)).latency_penalty,
        ]
        for r in RATIOS
    ]

    empirical_rows = []
    for slot in SIM_SLOTS:
        payload = payloads[f"abl-slot:{slot}"]
        empirical_rows.append([
            slot,
            slot / OMEGA,
            payload["failures"] / payload["offsets_evaluated"],
        ])

    return {
        "val-uni": (
            [
                "design", "beta", "gamma", "bound [s]", "measured worst [s]",
                "failures", "offsets",
            ],
            uni_rows,
        ),
        "val-prot": (
            [
                "protocol", "eta", "claimed worst [ms]", "measured worst [ms]",
                "failures", "x util-bound",
            ],
            prot_rows,
        ),
        "abl-slot-analytic": (
            ["I/omega", "success fraction", "latency penalty"],
            analytic_rows,
        ),
        "abl-slot-empirical": (
            ["slot [us]", "I/omega", "failure fraction"],
            empirical_rows,
        ),
    }


def regenerate_golden_csvs(store, results_dir, campaign: Campaign | None = None) -> list[Path]:
    """Write the four golden CSVs under ``results_dir`` from a populated
    store; returns the written paths.  With the store fed by the golden
    campaign these files are byte-identical to the pinned ones."""
    from ..analysis import write_csv

    results_dir = Path(results_dir)
    written = []
    for stem, (headers, rows) in golden_rows(store, campaign).items():
        written.append(write_csv(results_dir / f"{stem}.csv", headers, rows))
    return written
