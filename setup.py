"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP-517 editable installs (which build a wheel) fail.  Keeping a setup.py
and omitting ``[build-system]`` from pyproject.toml lets
``pip install -e .`` use the legacy ``setup.py develop`` path, which works
without wheel support.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
