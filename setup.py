"""Legacy setup shim.

All metadata lives in pyproject.toml -- including the ``[fast]`` extra
that enables the NumPy-vectorized sweep backend -- with
``[build-system]`` omitted so setuptools reads it directly.  Install
paths:

* online (CI, users): ``pip install -e .[fast]`` works normally;
* offline container (setuptools without ``wheel``, where pip's PEP-517
  paths fail): ``python setup.py develop`` -- the legacy command needs
  no wheel support -- or just ``PYTHONPATH=src`` as the tier-1 test
  harness does.
"""

from setuptools import setup

setup()
