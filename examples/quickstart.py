"""Quickstart: bounds, a bound-attaining schedule, and the Session API.

Run with::

    python examples/quickstart.py

Walks through the package's layers in ~70 lines: evaluate the
fundamental limits for an energy budget (Theorems 5.4-5.7, C.1), build a
schedule that attains them, then validate it through the **unified
experiment API** -- one declarative :class:`repro.api.RunSpec` per
experiment, one lifecycle-managed :class:`repro.api.Session` running
them all.  The session resolves the sweep backend once (set
``REPRO_BACKEND=python|numpy|pooled`` or pass a
:class:`repro.api.RuntimeProfile` to choose), owns every worker pool it
creates, and returns :class:`repro.api.RunResult` objects that carry
their full reproduction recipe (spec + profile + backend + timings) and
round-trip to JSON.
"""

from repro import core
from repro.analysis import format_seconds, format_table
from repro.api import RunSpec, Session

OMEGA = 32  # beacon duration in microseconds (a BLE-sized packet)
ETA = 0.01  # 1% duty-cycle budget per device


def main() -> None:
    # ------------------------------------------------------------------
    # 1. What does theory allow at a 1% duty-cycle?
    # ------------------------------------------------------------------
    rows = [
        ["Symmetric two-way (Thm 5.5)", format_seconds(core.symmetric_bound(OMEGA, ETA))],
        ["One-way, either direction (Thm C.1)", format_seconds(core.one_way_bound(OMEGA, ETA))],
        ["Asymmetric 4x/0.25x budgets (Thm 5.7)",
         format_seconds(core.asymmetric_bound(OMEGA, 4 * ETA, ETA / 4))],
    ]
    print(format_table(["scenario", "lowest guaranteeable latency"], rows,
                       title=f"Fundamental bounds at eta={ETA:.0%}, omega={OMEGA} us"))

    # ------------------------------------------------------------------
    # 2. Build a schedule that attains the bound, verified by coverage map.
    # ------------------------------------------------------------------
    protocol, design = core.synthesize_symmetric(OMEGA, ETA)
    print(f"\nSynthesized: beacon every {design.beacons.period} us, "
          f"scan {design.reception.windows[0].duration} us per {design.reception.period} us")
    print(f"verified deterministic={design.deterministic}, disjoint={design.disjoint}")
    print(f"guaranteed worst-case latency: {format_seconds(design.worst_case_latency)} "
          f"(bound at achieved eta: "
          f"{format_seconds(core.symmetric_bound(OMEGA, protocol.eta))})")

    # ------------------------------------------------------------------
    # 3. One session, declarative specs: exhaustive validation + DES run.
    # ------------------------------------------------------------------
    with Session() as session:  # default RuntimeProfile (env-aware)
        # Exhaustive sweep over every *critical* phase offset of the
        # advertiser/scanner split -- the exact worst case, no sampling.
        sweep = session.sweep(RunSpec(
            pair={"kind": "symmetric-split", "eta": ETA, "omega": OMEGA},
            sampling="critical",
            omega=OMEGA,
            horizon_multiple=2,
        ))
        report = sweep.raw
        print(f"\nOffset sweep over {report.offsets_evaluated} critical offsets "
              f"(backend={sweep.backend}, {sweep.timings['run']:.2f}s): "
              f"{report.failures} failures, worst packet-to-packet latency "
              f"{format_seconds(report.worst_one_way)}")

        # The same pair in the event-driven simulator, as a scenario.
        simulated = session.simulate(RunSpec(
            scenario={"factory": "symmetric_pair",
                      "params": {"eta": ETA, "omega": OMEGA, "seed": 1}},
            seed=1,
        ))
        payload = simulated.payload
        print(f"\nSimulated pair: {payload['pairs_discovered']}/"
              f"{payload['pairs_expected']} directed discoveries within "
              f"{format_seconds(payload['horizon'])} "
              f"(median latency {format_seconds(payload['median_latency'])})")

    # Every result carries its full recipe -- dump one to JSON and it
    # reproduces: spec, profile, resolved backend, timings, numbers.
    print(f"\nProvenance: verb={sweep.verb!r}, backend={sweep.backend!r}, "
          f"profile jobs={sweep.profile['jobs']}")


if __name__ == "__main__":
    main()
