"""Quickstart: bounds, a bound-attaining schedule, and a simulated pair.

Run with::

    python examples/quickstart.py

Walks through the package's three layers in ~60 lines: evaluate the
fundamental limits for an energy budget (Theorems 5.4-5.7, C.1), build a
schedule that attains them, verify it by coverage map and by exhaustive
simulation, and watch two devices discover each other in the
discrete-event simulator.
"""

from repro import core
from repro.analysis import format_seconds, format_table
from repro.simulation import critical_offsets, simulate_pair, sweep_offsets
from repro.core.sequences import NDProtocol

OMEGA = 32  # beacon duration in microseconds (a BLE-sized packet)
ETA = 0.01  # 1% duty-cycle budget per device


def main() -> None:
    # ------------------------------------------------------------------
    # 1. What does theory allow at a 1% duty-cycle?
    # ------------------------------------------------------------------
    rows = [
        ["Symmetric two-way (Thm 5.5)", format_seconds(core.symmetric_bound(OMEGA, ETA))],
        ["One-way, either direction (Thm C.1)", format_seconds(core.one_way_bound(OMEGA, ETA))],
        ["Asymmetric 4x/0.25x budgets (Thm 5.7)",
         format_seconds(core.asymmetric_bound(OMEGA, 4 * ETA, ETA / 4))],
    ]
    print(format_table(["scenario", "lowest guaranteeable latency"], rows,
                       title=f"Fundamental bounds at eta={ETA:.0%}, omega={OMEGA} us"))

    # ------------------------------------------------------------------
    # 2. Build a schedule that attains the bound, verified by coverage map.
    # ------------------------------------------------------------------
    protocol, design = core.synthesize_symmetric(OMEGA, ETA)
    print(f"\nSynthesized: beacon every {design.beacons.period} us, "
          f"scan {design.reception.windows[0].duration} us per {design.reception.period} us")
    print(f"verified deterministic={design.deterministic}, disjoint={design.disjoint}")
    print(f"guaranteed worst-case latency: {format_seconds(design.worst_case_latency)} "
          f"(bound at achieved eta: "
          f"{format_seconds(core.symmetric_bound(OMEGA, protocol.eta))})")

    # ------------------------------------------------------------------
    # 3. Exhaustive validation: sweep every critical phase offset.
    # ------------------------------------------------------------------
    adv = NDProtocol(beacons=design.beacons, reception=None, name="advertiser")
    scan = NDProtocol(beacons=None, reception=design.reception, name="scanner")
    offsets = critical_offsets(adv, scan, omega=OMEGA)
    report = sweep_offsets(adv, scan, offsets, horizon=design.worst_case_latency * 2)
    print(f"\nOffset sweep over {report.offsets_evaluated} critical offsets: "
          f"{report.failures} failures, worst packet-to-packet latency "
          f"{format_seconds(report.worst_one_way)}")

    # ------------------------------------------------------------------
    # 4. Watch one pair in the event-driven simulator.
    # ------------------------------------------------------------------
    outcome = simulate_pair(protocol, protocol, offset=12_345,
                            horizon=design.worst_case_latency * 4)
    print(f"\nSimulated pair at offset 12345 us: "
          f"F found E after {format_seconds(outcome.e_discovered_by_f)}, "
          f"E found F after {format_seconds(outcome.f_discovered_by_e)}")


if __name__ == "__main__":
    main()
