"""Dense networks: collisions, constrained channel utilization, redundancy.

Run with::

    python examples/dense_network_collisions.py

Section 5.2.2 / Appendix B territory: when many devices discover each
other simultaneously, beacons collide, and a protocol tuned for the
two-device optimum (channel utilization beta = eta/2) starts failing.
This example:

1. simulates S identical devices and measures collision losses,
2. shows how capping the channel utilization (Theorem 5.6) trades pair
   latency for network-level reliability,
3. sizes an Appendix-B redundant schedule for a failure-rate target.
"""

from repro.analysis import format_seconds, format_table, wilson_interval
from repro.core import (
    constrained_bound,
    optimize_redundancy,
    symmetric_bound,
    synthesize_constrained,
    synthesize_symmetric,
)
from repro.simulation import simulate_network

OMEGA = 32
ETA = 0.05


def run_network(protocol, n_devices, horizon, seed):
    return simulate_network(
        [protocol] * n_devices, horizon=horizon, seed=seed,
        advertising_jitter=200,
    )


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The two-device optimum under increasing contention.
    # ------------------------------------------------------------------
    optimal_protocol, design = synthesize_symmetric(OMEGA, ETA)
    horizon = design.worst_case_latency * 8
    rows = []
    for n_devices in (2, 5, 10, 20):
        result = run_network(optimal_protocol, n_devices, horizon, seed=42)
        lo, hi = wilson_interval(
            result.pairs_discovered, result.pairs_expected
        )
        rows.append([
            n_devices,
            f"{result.discovery_rate:.1%}",
            f"[{lo:.1%}, {hi:.1%}]",
            result.total_collisions,
            format_seconds(result.quantile(0.5)),
        ])
    print(format_table(
        ["devices", "pairs discovered", "95% CI", "collision events", "median latency"],
        rows,
        title=f"Pair-optimal schedule (beta={design.beta:.3f}) under contention",
    ))

    # ------------------------------------------------------------------
    # 2. Capping the channel utilization (Theorem 5.6).
    # ------------------------------------------------------------------
    beta_max = 0.005  # ~4x below the pair optimum of eta/2 = 0.025
    capped_protocol, capped_design = synthesize_constrained(
        OMEGA, ETA, beta_max
    )
    print(f"\nCapped schedule: beta={capped_design.beta:.4f}, "
          f"gamma={capped_design.gamma:.4f}")
    print(f"  pair worst case grows from "
          f"{format_seconds(symmetric_bound(OMEGA, ETA))} to "
          f"{format_seconds(constrained_bound(OMEGA, ETA, beta_max))} "
          f"(Theorem 5.6)")
    rows = []
    for n_devices in (10, 20):
        uncapped = run_network(optimal_protocol, n_devices, horizon, seed=7)
        capped = run_network(capped_protocol, n_devices, horizon * 4, seed=7)
        rows.append([
            n_devices,
            f"{uncapped.packets_lost_to_collisions}",
            f"{capped.packets_lost_to_collisions}",
        ])
    print(format_table(
        ["devices", "packets lost (uncapped)", "packets lost (capped)"],
        rows,
        title="Collision losses: pair-optimal vs utilization-capped",
    ))

    # ------------------------------------------------------------------
    # 3. Appendix B: redundancy sized for a failure-rate target.
    # ------------------------------------------------------------------
    plan = optimize_redundancy(
        eta=ETA, target_pf=0.0005, n_senders=3, omega=OMEGA * 1e-6
    )
    print(f"\nAppendix-B plan for Pf=0.05% among S=3 devices at eta={ETA:.0%}:")
    print(f"  cover every offset Q={plan.redundancy} times, "
          f"beta={plan.beta:.4f} (channel utilization)")
    print(f"  latency achieved with 99.95% probability: "
          f"{plan.latency:.4f} s")
    print(f"  isolated-pair worst case: {plan.pair_latency:.4f} s")
    print(f"  per-beacon collision probability: "
          f"{plan.per_beacon_collision_prob:.1%}")


if __name__ == "__main__":
    main()
