"""Protocol shootout: the zoo versus the fundamental bounds.

Run with::

    python examples/protocol_shootout.py

Reproduces the paper's Section-6 classification with concrete
configurations: for each protocol, the worst-case latency, the
duty-cycle, the channel utilization, and the two gap ratios --

* against the unconstrained bound ``4 alpha omega / eta^2`` (Thm 5.5),
* against the bound at the protocol's own channel utilization (Thm 5.6,
  the Table-1 metric).

The paper's conclusions emerge: slotted protocols never reach the
unconstrained bound (their utilization is tiny because beacons are a
sliver of each slot); Diffcodes alone reach the utilization-matched
bound; the slotless optimal construction reaches both.

The closing section swaps analysis for experiment: one
:class:`repro.api.Session` runs a declarative
:meth:`~repro.api.Session.worst_case` spec per protocol family
(verification-scale slot lengths), cross-checking each claimed worst
case against the exact offset sweep *and* the event-driven simulator --
the same facade the CLI and the test zoo run on.
"""

from repro.analysis import (
    format_seconds,
    format_table,
    gap_for_protocol,
    gap_table_rows,
)
from repro.api import RunSpec, Session
from repro.protocols import (
    Birthday,
    Diffcodes,
    Disco,
    GridQuorum,
    Nihao,
    OptimalSlotless,
    Role,
    Searchlight,
    UConnect,
)

OMEGA = 32
SLOT = 25_000  # 25 ms slots: large enough that I >> omega


def main() -> None:
    zoo = [
        Disco(37, 43, slot_length=SLOT, omega=OMEGA),
        UConnect(31, slot_length=SLOT, omega=OMEGA),
        Searchlight(40, slot_length=SLOT, omega=OMEGA),
        GridQuorum(6, slot_length=SLOT, omega=OMEGA),
        Diffcodes(9, slot_length=SLOT, omega=OMEGA),
        Nihao(n=40, slot_length=1_300, omega=OMEGA),
        OptimalSlotless(eta=0.05, omega=OMEGA),
    ]
    gaps = [gap_for_protocol(p, omega=OMEGA) for p in zoo]
    print(format_table(
        [
            "protocol", "eta", "beta",
            "worst case [s]", "Thm 5.5 bound [s]",
            "x unconstrained", "x util-matched",
        ],
        gap_table_rows(gaps),
        title=f"Worst-case latency vs the fundamental bounds (omega={OMEGA} us, I={SLOT} us)",
        precision=3,
    ))

    print(
        "\nReading the ratios (Section 6):\n"
        "  * 'x util-matched' ~ 1.0 -> optimal in the latency/duty-cycle/"
        "channel-utilization metric (Diffcodes, optimal slotless).\n"
        "  * 'x unconstrained' >> 1 for every slotted protocol: with "
        "I >> omega their channel utilization is far below eta/2, so the "
        "unconstrained optimum is out of reach (the paper's key negative "
        "result for slotted designs).\n"
    )

    # The probabilistic baseline has no worst case -- report its quantiles.
    birthday = Birthday(p_tx=0.025, p_rx=0.025, slot_length=SLOT, omega=OMEGA)
    q50 = birthday.latency_quantile_slots(0.5) * SLOT
    q999 = birthday.latency_quantile_slots(0.999) * SLOT
    print(format_table(
        ["protocol", "eta", "median", "99.9th percentile", "worst case"],
        [[
            "Birthday",
            f"{birthday.device(Role.E).eta:.4f}",
            format_seconds(q50),
            format_seconds(q999),
            "unbounded",
        ]],
        title="The probabilistic baseline for contrast",
    ))

    # ------------------------------------------------------------------
    # Empirical cross-check through the Session facade: for each family
    # (at verification-scale slot lengths, so the exact sweep is quick),
    # the measured worst case over *all* critical offsets plus a DES
    # spot-check -- one declarative spec per protocol, one session, one
    # resolved backend for the whole batch.
    # ------------------------------------------------------------------
    verify_slot = 200
    # (display name, pair spec, beacon length for the critical-offset
    # enumeration -- must match the pair's actual omega).
    families = [
        ("Disco(3,5)", {"kind": "zoo", "protocol": "Disco",
                        "params": {"prime1": 3, "prime2": 5,
                                   "slot_length": verify_slot,
                                   "omega": 16}}, 16),
        ("U-Connect(5)", {"kind": "zoo", "protocol": "UConnect",
                          "params": {"prime": 5, "slot_length": verify_slot,
                                     "omega": 16}}, 16),
        ("Searchlight(4)", {"kind": "zoo", "protocol": "Searchlight",
                            "params": {"period_slots": 4,
                                       "slot_length": verify_slot,
                                       "omega": 16}}, 16),
        ("Optimal slotless", {"kind": "symmetric", "eta": 0.05,
                              "omega": 32}, 32),
    ]
    rows = []
    with Session() as session:  # default RuntimeProfile (env-aware)
        for name, pair, omega in families:
            result = session.worst_case(RunSpec(
                pair=pair, horizon_multiple=4, omega=omega,
                des_spot_checks=4,
            ))
            outcome = result.raw
            rows.append([
                name,
                outcome.offsets_checked,
                format_seconds(outcome.analytic.worst_one_way),
                "yes" if outcome.des_agrees else "NO",
            ])
        backend = session.backend_name
    print(format_table(
        ["protocol", "offsets checked", "measured worst case", "DES agrees"],
        rows,
        title=f"Exact worst-case verification via Session (backend={backend})",
    ))


if __name__ == "__main__":
    main()
