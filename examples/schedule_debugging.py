"""Debugging ND schedules: coverage maps, timelines and collision locks.

Run with::

    python examples/schedule_debugging.py

Shows the library's introspection tools on a real failure hunt:

1. render the coverage map of a schedule to *see* why it is (or is not)
   deterministic -- the paper's Figure-3 pictures, in your terminal;
2. trace a simulated pair event by event;
3. diagnose the nastiest field bug deterministic ND has: two devices
   whose beacon trains boot within one packet of each other collide on
   every single beacon, forever (Lemma 5.2's dark side), and only
   advDelay-style randomization dissolves the lock.
"""

from repro.analysis import render_coverage_map, render_schedule
from repro.core.coverage import CoverageMap
from repro.core.optimal import synthesize_symmetric, synthesize_unidirectional
from repro.simulation import (
    Channel,
    EventKind,
    IdealClock,
    Node,
    Simulator,
    simulate_network,
    TraceRecorder,
)
from repro.workloads import gradual_join


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Coverage maps: a correct tiling vs a broken stride.
    # ------------------------------------------------------------------
    good = synthesize_unidirectional(omega=32, window=320, k=8, stride=9)
    print(render_coverage_map(
        CoverageMap([i * good.beacons.period for i in range(8)], good.reception),
        width=64,
    ))
    print()
    # A stride sharing a factor with k covers half the offsets twice and
    # half never -- the classic mistake the Overlap Theorem forbids.
    broken_gap = 10 * 320  # stride 10, gcd(10 mod 8, 8) = 2
    print(render_coverage_map(
        CoverageMap([i * broken_gap for i in range(8)], good.reception),
        width=64,
    ))

    # ------------------------------------------------------------------
    # 2. One device's schedule on a time axis ('!' TX, '=' RX, 'X' both).
    # ------------------------------------------------------------------
    print()
    print(render_schedule(good.beacons, good.reception,
                          span=int(good.reception.period)))

    # ------------------------------------------------------------------
    # 3. Event-by-event trace of a discovering pair.
    # ------------------------------------------------------------------
    protocol, design = synthesize_symmetric(omega=32, eta=0.05)
    sim, channel, recorder = Simulator(), Channel(), TraceRecorder()
    node_a = Node("A", protocol, sim, channel, clock=IdealClock(0))
    node_b = Node("B", protocol, sim, channel, clock=IdealClock(12_345))
    recorder.attach(node_a)
    recorder.attach(node_b)
    node_a.activate()
    node_b.activate()
    sim.run_until(design.worst_case_latency)
    print()
    discoveries = recorder.of_kind(EventKind.DISCOVERY)
    print(f"trace: {len(recorder.events)} events, "
          f"{len(discoveries)} discoveries")
    for event in discoveries:
        print(f"  {event.time:>9} us  {event.node} discovered "
              f"{event.peer} ({event.detail})")

    # ------------------------------------------------------------------
    # 4. The permanent-collision lock and its cure.
    # ------------------------------------------------------------------
    scenario = gradual_join(n_devices=4, eta=0.05, seed=2)
    locked = simulate_network(
        scenario.protocols, scenario.phases, horizon=scenario.horizon,
        start_times=scenario.start_times,
    )
    cured = simulate_network(
        scenario.protocols, scenario.phases, horizon=scenario.horizon,
        start_times=scenario.start_times, advertising_jitter=200, seed=5,
    )
    print()
    print("gradual join, 4 devices (seed 2: two trains boot 14 us apart "
          "mod the beacon gap):")
    print(f"  deterministic schedules : {locked.pairs_discovered}/"
          f"{locked.pairs_expected} directed pairs "
          f"({locked.total_collisions} repeating collisions)")
    print(f"  with 0-200 us advDelay  : {cured.pairs_discovered}/"
          f"{cured.pairs_expected} directed pairs")


if __name__ == "__main__":
    main()
