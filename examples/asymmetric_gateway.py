"""Asymmetric discovery: a mains-powered gateway and frugal peripherals.

Run with::

    python examples/asymmetric_gateway.py

Theorem 5.7 says the two-way bound is ``4 alpha omega / (eta_E eta_F)``:
what matters is the *product* of the budgets.  A gateway that can afford
a 10% duty-cycle lets coin-cell peripherals idle at 0.5% and still meet
latencies that symmetric peers would need ~2.2% each for.  This example
synthesizes the asymmetric pair, validates it in simulation, and
reproduces the Figure-6 energy accounting.
"""

from repro.analysis import format_seconds, format_table
from repro.core import asymmetric_bound, symmetric_bound, synthesize_asymmetric
from repro.simulation import simulate_network
from repro.workloads import gateway_and_peripherals

OMEGA = 32
ETA_GATEWAY = 0.10
ETA_PERIPHERAL = 0.005


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The asymmetric pair and its bound.
    # ------------------------------------------------------------------
    gateway, peripheral, d_gp, d_pg = synthesize_asymmetric(
        OMEGA, ETA_GATEWAY, ETA_PERIPHERAL
    )
    two_way = max(d_gp.worst_case_latency, d_pg.worst_case_latency)
    bound = asymmetric_bound(OMEGA, gateway.eta, peripheral.eta)
    print(f"Gateway eta={gateway.eta:.3%}, peripheral eta={peripheral.eta:.3%}")
    print(f"Guaranteed two-way discovery: {format_seconds(two_way)} "
          f"(Theorem 5.7 bound: {format_seconds(bound)})")

    equivalent_sym = (gateway.eta * peripheral.eta) ** 0.5
    print(f"A symmetric pair would need eta={equivalent_sym:.3%} *each* "
          f"for the same latency "
          f"({format_seconds(symmetric_bound(OMEGA, equivalent_sym))}).")

    # ------------------------------------------------------------------
    # 2. Figure-6-style accounting: L * (eta_E + eta_F) across asymmetry.
    # ------------------------------------------------------------------
    budget_sum = 0.04
    rows = []
    for ratio in (1, 2, 5, 10, 20):
        eta_e = budget_sum * ratio / (1 + ratio)
        eta_f = budget_sum / (1 + ratio)
        product = asymmetric_bound(OMEGA, eta_e, eta_f) * budget_sum
        rows.append([
            f"{ratio}:1",
            f"{eta_e:.3%}",
            f"{eta_f:.3%}",
            f"{product / 1e6:.2f} s x dc",
        ])
    print("\n" + format_table(
        ["asymmetry", "eta_E", "eta_F", "L x (eta_E + eta_F)"],
        rows,
        title=f"Cost of asymmetry at a fixed joint budget of {budget_sum:.0%}",
    ))
    print("(For a fixed *sum*, mild asymmetry costs little; the product "
          "eta_E * eta_F -- and with it the bound -- degrades as "
          "(1+r)^2/4r. See EXPERIMENTS.md for the full Figure-6 discussion.)")

    # ------------------------------------------------------------------
    # 3. Simulate the whole deployment.
    # ------------------------------------------------------------------
    scenario = gateway_and_peripherals(
        n_peripherals=4,
        eta_gateway=ETA_GATEWAY,
        eta_peripheral=ETA_PERIPHERAL,
        omega=OMEGA,
        seed=11,
    )
    result = simulate_network(
        scenario.protocols, scenario.phases, horizon=scenario.horizon
    )
    gw_discoveries = sorted(
        (receiver, sender, time)
        for (receiver, sender), time in result.discovery_times.items()
        if "n0" in (receiver, sender)
    )
    rows = [
        [f"{s} -> {r}", format_seconds(t)] for r, s, t in gw_discoveries
    ]
    print("\n" + format_table(
        ["direction", "discovered after"],
        rows,
        title="Simulated gateway <-> peripheral discoveries",
    ))


if __name__ == "__main__":
    main()
