"""BLE-like advertising and scanning: how good can (Ta, Ts, ds) get?

Run with::

    python examples/ble_advertising_scan.py

The paper's Section 1 motivation: billions of BLE devices run
periodic-interval (PI) protocols whose three parameters are free, and
until these bounds nobody knew how close to optimal a configuration
could get.  This example:

1. evaluates several BLE-spec-flavoured configurations *exactly* (via
   coverage maps -- the results the recursive scheme of [18] produces),
2. shows the Ta/Ts coupling trap and how BLE's advDelay jitter escapes
   it,
3. derives a near-optimal parametrization for a duty-cycle budget and
   compares it against the Theorem-5.5 bound.
"""

from repro.analysis import format_seconds, format_table
from repro.core.bounds import symmetric_bound
from repro.protocols import (
    ble_parametrization_for_duty_cycle,
    PeriodicInterval,
    pi_latency_profile,
    Role,
)
from repro.simulation import simulate_pair

OMEGA = 32


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Exact worst cases of BLE-spec-flavoured configurations.
    #    (intervals in BLE's 0.625/1.25 ms grids, windows per the spec)
    # ------------------------------------------------------------------
    configs = [
        ("fast pairing", 30_000, 30_000, 30_000),        # continuous scan
        ("balanced", 152_500, 1_280_000, 11_250),
        ("background", 1_022_500, 5_120_000, 11_250),
        ("coupled trap", 100_000, 100_000, 10_000),      # Ta == Ts
    ]
    rows = []
    for name, ta, ts, ds in configs:
        profile = pi_latency_profile(ta, ts, ds, OMEGA)
        rows.append([
            name,
            f"{ta/1000:g} ms",
            f"{ts/1000:g} ms",
            f"{ds/1000:g} ms",
            "yes" if profile.deterministic else "NO",
            format_seconds(profile.worst_case_us),
            format_seconds(profile.mean_packet_to_packet_us),
        ])
    print(format_table(
        ["config", "Ta", "Ts", "ds", "deterministic", "worst case", "mean l*"],
        rows,
        title="Exact discovery latencies of PI configurations (coverage-map analysis)",
    ))

    # ------------------------------------------------------------------
    # 2. The coupling trap and the advDelay rescue.
    # ------------------------------------------------------------------
    trap = PeriodicInterval(100_000, 100_000, 10_000, omega=OMEGA)
    adv, scan = trap.device(Role.E), trap.device(Role.F)
    locked = simulate_pair(adv, scan, offset=50_000, horizon=20_000_000)
    jittered = simulate_pair(
        adv, scan, offset=50_000, horizon=200_000_000,
        advertising_jitter=10_000, seed=1,
    )
    print("\nTa == Ts coupling trap at offset 50 ms:")
    print(f"  without advDelay: discovered = {locked.e_discovered_by_f is not None}")
    print(f"  with 0-10 ms advDelay: discovered after "
          f"{format_seconds(jittered.e_discovered_by_f)}")

    # ------------------------------------------------------------------
    # 3. A near-optimal parametrization for a 2% budget.
    # ------------------------------------------------------------------
    eta = 0.02
    pi = ble_parametrization_for_duty_cycle(eta, OMEGA)
    latency = pi.predicted_worst_case_latency()
    achieved_eta = pi.device(Role.E).eta
    bound = symmetric_bound(OMEGA, achieved_eta)
    print(f"\nNear-optimal PI parametrization for eta={eta:.0%}:")
    print(f"  Ta={pi.adv_interval} us, Ts={pi.scan_interval} us, "
          f"ds={pi.scan_window} us (achieved eta={achieved_eta:.4%})")
    print(f"  exact worst case: {format_seconds(latency)}")
    print(f"  Theorem 5.5 bound: {format_seconds(bound)} "
          f"(ratio {latency / bound:.3f})")


if __name__ == "__main__":
    main()
