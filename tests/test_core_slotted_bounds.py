"""Tests of the slotted-protocol bounds and Table 1 (Section 6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import slotted_bounds as sb
from repro.core.bounds import constrained_bound, symmetric_bound

OMEGA = 32e-6


class TestSlottedDutyCycle:
    def test_equation_17(self):
        # eta = k (I + alpha omega) / (T I)
        eta = sb.slotted_duty_cycle(
            active_slots=10, total_slots=100, slot_length=1e-2, omega=OMEGA
        )
        assert eta == pytest.approx(10 * (1e-2 + OMEGA) / (100 * 1e-2))

    def test_validation(self):
        with pytest.raises(ValueError):
            sb.slotted_duty_cycle(0, 100, 1e-2, OMEGA)
        with pytest.raises(ValueError):
            sb.slotted_duty_cycle(101, 100, 1e-2, OMEGA)


class TestLatencyDutyCycleBounds:
    def test_equation_18_alpha_one_matches_fundamental(self):
        """For alpha = 1 the slotted bound (1+2a+a^2) = 4 equals Thm 5.5."""
        for eta in (0.005, 0.02, 0.1):
            assert sb.slotted_bound_one_beacon(OMEGA, eta, 1.0) == pytest.approx(
                symmetric_bound(OMEGA, eta, 1.0)
            )

    @given(alpha=st.floats(0.25, 4.0), eta=st.floats(0.001, 0.5))
    def test_equation_18_never_beats_fundamental(self, alpha, eta):
        slotted = sb.slotted_bound_one_beacon(OMEGA, eta, alpha)
        fundamental = symmetric_bound(OMEGA, eta, alpha)
        assert slotted >= fundamental * (1 - 1e-12)

    def test_equation_19_optimal_at_alpha_half(self):
        """The two-beacon bound ties the fundamental bound only at a=1/2."""
        alpha = sb.optimal_alpha_two_beacons()
        assert alpha == 0.5
        eta = 0.01
        assert sb.slotted_bound_two_beacons(OMEGA, eta, alpha) == pytest.approx(
            symmetric_bound(OMEGA, eta, alpha)
        )

    @given(alpha=st.floats(0.1, 4.0), eta=st.floats(0.001, 0.5))
    def test_equation_19_never_beats_fundamental(self, alpha, eta):
        slotted = sb.slotted_bound_two_beacons(OMEGA, eta, alpha)
        fundamental = symmetric_bound(OMEGA, eta, alpha)
        assert slotted >= fundamental * (1 - 1e-12)

    def test_section_6_claim_two_beacons_lower_in_slots_not_in_time(self):
        """[6,7] beats [16,17] in slots; in time it's equal or worse except
        exactly at alpha=1/2 where both meet the fundamental bound."""
        eta = 0.01
        # alpha = 1: Eq 18 gives 4, Eq 19 gives 4.5 -> Eq 19 worse in time.
        assert sb.slotted_bound_two_beacons(OMEGA, eta, 1.0) > (
            sb.slotted_bound_one_beacon(OMEGA, eta, 1.0)
        )


class TestChannelUtilizationBound:
    def test_equation_21_matches_theorem_5_6_when_binding(self):
        """Below the kink (beta <= eta/2a) slotted protocols are optimal."""
        eta = 0.05
        for beta in (0.001, 0.01, 0.024):
            assert beta <= eta / 2
            assert sb.slotted_channel_utilization_bound(
                OMEGA, eta, beta
            ) == pytest.approx(constrained_bound(OMEGA, eta, beta))

    def test_above_kink_slotted_cannot_reach_fundamental(self):
        """For beta > eta/2a the fundamental bound stays at 4a w/eta^2 but
        the slotted expression keeps growing."""
        eta = 0.05
        beta = 0.04  # > eta/2
        slotted = sb.slotted_channel_utilization_bound(OMEGA, eta, beta)
        fundamental = symmetric_bound(OMEGA, eta)
        assert slotted > fundamental

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            sb.slotted_channel_utilization_bound(OMEGA, 0.01, beta=0.02)


class TestTable1:
    def test_diffcodes_equals_slotted_optimum(self):
        eta, beta = 0.05, 0.01
        assert sb.table1_diffcodes(OMEGA, eta, beta) == pytest.approx(
            sb.slotted_channel_utilization_bound(OMEGA, eta, beta)
        )

    def test_protocol_constant_factors(self):
        """Table 1's ordering: Diffcodes (1x) < Searchlight-S (2x) <
        Disco (8x); U-Connect sits between Searchlight and Disco for
        typical parameters."""
        eta, beta = 0.05, 0.005
        base = sb.table1_diffcodes(OMEGA, eta, beta)
        assert sb.table1_searchlight_striped(OMEGA, eta, beta) == pytest.approx(
            2 * base
        )
        assert sb.table1_disco(OMEGA, eta, beta) == pytest.approx(8 * base)
        uconnect = sb.table1_uconnect(OMEGA, eta, beta)
        assert base < uconnect < 8 * base

    def test_uconnect_formula_structure(self):
        """U-Connect per Table 1 at alpha=1:
        (3w + sqrt(w^2 (8 eta - 8 beta + 9)))^2 / (8 w beta eta - 8 w beta^2).
        Spot value computed independently."""
        import math

        eta, beta, w = 0.04, 0.004, OMEGA
        expected = (3 * w + math.sqrt(w * w * (8 * eta - 8 * beta + 9))) ** 2 / (
            8 * w * beta * eta - 8 * w * beta * beta
        )
        assert sb.table1_uconnect(w, eta, beta) == pytest.approx(expected)

    def test_registry_contains_paper_rows(self):
        assert set(sb.TABLE1_PROTOCOLS) == {
            "Diffcodes",
            "Disco",
            "Searchlight-S",
            "U-Connect",
        }

    @given(eta=st.floats(0.01, 0.3), frac=st.floats(0.05, 0.45))
    def test_all_rows_above_fundamental(self, eta, frac):
        beta = eta * frac
        fundamental = constrained_bound(OMEGA, eta, beta)
        for formula in sb.TABLE1_PROTOCOLS.values():
            assert formula(OMEGA, eta, beta) >= fundamental * (1 - 1e-9)


class TestSlotLengthAnalysis:
    def test_figure_5_half_duplex_needs_long_slots(self):
        """At I = 2 omega no overlap alignment yields a reception; the
        success fraction grows towards 1 with the slot length."""
        assert sb.slot_length_analysis(2.0).overlap_success_fraction == 0.0
        assert sb.slot_length_analysis(4.0).overlap_success_fraction == 0.5
        assert sb.slot_length_analysis(100.0).overlap_success_fraction == (
            pytest.approx(0.98)
        )

    def test_latency_penalty_linear_in_slot_length(self):
        assert sb.slot_length_analysis(10.0).latency_penalty == 10.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sb.slot_length_analysis(0)


class TestOptimalityRatio:
    def test_optimal_protocol_ratio_one(self):
        eta = 0.01
        latency = symmetric_bound(OMEGA, eta)
        assert sb.optimality_ratio(latency, OMEGA, eta) == pytest.approx(1.0)

    def test_suboptimal_ratio_above_one(self):
        eta = 0.01
        latency = 3 * symmetric_bound(OMEGA, eta)
        assert sb.optimality_ratio(latency, OMEGA, eta) == pytest.approx(3.0)
