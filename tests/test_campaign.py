"""Campaign definitions, lattice expansion and resumable execution."""

import json
import threading
from types import SimpleNamespace

import pytest

from repro.api import SpecError
from repro.campaign import Campaign, CampaignRunner
from repro.store import ResultStore

BASE_SPEC = {
    "pair": {"kind": "symmetric", "eta": 0.01},
    "sampling": "uniform",
    "samples": 8,
    "horizon_multiple": 1,
}


def tiny_campaign(n_etas=3) -> Campaign:
    return Campaign(
        name="tiny",
        runs=[{
            "verb": "sweep",
            "label": "sym",
            "spec": BASE_SPEC,
            "axes": {"pair.eta": [0.01 + 0.01 * i for i in range(n_etas)]},
        }],
    )


# ----------------------------------------------------------------------
# Definition + expansion
# ----------------------------------------------------------------------


class TestCampaignDefinition:
    def test_json_and_toml_load_identically(self, tmp_path):
        payload = tiny_campaign().to_dict()
        json_path = tmp_path / "c.json"
        json_path.write_text(json.dumps(payload))
        toml_path = tmp_path / "c.toml"
        toml_path.write_text(
            'name = "tiny"\n'
            "[[runs]]\n"
            'verb = "sweep"\n'
            'label = "sym"\n'
            "[runs.spec]\n"
            'sampling = "uniform"\n'
            "samples = 8\n"
            "horizon_multiple = 1\n"
            "[runs.spec.pair]\n"
            'kind = "symmetric"\n'
            "eta = 0.01\n"
            "[runs.axes]\n"
            '"pair.eta" = [0.01, 0.02, 0.03]\n'
        )
        from_json = Campaign.from_file(json_path)
        from_toml = Campaign.from_file(toml_path)
        assert from_json.to_dict() == from_toml.to_dict() == payload

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown campaign key"):
            Campaign.from_dict({"name": "x", "runs": [], "exta": 1})
        with pytest.raises(SpecError, match="unknown campaign run key"):
            Campaign(name="x", runs=[{"verb": "sweep", "sepc": {}}])

    def test_bad_verb_and_axes_rejected(self):
        with pytest.raises(SpecError, match="verb"):
            Campaign(name="x", runs=[{"verb": "explode"}])
        with pytest.raises(SpecError, match="non-empty list"):
            Campaign(name="x", runs=[{"verb": "sweep",
                                      "axes": {"pair.eta": []}}])

    def test_malformed_file_is_spec_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{ nope")
        with pytest.raises(SpecError, match="malformed campaign"):
            Campaign.from_file(bad)

    def test_expansion_row_major_last_axis_fastest(self):
        campaign = Campaign(
            name="grid",
            runs=[{
                "verb": "sweep",
                "spec": BASE_SPEC,
                "axes": {"samples": [8, 16], "pair.eta": [0.01, 0.02]},
            }],
        )
        entries = campaign.expand()
        assert [e.index for e in entries] == [0, 1, 2, 3]
        assert [(e.spec.samples, e.spec.pair["eta"]) for e in entries] == [
            (8, 0.01), (8, 0.02), (16, 0.01), (16, 0.02),
        ]
        assert entries[0].label == "sweep[samples=8,pair.eta=0.01]"

    def test_dotted_paths_create_intermediates(self):
        campaign = Campaign(
            name="deep",
            runs=[{
                "verb": "simulate",
                "spec": {"scenario": {"factory": "symmetric_pair"}},
                "axes": {"scenario.params.eta": [0.02]},
            }],
        )
        entry = campaign.expand()[0]
        assert entry.spec.scenario["params"]["eta"] == 0.02

    def test_invalid_lattice_point_fails_before_execution(self):
        campaign = Campaign(
            name="broken",
            runs=[{"verb": "sweep", "spec": BASE_SPEC,
                   "axes": {"samples": [8, 0]}}],
        )
        with pytest.raises(SpecError, match=r"runs\[0\]"):
            campaign.expand()


# ----------------------------------------------------------------------
# Execution, resume, interrupt
# ----------------------------------------------------------------------


class TestCampaignRunner:
    def test_cold_then_warm(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )
        manifest = runner.run()
        assert manifest["complete"]
        assert manifest["executed"] == 3 and manifest["hits"] == 0
        assert all(r["status"] == "done" for r in manifest["entries"])
        assert all(r["seconds"] >= 0 for r in manifest["entries"])

        # Manifest on disk matches the returned one.
        on_disk = json.loads((tmp_path / "m.json").read_text())
        assert on_disk == manifest

        again = runner.run()
        assert again["complete"]
        assert again["executed"] == 0 and again["hits"] == 3

    def test_max_runs_caps_executions_then_resumes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )
        partial = runner.run(max_runs=1)
        assert not partial["complete"]
        assert partial["executed"] == 1
        statuses = [r["status"] for r in partial["entries"]]
        assert statuses == ["done", "skipped", "skipped"]

        # Resume: the stored entry hits, ONLY the missing ones execute.
        resumed = runner.run()
        assert resumed["complete"]
        assert resumed["hits"] == 1 and resumed["executed"] == 2

    def test_interrupted_campaign_resumes_missing_only(self, tmp_path):
        # Simulate a mid-lattice crash: a session whose second sweep
        # dies.  The manifest checkpoint and the store survive, so the
        # rerun executes exactly the entries the crash lost.
        store = ResultStore(tmp_path / "store")
        campaign = tiny_campaign()
        runner = CampaignRunner(
            campaign, store, manifest_path=tmp_path / "m.json"
        )

        from repro.api import Session

        real = Session(store=store)
        calls = {"n": 0}

        def dying_sweep(spec):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise KeyboardInterrupt
            return real.sweep(spec)

        try:
            with pytest.raises(KeyboardInterrupt):
                runner.run(session=SimpleNamespace(sweep=dying_sweep))
        finally:
            real.close()

        checkpoint = json.loads((tmp_path / "m.json").read_text())
        assert not checkpoint["complete"]
        assert [r["status"] for r in checkpoint["entries"]] == [
            "done", "pending", "pending",
        ]

        resumed = runner.run()
        assert resumed["complete"]
        assert resumed["hits"] == 1 and resumed["executed"] == 2

    def test_per_entry_failure_recorded_and_continues(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )

        from repro.api import Session

        real = Session(store=store)
        calls = {"n": 0}

        def flaky_sweep(spec):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("worker lost")
            return real.sweep(spec)

        try:
            manifest = runner.run(session=SimpleNamespace(sweep=flaky_sweep))
        finally:
            real.close()
        assert manifest["failed"] == 1 and not manifest["complete"]
        failed = manifest["entries"][1]
        assert failed["status"] == "failed"
        assert "RuntimeError: worker lost" in failed["error"]
        # The other two completed despite the failure in the middle.
        assert manifest["executed"] == 2

    def test_status_reports_store_membership(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )
        before = runner.status()
        assert before["total"] == 3 and before["stored"] == 0
        assert len(before["missing"]) == 3 and not before["complete"]

        runner.run(max_runs=2)
        middle = runner.status()
        assert middle["stored"] == 2 and len(middle["missing"]) == 1

        runner.run()
        after = runner.status()
        assert after["complete"] and after["missing"] == []

    def test_manifest_merges_prior_records_on_resume(self, tmp_path):
        # Satellite: the skeleton used to be rewritten from scratch on
        # every invocation, discarding prior statuses, seconds and
        # error strings.  It now merges with the existing manifest.
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )
        partial = runner.run(max_runs=1)
        done = partial["entries"][0]
        assert done["status"] == "done" and done["source"] == "executed"

        entries = runner.campaign.expand()
        skeleton = runner._manifest_skeleton(
            entries, runner._fingerprints(entries)
        )
        carried = skeleton["entries"][0]
        assert carried["status"] == "done"
        assert carried["source"] == "executed"
        assert carried["seconds"] == done["seconds"]

    def test_capped_rerun_preserves_failed_error(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )

        from repro.api import Session

        real = Session(store=store)

        def flaky_sweep(spec):
            if spec.pair["eta"] == 0.02:  # the middle lattice point
                raise RuntimeError("worker lost")
            return real.sweep(spec)

        try:
            first = runner.run(session=SimpleNamespace(sweep=flaky_sweep))
        finally:
            real.close()
        assert first["entries"][1]["status"] == "failed"

        # A rerun that cannot execute anything (max_runs=0) must not
        # flatten the failed record into a bare "skipped": the error
        # string is the evidence a later reader needs.
        capped = runner.run(max_runs=0)
        record = capped["entries"][1]
        assert record["status"] == "failed"
        assert "RuntimeError: worker lost" in record["error"]
        # The two stored entries still hit and stay done.
        assert [r["status"] for r in capped["entries"]] == [
            "done", "failed", "done",
        ]

    def test_fingerprints_shared_across_campaign_loads(self, tmp_path):
        # A campaign reloaded from disk addresses the same store slots.
        store = ResultStore(tmp_path / "store")
        path = tmp_path / "c.json"
        path.write_text(json.dumps(tiny_campaign().to_dict()))
        CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m1.json"
        ).run()
        reloaded = CampaignRunner(
            Campaign.from_file(path), store, manifest_path=tmp_path / "m2.json"
        ).run()
        assert reloaded["hits"] == 3 and reloaded["executed"] == 0


# ----------------------------------------------------------------------
# Entry cost hints
# ----------------------------------------------------------------------


class TestEntryCostHints:
    def test_cost_hints_positive_and_schedulable(self):
        from repro.parallel.schedule import plan_longest_first

        entries = tiny_campaign().expand()
        costs = [entry.cost_hint() for entry in entries]
        assert all(cost >= 1.0 for cost in costs)
        order = plan_longest_first(entries)
        assert sorted(order) == list(range(len(entries)))

    def test_worst_case_prices_above_its_sweep(self):
        sweep, worst = Campaign(
            name="pair",
            runs=[
                {"verb": "sweep", "spec": BASE_SPEC},
                {"verb": "worst_case", "spec": BASE_SPEC},
            ],
        ).expand()
        assert worst.cost_hint() == pytest.approx(2.0 * sweep.cost_hint())

    def test_more_samples_cost_more(self):
        small, big = tiny_campaign(1).expand()[0], Campaign(
            name="big",
            runs=[{"verb": "sweep", "spec": dict(BASE_SPEC, samples=64)}],
        ).expand()[0]
        assert big.cost_hint() > small.cost_hint()

    def test_unestimable_spec_ranks_neutrally(self):
        from repro.api import RunSpec
        from repro.campaign.campaign import CampaignEntry

        entry = CampaignEntry(
            index=0, run_index=0, verb="sweep", label="x", spec=RunSpec()
        )
        assert entry.cost_hint() == 1.0


# ----------------------------------------------------------------------
# Parallel entry execution
# ----------------------------------------------------------------------


class TestParallelRunner:
    def test_parallel_matches_serial(self, tmp_path):
        campaign = tiny_campaign()
        serial_store = ResultStore(tmp_path / "serial")
        serial = CampaignRunner(
            campaign, serial_store, manifest_path=tmp_path / "ms.json"
        ).run()
        parallel_store = ResultStore(tmp_path / "parallel")
        parallel = CampaignRunner(
            campaign, parallel_store, manifest_path=tmp_path / "mp.json"
        ).run(entry_jobs=2)

        assert parallel["complete"] and parallel["executed"] == 3
        assert (
            serial_store.known_fingerprints()
            == parallel_store.known_fingerprints()
        )
        for fp in serial_store.known_fingerprints():
            assert serial_store.get(fp).payload == parallel_store.get(fp).payload
        assert [
            (r["status"], r["source"]) for r in serial["entries"]
        ] == [(r["status"], r["source"]) for r in parallel["entries"]]

    def test_entry_jobs_one_is_serial(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )
        manifest = runner.run(entry_jobs=1)
        assert manifest["complete"] and manifest["executed"] == 3

    def test_parallel_max_runs_caps_in_lattice_order(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )
        partial = runner.run(max_runs=1, entry_jobs=2)
        assert not partial["complete"]
        assert partial["executed"] == 1
        # Same cap choice as the serial loop: first miss in lattice
        # order executes, later misses are capped.
        assert [r["status"] for r in partial["entries"]] == [
            "done", "skipped", "skipped",
        ]
        resumed = runner.run(entry_jobs=2)
        assert resumed["complete"]
        assert resumed["hits"] == 1 and resumed["executed"] == 2

    def test_parallel_per_entry_failure_isolated(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )

        from repro.api import Session

        real = Session(store=store)
        lock = threading.Lock()

        def flaky_sweep(spec):
            if spec.pair["eta"] == 0.02:
                raise RuntimeError("worker lost")
            with lock:  # the shared real session is not thread-safe
                return real.sweep(spec)

        try:
            manifest = runner.run(
                session=SimpleNamespace(sweep=flaky_sweep), entry_jobs=2
            )
        finally:
            real.close()
        assert manifest["failed"] == 1 and manifest["executed"] == 2
        failed = manifest["entries"][1]
        assert failed["status"] == "failed"
        assert "RuntimeError: worker lost" in failed["error"]

    def test_parallel_interrupt_checkpoints_then_resumes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )

        from repro.api import Session

        real = Session(store=store)
        lock = threading.Lock()

        def dying_sweep(spec):
            if spec.pair["eta"] == 0.03:
                raise KeyboardInterrupt
            with lock:
                return real.sweep(spec)

        try:
            with pytest.raises(KeyboardInterrupt):
                runner.run(
                    session=SimpleNamespace(sweep=dying_sweep), entry_jobs=2
                )
        finally:
            real.close()

        # The checkpoint on disk is a valid manifest with every record
        # accounted for -- no record loss, no torn statuses.
        checkpoint = json.loads((tmp_path / "m.json").read_text())
        assert checkpoint["campaign"] == "tiny"
        assert len(checkpoint["entries"]) == 3
        assert all(
            r["status"] in ("pending", "done") for r in checkpoint["entries"]
        )
        assert not checkpoint["complete"]

        resumed = runner.run(entry_jobs=2)
        assert resumed["complete"]
        assert all(r["status"] == "done" for r in resumed["entries"])

    def test_parallel_uses_worker_sessions(self, tmp_path):
        # An injected object exposing .worker() contributes one sibling
        # per worker thread (the Session protocol); the doubles record
        # which entries they served and every worker gets closed.
        calls = []
        closed = []

        class FakeWorker:
            def __init__(self, parent):
                self.parent = parent

            def sweep(self, spec):
                calls.append((id(self), spec.pair["eta"]))
                return SimpleNamespace(store_meta={"hit": False})

            def close(self):
                closed.append(id(self))

        class FakeSession:
            def __init__(self):
                self.workers = []

            def worker(self):
                worker = FakeWorker(self)
                self.workers.append(worker)
                return worker

        parent = FakeSession()
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )
        manifest = runner.run(session=parent, entry_jobs=2)
        assert manifest["executed"] == 3
        assert sorted(eta for _, eta in calls) == [0.01, 0.02, 0.03]
        assert 1 <= len(parent.workers) <= 2
        assert sorted(closed) == sorted(id(w) for w in parent.workers)
