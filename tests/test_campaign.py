"""Campaign definitions, lattice expansion and resumable execution."""

import json
from types import SimpleNamespace

import pytest

from repro.api import SpecError
from repro.campaign import Campaign, CampaignRunner
from repro.store import ResultStore

BASE_SPEC = {
    "pair": {"kind": "symmetric", "eta": 0.01},
    "sampling": "uniform",
    "samples": 8,
    "horizon_multiple": 1,
}


def tiny_campaign(n_etas=3) -> Campaign:
    return Campaign(
        name="tiny",
        runs=[{
            "verb": "sweep",
            "label": "sym",
            "spec": BASE_SPEC,
            "axes": {"pair.eta": [0.01 + 0.01 * i for i in range(n_etas)]},
        }],
    )


# ----------------------------------------------------------------------
# Definition + expansion
# ----------------------------------------------------------------------


class TestCampaignDefinition:
    def test_json_and_toml_load_identically(self, tmp_path):
        payload = tiny_campaign().to_dict()
        json_path = tmp_path / "c.json"
        json_path.write_text(json.dumps(payload))
        toml_path = tmp_path / "c.toml"
        toml_path.write_text(
            'name = "tiny"\n'
            "[[runs]]\n"
            'verb = "sweep"\n'
            'label = "sym"\n'
            "[runs.spec]\n"
            'sampling = "uniform"\n'
            "samples = 8\n"
            "horizon_multiple = 1\n"
            "[runs.spec.pair]\n"
            'kind = "symmetric"\n'
            "eta = 0.01\n"
            "[runs.axes]\n"
            '"pair.eta" = [0.01, 0.02, 0.03]\n'
        )
        from_json = Campaign.from_file(json_path)
        from_toml = Campaign.from_file(toml_path)
        assert from_json.to_dict() == from_toml.to_dict() == payload

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown campaign key"):
            Campaign.from_dict({"name": "x", "runs": [], "exta": 1})
        with pytest.raises(SpecError, match="unknown campaign run key"):
            Campaign(name="x", runs=[{"verb": "sweep", "sepc": {}}])

    def test_bad_verb_and_axes_rejected(self):
        with pytest.raises(SpecError, match="verb"):
            Campaign(name="x", runs=[{"verb": "explode"}])
        with pytest.raises(SpecError, match="non-empty list"):
            Campaign(name="x", runs=[{"verb": "sweep",
                                      "axes": {"pair.eta": []}}])

    def test_malformed_file_is_spec_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{ nope")
        with pytest.raises(SpecError, match="malformed campaign"):
            Campaign.from_file(bad)

    def test_expansion_row_major_last_axis_fastest(self):
        campaign = Campaign(
            name="grid",
            runs=[{
                "verb": "sweep",
                "spec": BASE_SPEC,
                "axes": {"samples": [8, 16], "pair.eta": [0.01, 0.02]},
            }],
        )
        entries = campaign.expand()
        assert [e.index for e in entries] == [0, 1, 2, 3]
        assert [(e.spec.samples, e.spec.pair["eta"]) for e in entries] == [
            (8, 0.01), (8, 0.02), (16, 0.01), (16, 0.02),
        ]
        assert entries[0].label == "sweep[samples=8,pair.eta=0.01]"

    def test_dotted_paths_create_intermediates(self):
        campaign = Campaign(
            name="deep",
            runs=[{
                "verb": "simulate",
                "spec": {"scenario": {"factory": "symmetric_pair"}},
                "axes": {"scenario.params.eta": [0.02]},
            }],
        )
        entry = campaign.expand()[0]
        assert entry.spec.scenario["params"]["eta"] == 0.02

    def test_invalid_lattice_point_fails_before_execution(self):
        campaign = Campaign(
            name="broken",
            runs=[{"verb": "sweep", "spec": BASE_SPEC,
                   "axes": {"samples": [8, 0]}}],
        )
        with pytest.raises(SpecError, match=r"runs\[0\]"):
            campaign.expand()


# ----------------------------------------------------------------------
# Execution, resume, interrupt
# ----------------------------------------------------------------------


class TestCampaignRunner:
    def test_cold_then_warm(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )
        manifest = runner.run()
        assert manifest["complete"]
        assert manifest["executed"] == 3 and manifest["hits"] == 0
        assert all(r["status"] == "done" for r in manifest["entries"])
        assert all(r["seconds"] >= 0 for r in manifest["entries"])

        # Manifest on disk matches the returned one.
        on_disk = json.loads((tmp_path / "m.json").read_text())
        assert on_disk == manifest

        again = runner.run()
        assert again["complete"]
        assert again["executed"] == 0 and again["hits"] == 3

    def test_max_runs_caps_executions_then_resumes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )
        partial = runner.run(max_runs=1)
        assert not partial["complete"]
        assert partial["executed"] == 1
        statuses = [r["status"] for r in partial["entries"]]
        assert statuses == ["done", "skipped", "skipped"]

        # Resume: the stored entry hits, ONLY the missing ones execute.
        resumed = runner.run()
        assert resumed["complete"]
        assert resumed["hits"] == 1 and resumed["executed"] == 2

    def test_interrupted_campaign_resumes_missing_only(self, tmp_path):
        # Simulate a mid-lattice crash: a session whose second sweep
        # dies.  The manifest checkpoint and the store survive, so the
        # rerun executes exactly the entries the crash lost.
        store = ResultStore(tmp_path / "store")
        campaign = tiny_campaign()
        runner = CampaignRunner(
            campaign, store, manifest_path=tmp_path / "m.json"
        )

        from repro.api import Session

        real = Session(store=store)
        calls = {"n": 0}

        def dying_sweep(spec):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise KeyboardInterrupt
            return real.sweep(spec)

        try:
            with pytest.raises(KeyboardInterrupt):
                runner.run(session=SimpleNamespace(sweep=dying_sweep))
        finally:
            real.close()

        checkpoint = json.loads((tmp_path / "m.json").read_text())
        assert not checkpoint["complete"]
        assert [r["status"] for r in checkpoint["entries"]] == [
            "done", "pending", "pending",
        ]

        resumed = runner.run()
        assert resumed["complete"]
        assert resumed["hits"] == 1 and resumed["executed"] == 2

    def test_per_entry_failure_recorded_and_continues(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )

        from repro.api import Session

        real = Session(store=store)
        calls = {"n": 0}

        def flaky_sweep(spec):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("worker lost")
            return real.sweep(spec)

        try:
            manifest = runner.run(session=SimpleNamespace(sweep=flaky_sweep))
        finally:
            real.close()
        assert manifest["failed"] == 1 and not manifest["complete"]
        failed = manifest["entries"][1]
        assert failed["status"] == "failed"
        assert "RuntimeError: worker lost" in failed["error"]
        # The other two completed despite the failure in the middle.
        assert manifest["executed"] == 2

    def test_status_reports_store_membership(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m.json"
        )
        before = runner.status()
        assert before["total"] == 3 and before["stored"] == 0
        assert len(before["missing"]) == 3 and not before["complete"]

        runner.run(max_runs=2)
        middle = runner.status()
        assert middle["stored"] == 2 and len(middle["missing"]) == 1

        runner.run()
        after = runner.status()
        assert after["complete"] and after["missing"] == []

    def test_fingerprints_shared_across_campaign_loads(self, tmp_path):
        # A campaign reloaded from disk addresses the same store slots.
        store = ResultStore(tmp_path / "store")
        path = tmp_path / "c.json"
        path.write_text(json.dumps(tiny_campaign().to_dict()))
        CampaignRunner(
            tiny_campaign(), store, manifest_path=tmp_path / "m1.json"
        ).run()
        reloaded = CampaignRunner(
            Campaign.from_file(path), store, manifest_path=tmp_path / "m2.json"
        ).run()
        assert reloaded["hits"] == 3 and reloaded["executed"] == 0
