"""Unit tests of the pluggable sweep-backend layer.

Registry semantics (names, auto-detection, unavailability errors), the
NumPy and Numba import-guard shims (including simulated dependency-less
environments, so every fallback path is exercised on machines that do
have the extras), kernel fallback behaviour on non-vectorizable inputs,
the native compiled kernel's exact arithmetic (its kernels run un-jitted
as plain Python without Numba, so bit-identity is pinned here in every
environment), the incremental strided-sweep engine and its gates, the
``ListeningCache.pattern_arrays()`` accessor, the cost-model calibration
helpers, and CLI threading of ``--backend``.
"""

import math
import types

import pytest

from repro.backends import (
    available_backends,
    BackendUnavailable,
    default_backend_name,
    get_backend,
    have_numba,
    have_numpy,
    NativeBackend,
    numba_version,
    numpy_version,
    NumpyBackend,
    PooledBackend,
    PythonBackend,
    resolve_backend,
    SweepBackend,
    SweepParams,
)
from repro.backends import _np, _numba
from repro.core.optimal import synthesize_symmetric
from repro.core.sequences import BeaconSchedule, NDProtocol, ReceptionSchedule
from repro.parallel import ParallelSweep
from repro.parallel.schedule import (
    cost_components,
    cost_weights,
    default_simulation_cost,
    fit_cost_weights,
    use_cost_weights,
)
from repro.simulation import evaluate_offsets, ReceptionModel, sweep_offsets
from repro.workloads import dense_network, Scenario, symmetric_pair


def _small_pair():
    protocol, design = synthesize_symmetric(32, 0.05)
    offsets = list(range(0, 40_000, 1_111))
    return protocol, offsets, design.worst_case_latency * 3


class TestRegistry:
    def test_registered_names(self):
        names = available_backends()
        assert "python" in names
        assert "pooled" in names
        assert ("numpy" in names) == have_numpy()
        assert ("native" in names) == (have_numba() and have_numpy())

    def test_get_backend_returns_shared_instances(self):
        assert get_backend("python") is get_backend("python")
        assert isinstance(get_backend("python"), PythonBackend)

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(KeyError, match="python"):
            get_backend("cuda")

    def test_resolve_auto_and_none_follow_detection(self):
        expected = default_backend_name()
        assert resolve_backend("auto").name == expected
        assert resolve_backend(None).name == expected

    def test_resolve_passes_instances_through(self):
        backend = PythonBackend()
        assert resolve_backend(backend) is backend

    def test_resolve_pooled_honours_shape(self):
        backend = resolve_backend("pooled", jobs=2)
        assert isinstance(backend, PooledBackend)
        assert backend.jobs == 2
        assert resolve_backend("pooled", jobs=2) is backend

    def test_pooled_inner_kernel_tracks_numpy_availability(self, monkeypatch):
        """Resolving 'pooled' must re-detect the inner kernel per call,
        not pin the first call's auto-detection forever."""
        before = get_backend("pooled").inner
        assert before == default_backend_name()
        monkeypatch.setattr(_np, "np", None)
        assert get_backend("pooled").inner == "python"


class TestNumpyGuard:
    def test_auto_detection_prefers_fastest_available(self):
        if have_numba() and have_numpy():
            assert default_backend_name() == "native"
            assert numba_version()
        elif have_numpy():
            assert default_backend_name() == "numpy"
            assert numpy_version()
        else:
            assert default_backend_name() == "python"
            assert numpy_version() is None

    def test_simulated_numpy_absence_falls_back(self, monkeypatch):
        monkeypatch.setattr(_np, "np", None)
        assert not have_numpy()
        assert numpy_version() is None
        assert default_backend_name() == "python"
        assert "numpy" not in available_backends()
        with pytest.raises(BackendUnavailable, match="fast"):
            get_backend("numpy")
        # The whole sweep stack still works on the fallback kernel.
        protocol, offsets, horizon = _small_pair()
        serial = evaluate_offsets(protocol, protocol, offsets, horizon)
        auto = evaluate_offsets(
            protocol, protocol, offsets, horizon, backend="auto"
        )
        assert auto == serial

    def test_numpy_backend_is_bit_identical_when_present(self):
        if not have_numpy():
            pytest.skip("NumPy extra not installed")
        protocol, offsets, horizon = _small_pair()
        serial = sweep_offsets(protocol, protocol, offsets, horizon)
        assert sweep_offsets(
            protocol, protocol, offsets, horizon, backend="numpy"
        ) == serial


@pytest.mark.skipif(not have_numpy(), reason="NumPy extra not installed")
class TestNumpyKernelFallbacks:
    """Inputs the vectorized kernel must hand to the exact reference."""

    def _check(self, protocol_e, protocol_f, offsets, horizon, **kwargs):
        serial = evaluate_offsets(
            protocol_e, protocol_f, offsets, horizon, **kwargs
        )
        got = evaluate_offsets(
            protocol_e, protocol_f, offsets, horizon, backend="numpy", **kwargs
        )
        assert got == serial

    def test_float_offsets(self):
        protocol, _, horizon = _small_pair()
        self._check(protocol, protocol, [0.5, 10.25, 999.0], horizon)

    def test_huge_offsets_beyond_int64_headroom(self):
        protocol, _, horizon = _small_pair()
        self._check(protocol, protocol, [0, 1 << 61, (1 << 62) + 3], horizon)

    def test_float_horizon(self):
        protocol, offsets, horizon = _small_pair()
        self._check(protocol, protocol, offsets[:8], float(horizon))

    def test_non_integer_transmitter_schedule(self):
        adv = NDProtocol(
            beacons=BeaconSchedule.uniform(1, 100.5, 2),
            reception=ReceptionSchedule.single_window(25, 600),
        )
        scan = NDProtocol(
            beacons=BeaconSchedule.uniform(1, 150, 3),
            reception=ReceptionSchedule.single_window(40, 350),
        )
        self._check(adv, scan, list(range(0, 600, 7)), 4_000)

    def test_empty_offsets(self):
        protocol, _, horizon = _small_pair()
        assert evaluate_offsets(
            protocol, protocol, [], horizon, backend="numpy"
        ) == []

    def test_below_threshold_queries_with_turnaround(self):
        protocol, offsets, horizon = _small_pair()
        self._check(protocol, protocol, offsets, horizon, turnaround=9)

    def test_all_models(self):
        protocol, offsets, horizon = _small_pair()
        for model in ReceptionModel:
            self._check(protocol, protocol, offsets[:16], horizon, model=model)


def _fake_numba(monkeypatch):
    """Simulate an importable Numba without compiling anything.

    ``jit_or_pyfunc`` ran at import time, so the native kernels are
    already plain Python here; a stand-in module object is enough to
    flip every availability gate to the native tier.
    """
    monkeypatch.setattr(
        _numba, "numba", types.SimpleNamespace(__version__="0.0-stub")
    )


def _pyfunc_native(use_incremental=True):
    """A NativeBackend running its kernels un-jitted, constructible
    without Numba (bypasses the availability check only)."""
    backend = NativeBackend.__new__(NativeBackend)
    backend.use_incremental = use_incremental
    backend._numpy = NumpyBackend(use_incremental=use_incremental)
    return backend


class TestNumbaGuard:
    def test_simulated_numba_absence_falls_back(self, monkeypatch):
        monkeypatch.setattr(_numba, "numba", None)
        assert not have_numba()
        assert numba_version() is None
        assert "native" not in available_backends()
        assert default_backend_name() == (
            "numpy" if have_numpy() else "python"
        )
        with pytest.raises(BackendUnavailable, match="native"):
            get_backend("native")

    @pytest.mark.skipif(not have_numpy(), reason="NumPy extra not installed")
    def test_simulated_numba_presence_resolves_native(self, monkeypatch):
        _fake_numba(monkeypatch)
        assert have_numba()
        assert numba_version() == "0.0-stub"
        assert "native" in available_backends()
        assert default_backend_name() == "native"
        resolved = resolve_backend("auto")
        assert isinstance(resolved, NativeBackend)
        # The whole stack runs (un-jitted) and stays bit-identical.
        protocol, offsets, horizon = _small_pair()
        serial = evaluate_offsets(protocol, protocol, offsets, horizon)
        assert evaluate_offsets(
            protocol, protocol, offsets, horizon, backend="auto"
        ) == serial

    @pytest.mark.skipif(not have_numpy(), reason="NumPy extra not installed")
    def test_pooled_inner_kernel_tracks_numba_availability(self, monkeypatch):
        _fake_numba(monkeypatch)
        assert get_backend("pooled").inner == "native"

    def test_numpy_less_environment_disables_native_too(self, monkeypatch):
        """Simulated NumPy absence must disable the native tier (its
        array plumbing is NumPy) even when Numba is importable."""
        _fake_numba(monkeypatch)
        monkeypatch.setattr(_np, "np", None)
        assert "native" not in available_backends()
        assert default_backend_name() == "python"
        assert not NativeBackend.available()


@pytest.mark.skipif(not have_numpy(), reason="NumPy extra not installed")
class TestNativeKernel:
    """Exact-arithmetic pinning of the native kernel, runnable without
    Numba: ``jit_or_pyfunc`` leaves the kernels as plain Python, so the
    same code the JIT compiles is checked bit-for-bit here (the CI
    numba lane runs the full zoo with the compiled version)."""

    def _check(self, protocol_e, protocol_f, offsets, horizon, **kwargs):
        serial = evaluate_offsets(
            protocol_e, protocol_f, offsets, horizon, **kwargs
        )
        for use_incremental in (True, False):
            backend = _pyfunc_native(use_incremental)
            params = SweepParams(
                protocol_e, protocol_f, horizon,
                kwargs.get("model", ReceptionModel.POINT),
                kwargs.get("turnaround", 0),
            )
            got = backend.evaluate_offsets_batch(params, offsets)
            assert got == serial, use_incremental

    def test_bit_identical_all_models(self):
        protocol, offsets, horizon = _small_pair()
        for model in ReceptionModel:
            self._check(protocol, protocol, offsets, horizon, model=model)

    def test_boot_threshold_split_with_turnaround(self):
        """Below-threshold candidates run the exact scalar scan; the
        compiled loop starts at each lane's boot-safe instance."""
        protocol, offsets, horizon = _small_pair()
        self._check(protocol, protocol, offsets, horizon, turnaround=9)

    def test_negative_and_scattered_offsets(self):
        protocol, _, horizon = _small_pair()
        offsets = [-7919, -13, 0, 4, 991, 65537, 3, 3]
        self._check(protocol, protocol, offsets, horizon)

    def test_non_vectorizable_delegates_to_reference(self):
        adv = NDProtocol(
            beacons=BeaconSchedule.uniform(1, 100.5, 2),
            reception=ReceptionSchedule.single_window(25, 600),
        )
        scan = NDProtocol(
            beacons=BeaconSchedule.uniform(1, 150, 3),
            reception=ReceptionSchedule.single_window(40, 350),
        )
        self._check(adv, scan, list(range(0, 600, 7)), 4_000)

    def test_oversized_duration_falls_back_to_numpy_batch(self):
        """A beacon longer than the receiver's hyperperiod fails the
        compiled kernel's precondition; the direction must fall back
        (to the numpy batch kernel) and stay exact."""
        adv = NDProtocol(
            beacons=BeaconSchedule.uniform(1, 5_000, 700),
            reception=ReceptionSchedule.single_window(25, 600),
        )
        scan = NDProtocol(
            beacons=BeaconSchedule.uniform(1, 150, 3),
            reception=ReceptionSchedule.single_window(40, 350),
        )
        assert adv.beacons.beacons[0].duration > scan.reception.period
        self._check(adv, scan, list(range(0, 600, 11)), 20_000)

    def test_enumeration_bit_identical_with_guard_parity(self):
        from repro.simulation import critical_offsets

        protocol, _, _ = _small_pair()
        reference = critical_offsets(protocol, protocol, omega=32)
        assert reference
        backend = _pyfunc_native()
        params = SweepParams(protocol, protocol, 0, ReceptionModel.POINT)
        assert backend.enumerate_critical_offsets(
            params, omega=32
        ) == reference
        undersized = max(1, len(reference) // 4)
        with pytest.raises(ValueError) as native_err:
            backend.enumerate_critical_offsets(
                params, omega=32, max_count=undersized
            )
        with pytest.raises(ValueError) as ref_err:
            critical_offsets(
                protocol, protocol, omega=32, max_count=undersized
            )
        assert str(native_err.value) == str(ref_err.value)

    def test_enumeration_delegates_beyond_bitmap_regime(self, monkeypatch):
        from repro.backends import native_kernel
        from repro.simulation import critical_offsets

        protocol, _, _ = _small_pair()
        reference = critical_offsets(protocol, protocol, omega=32)
        monkeypatch.setattr(native_kernel, "_BITMAP_MAX_HYPER", 0)
        assert _pyfunc_native().enumerate_critical_offsets(
            SweepParams(protocol, protocol, 0, ReceptionModel.POINT),
            omega=32,
        ) == reference


@pytest.mark.skipif(not have_numpy(), reason="NumPy extra not installed")
class TestIncrementalEngine:
    """The incremental strided-sweep formulation and its gates."""

    def test_arithmetic_stride_detection(self):
        import numpy as np

        from repro.backends.incremental import arithmetic_stride, MIN_LANES

        vec = lambda xs: np.asarray(xs, dtype=np.int64)
        ap = [5 + 3 * i for i in range(MIN_LANES)]
        assert arithmetic_stride(vec(ap)) == 3
        negative = [100 - 7 * i for i in range(MIN_LANES)]
        assert arithmetic_stride(vec(negative)) == -7
        assert arithmetic_stride(vec(ap[:-1])) is None  # too short
        assert arithmetic_stride(vec([2] * MIN_LANES)) is None  # zero
        broken = list(ap)
        broken[-1] += 1
        assert arithmetic_stride(vec(broken)) is None  # not an AP

    def test_escape_hatch_and_bit_identity(self):
        """use_incremental=False forces the plain batch kernel; both
        formulations are bit-identical to the reference on strided
        batches under every model."""
        protocol, _, horizon = _small_pair()
        offsets = list(range(-4_000, 40_000, 1_111))
        for model in ReceptionModel:
            serial = evaluate_offsets(
                protocol, protocol, offsets, horizon, model=model
            )
            params = SweepParams(protocol, protocol, horizon, model)
            for use_incremental in (True, False):
                backend = NumpyBackend(use_incremental=use_incremental)
                assert backend.evaluate_offsets_batch(
                    params, offsets
                ) == serial, (model, use_incremental)

    def test_non_progression_batches_take_the_batch_kernel(self):
        """Scattered offsets miss the AP gate but stay exact."""
        protocol, _, horizon = _small_pair()
        offsets = [0, 17, 4, 9_001, 23, 1 << 40, 55, 55, -3]
        serial = evaluate_offsets(protocol, protocol, offsets, horizon)
        params = SweepParams(
            protocol, protocol, horizon, ReceptionModel.POINT
        )
        assert NumpyBackend().evaluate_offsets_batch(
            params, offsets
        ) == serial

    def test_engine_declines_oversized_durations(self):
        """Durations beyond the receiver hyperperiod fail the engine's
        precondition (returns None); the kernel output stays exact."""
        import numpy as np

        from repro.backends.incremental import first_discovery_incremental
        from repro.parallel import get_listening_cache

        adv = NDProtocol(
            beacons=BeaconSchedule.uniform(1, 5_000, 700),
            reception=None,
        )
        scan = NDProtocol(
            beacons=None,
            reception=ReceptionSchedule.single_window(25, 600),
        )
        cache = get_listening_cache(scan, 0)
        offsets = np.arange(0, 16 * 37, 37, dtype=np.int64)
        assert first_discovery_incremental(
            adv, cache, np.zeros(16, dtype=np.int64), offsets,
            20_000, ReceptionModel.POINT,
        ) is None

    def test_turnaround_and_boot_threshold(self):
        protocol, _, horizon = _small_pair()
        offsets = list(range(0, 9_000, 13))
        serial = evaluate_offsets(
            protocol, protocol, offsets, horizon, turnaround=7
        )
        params = SweepParams(
            protocol, protocol, horizon, ReceptionModel.POINT, 7
        )
        assert NumpyBackend(use_incremental=True).evaluate_offsets_batch(
            params, offsets
        ) == serial


@pytest.mark.skipif(not have_numpy(), reason="NumPy extra not installed")
class TestPatternArraysAccessor:
    """ListeningCache.pattern_arrays(): the one sanctioned path to the
    int64 pattern arrays (PR 8 satellite -- previously kernels poked a
    private attribute onto foreign cache objects)."""

    def test_matches_pattern_and_is_memoized(self):
        import numpy as np

        from repro.parallel import get_listening_cache

        protocol, _, _ = _small_pair()
        cache = get_listening_cache(protocol, 0)
        assert cache.enabled
        starts, ends = cache.pattern_arrays()
        assert starts.dtype == np.int64 and ends.dtype == np.int64
        assert starts.tolist() == list(cache._starts)
        assert ends.tolist() == list(cache._ends)
        again = cache.pattern_arrays()
        assert again[0] is starts and again[1] is ends  # built once

    def test_numpy_less_environment_raises_cleanly(self, monkeypatch):
        from repro.parallel.cache import ListeningCache

        protocol, _, _ = _small_pair()
        cache = ListeningCache(protocol)
        assert cache.enabled
        monkeypatch.setattr(_np, "np", None)
        with pytest.raises(BackendUnavailable, match="pattern_arrays"):
            cache.pattern_arrays()


class TestCustomBackendInstances:
    def test_unregistered_instance_runs_in_process(self):
        calls = []

        class Recording(SweepBackend):
            name = "recording"

            def evaluate_offsets_batch(self, params, offsets):
                calls.append(len(list(offsets)))
                return PythonBackend().evaluate_offsets_batch(params, offsets)

        protocol, offsets, horizon = _small_pair()
        serial = evaluate_offsets(protocol, protocol, offsets, horizon)
        executor = ParallelSweep(jobs=2, backend=Recording())
        assert executor.evaluate_offsets(
            protocol, protocol, offsets, horizon
        ) == serial
        assert calls == [len(offsets)]


class TestEnumerateCriticalOffsets:
    """Unit tests of the second kernel-dispatched operation (PR 5)."""

    def test_base_default_is_the_reference(self):
        """A custom kernel that never opts in still enumerates exactly:
        the abstract base delegates to the python reference."""

        class Minimal(SweepBackend):
            name = "minimal"

            def evaluate_offsets_batch(self, params, offsets):
                return []

        from repro.simulation import critical_offsets

        protocol, _, _ = _small_pair()
        params = SweepParams(protocol, protocol, 0, ReceptionModel.POINT)
        assert Minimal().enumerate_critical_offsets(
            params, omega=32
        ) == critical_offsets(protocol, protocol, omega=32)

    def test_backend_kwarg_resolves_names(self):
        from repro.simulation import critical_offsets

        protocol, _, _ = _small_pair()
        reference = critical_offsets(protocol, protocol, omega=32)
        assert reference  # non-degenerate workload
        for backend in ("python", "auto", get_backend("python")):
            assert critical_offsets(
                protocol, protocol, omega=32, backend=backend
            ) == reference

    def test_pooled_delegates_in_process_without_booting(self):
        """Enumeration through a pooled backend runs the inner kernel
        in the parent -- no worker processes exist afterwards."""
        from repro.simulation import critical_offsets

        protocol, _, _ = _small_pair()
        backend = PooledBackend(inner="python", jobs=2)
        try:
            params = SweepParams(protocol, protocol, 0, ReceptionModel.POINT)
            assert backend.enumerate_critical_offsets(
                params, omega=32
            ) == critical_offsets(protocol, protocol, omega=32)
            assert not backend.started
        finally:
            backend.close()

    @pytest.mark.skipif(not have_numpy(), reason="NumPy extra not installed")
    def test_numpy_bit_identical_including_sort_regime(self, monkeypatch):
        """Both dedup regimes of the vectorized kernel (bitmap scatter
        and sort-based) return the reference's exact list."""
        from repro.backends import numpy_kernel
        from repro.simulation import critical_offsets

        protocol, _, _ = _small_pair()
        reference = critical_offsets(protocol, protocol, omega=32)
        assert critical_offsets(
            protocol, protocol, omega=32, backend="numpy"
        ) == reference
        # Force the sort path by shrinking the bitmap threshold.
        monkeypatch.setattr(numpy_kernel, "_BITMAP_MAX_HYPER", 0)
        assert critical_offsets(
            protocol, protocol, omega=32, backend="numpy"
        ) == reference

    @pytest.mark.skipif(not have_numpy(), reason="NumPy extra not installed")
    def test_numpy_delegates_beyond_int_headroom(self, monkeypatch):
        from repro.backends import numpy_kernel
        from repro.simulation import critical_offsets

        protocol, _, _ = _small_pair()
        monkeypatch.setattr(numpy_kernel, "_INT_BOUND", 1)
        assert critical_offsets(
            protocol, protocol, omega=32, backend="numpy"
        ) == critical_offsets(protocol, protocol, omega=32)

    def test_verified_worst_case_threads_enumeration_backend(self):
        """The worst-case pipeline is bit-identical whichever kernel
        enumerates (and sweeps): python vs auto-detected."""
        from repro.api import RunSpec, RuntimeProfile, Session

        spec = RunSpec(
            pair={"kind": "symmetric", "eta": 0.05}, omega=32,
            des_spot_checks=4,
        )
        with Session(RuntimeProfile(backend="python", jobs=1)) as session:
            reference = session.worst_case(spec)
        with Session(RuntimeProfile(backend="auto", jobs=1)) as session:
            detected = session.worst_case(spec)
        assert detected.raw == reference.raw


class TestCostModelCalibration:
    def teardown_method(self):
        use_cost_weights(None)

    def test_components_sum_to_default_cost(self):
        scenario = dense_network(n_devices=4, eta=0.02)
        beacon, window = cost_components(scenario.protocols, scenario.horizon)
        assert beacon > 0 and window > 0
        assert math.isclose(
            default_simulation_cost(scenario.protocols, scenario.horizon),
            beacon + window,
        )

    def test_fit_recovers_exact_synthetic_weights(self):
        rows = [
            {"beacon_component": b, "window_component": w,
             "seconds": 3e-6 * b + 7e-6 * w}
            for b, w in [(1e5, 2e4), (4e5, 1e5), (2e5, 9e5), (8e5, 3e5)]
        ]
        w_beacon, w_window = fit_cost_weights({"per_scenario": rows})
        assert math.isclose(w_beacon, 3e-6, rel_tol=1e-6)
        assert math.isclose(w_window, 7e-6, rel_tol=1e-6)

    def test_fit_collinear_falls_back_to_shared_scale(self):
        rows = [
            {"beacon_component": b, "window_component": 2 * b,
             "seconds": 5e-6 * 3 * b}
            for b in (1e5, 2e5, 3e5)
        ]
        w_beacon, w_window = fit_cost_weights({"per_scenario": rows})
        assert w_beacon == w_window > 0

    def test_fit_clamps_negative_solutions(self):
        rows = [
            {"beacon_component": 1e5, "window_component": 1e3, "seconds": 1.0},
            {"beacon_component": 1e3, "window_component": 1e5, "seconds": -1.0},
        ]
        w_beacon, w_window = fit_cost_weights({"per_scenario": rows})
        assert w_beacon >= 0 and w_window >= 0

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_cost_weights({"per_scenario": []})

    def test_bench_json_roundtrips_through_fit(self, tmp_path):
        import json

        payload = {
            "per_scenario": [
                {"beacon_component": 2e5, "window_component": 1e4,
                 "seconds": 0.4},
                {"beacon_component": 5e4, "window_component": 8e4,
                 "seconds": 0.2},
            ]
        }
        path = tmp_path / "BENCH_parallel.json"
        path.write_text(json.dumps(payload))
        assert fit_cost_weights(path) == fit_cost_weights(payload)

    def test_installed_weights_reach_cost_hint(self):
        scenario = symmetric_pair(eta=0.02)
        baseline = scenario.cost_hint()
        previous = use_cost_weights((2.0, 2.0))
        try:
            assert math.isclose(scenario.cost_hint(), 2.0 * baseline)
        finally:
            use_cost_weights(previous)
        assert math.isclose(scenario.cost_hint(), baseline)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            use_cost_weights((-1.0, 1.0))
        assert cost_weights() == (1.0, 1.0)

    def test_fit_rejects_payload_without_per_scenario_rows(self):
        # A pre-PR-3 bench payload must produce a clear error, not an
        # opaque TypeError from iterating the dict's keys.
        with pytest.raises(ValueError, match="per_scenario"):
            fit_cost_weights({"serial_seconds": 1.0, "speedup": 4.2})

    def test_spot_check_floor_is_weight_invariant(self):
        """Calibrated seconds-per-event weights (~1e-6) must not change
        whether a DES spot-check batch clears the absolute event floor."""
        from repro.parallel.executor import _estimated_spot_events

        scenario = dense_network(n_devices=2, eta=0.02)
        baseline = _estimated_spot_events(scenario.protocols, scenario.horizon, 16)
        previous = use_cost_weights((3e-6, 2e-6))
        try:
            assert _estimated_spot_events(
                scenario.protocols, scenario.horizon, 16
            ) == baseline
        finally:
            use_cost_weights(previous)


class TestScenarioBackendField:
    def test_default_none_and_validation(self):
        scenario = dense_network(n_devices=3, eta=0.05)
        assert scenario.backend is None
        with pytest.raises(ValueError, match="backend"):
            Scenario(
                name="bad",
                protocols=scenario.protocols,
                phases=scenario.phases,
                horizon=scenario.horizon,
                backend=7,
            )


class TestCLIBackendFlag:
    def test_sweep_accepts_backend(self, capsys):
        from repro.cli import main

        assert main([
            "sweep", "--eta", "0.05", "--samples", "64", "--backend", "python",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend=python" in out

    def test_validate_accepts_backend(self, capsys):
        from repro.cli import main

        assert main([
            "validate", "--eta", "0.05", "--backend", "auto",
        ]) == 0
        assert "DES agrees       : True" in capsys.readouterr().out

    def test_grid_accepts_pooled_backend(self, capsys):
        from repro.cli import main

        assert main([
            "grid", "--devices", "3", "--etas", "0.05", "--jobs", "2",
            "--backend", "pooled",
        ]) == 0
        assert "scenario" in capsys.readouterr().out

    def test_bad_backend_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["sweep", "--eta", "0.05", "--backend", "gpu"])

    def test_unavailable_backend_exits_cleanly(self, monkeypatch, capsys):
        """--backend numpy on a base install: a one-line error and exit
        code 2, not a BackendUnavailable traceback."""
        from repro.cli import main

        monkeypatch.setattr(_np, "np", None)
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--eta", "0.05", "--samples", "64",
                  "--backend", "numpy"])
        assert excinfo.value.code == 2
        assert "not available" in capsys.readouterr().err
