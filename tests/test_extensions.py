"""Tests of the extension features: fractional Appendix-B redundancy,
Equation-31 self-blocking, grid quorums and the coverage visualizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import render_coverage_map, render_schedule
from repro.core.collisions import (
    failure_rate,
    optimize_redundancy,
    self_blocking_failure_probability,
    solve_fractional_redundancy,
)
from repro.core.coverage import CoverageMap
from repro.core.optimal import synthesize_unidirectional
from repro.protocols import GridQuorum, Role


class TestFractionalRedundancy:
    def test_never_worse_than_integer_solution(self):
        cases = [
            (0.05, 0.0005, 3),
            (0.05, 0.002, 5),
            (0.03, 0.01, 10),
            (0.10, 0.0001, 4),
        ]
        for eta, pf, s in cases:
            integer_plan = optimize_redundancy(eta, pf, s, 32e-6)
            plan, q = solve_fractional_redundancy(eta, pf, s, 32e-6)
            assert plan.latency <= integer_plan.latency * (1 + 1e-9)
            assert 0 <= q <= 1

    def test_meets_failure_target(self):
        plan, q = solve_fractional_redundancy(0.05, 0.002, 5, 32e-6)
        achieved = failure_rate(plan.beta, plan.redundancy, q, 5)
        assert achieved <= 0.002 * (1 + 1e-6)

    def test_worked_example_unchanged(self):
        """The paper's example sits at (or within numerical slack of) an
        integer optimum: fractional search must not degrade it."""
        plan, q = solve_fractional_redundancy(0.05, 0.0005, 3, 32e-6)
        assert plan.redundancy == 3
        assert plan.latency == pytest.approx(0.1583, abs=2e-3)

    @given(
        eta=st.floats(0.02, 0.1),
        pf=st.floats(1e-4, 0.05),
        senders=st.integers(3, 12),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_dominates_integer(self, eta, pf, senders):
        integer_plan = optimize_redundancy(eta, pf, senders, 32e-6)
        plan, q = solve_fractional_redundancy(eta, pf, senders, 32e-6)
        assert plan.latency <= integer_plan.latency * (1 + 1e-9)


class TestSelfBlocking:
    def test_equation_31_value(self):
        # d_oTxRx + d_oRxTx + d_a = 150+150+32 over M * sum(d) = 40*1600.
        p = self_blocking_failure_probability(150, 150, 32, 40, 1600)
        assert p == pytest.approx(332 / 64_000)

    def test_ideal_radio_still_blocks_packet_time(self):
        # Even an ideal radio loses d_a = omega per overlap (A.5).
        p = self_blocking_failure_probability(0, 0, 32, 40, 1600)
        assert p == pytest.approx(32 / 64_000)

    def test_more_listening_dilutes_blocking(self):
        small = self_blocking_failure_probability(150, 150, 32, 10, 1000)
        large = self_blocking_failure_probability(150, 150, 32, 10, 4000)
        assert large < small

    def test_validation(self):
        with pytest.raises(ValueError):
            self_blocking_failure_probability(1, 1, 1, 0, 100)
        with pytest.raises(ValueError):
            self_blocking_failure_probability(-1, 0, 0, 10, 100)

    def test_matches_simulation_order_of_magnitude(self):
        """The fraction of offsets deadlocked by self-blocking in a
        symmetric optimal pair matches Eq. 31's prediction (ideal radio:
        blocked time = omega per window overlap)."""
        from repro.core.optimal import synthesize_symmetric
        from repro.simulation import sweep_offsets

        protocol, design = synthesize_symmetric(32, 0.05)
        predicted = self_blocking_failure_probability(
            0, 0, 32, design.k, design.reception.listen_time_per_period
        )
        period = int(design.beacons.period * design.k)
        step = 7
        report = sweep_offsets(
            protocol,
            protocol,
            range(0, period, step),
            horizon=design.worst_case_latency * 3,
        )
        measured = report.failures / report.offsets_evaluated
        # Same order of magnitude (the deadlock set is the mutual overlap
        # of both devices' blocking, so a small constant factor applies).
        assert measured <= predicted * 4
        assert measured > 0


class TestGridQuorum:
    def test_deterministic_for_all_shifts(self):
        q = GridQuorum(4)
        pattern = q.pattern()
        assert pattern.is_deterministic()
        assert pattern.worst_case_slots() <= 16

    def test_any_row_column_choice_works(self):
        for row in range(3):
            for column in range(3):
                q = GridQuorum(3, row=row, column=column)
                assert q.pattern().is_deterministic()

    def test_duty_cycle_2n_minus_1(self):
        q = GridQuorum(5)
        assert q.slot_duty_cycle == pytest.approx(9 / 25)
        assert q.pattern().n_active == 9

    def test_double_the_diffcode_cost(self):
        """History quantified: quorums pay ~2x the difference-set
        duty-cycle for the same worst case."""
        from repro.protocols import Diffcodes

        quorum = GridQuorum(5)  # wc 25 slots at 9/25 = 36%
        diff = Diffcodes(4)  # wc 21 slots at 5/21 = 23.8%
        assert quorum.worst_case_slots() == pytest.approx(
            diff.worst_case_slots(), rel=0.25
        )
        assert quorum.slot_duty_cycle > 1.4 * diff.slot_duty_cycle

    def test_validation(self):
        with pytest.raises(ValueError):
            GridQuorum(1)
        with pytest.raises(ValueError):
            GridQuorum(3, row=3)

    def test_device_lowering(self):
        q = GridQuorum(3, slot_length=1_000)
        proto = q.device(Role.E)
        assert proto.beacons.n_beacons == 5  # 2n - 1
        assert proto.beacons.period == 9_000


class TestVisualization:
    def _map(self, k=8, redundancy=1):
        design = synthesize_unidirectional(32, 320, k, k + 1, redundancy)
        shifts = [
            i * design.beacons.period for i in range(redundancy * k)
        ]
        return CoverageMap(shifts, design.reception), design

    def test_render_coverage_map_shape(self):
        cover, _ = self._map()
        art = render_coverage_map(cover, width=64)
        lines = art.splitlines()
        assert "deterministic" in lines[0] and "disjoint" in lines[0]
        assert len([l for l in lines if " O" in l]) == 8  # one row per beacon
        assert lines[-1].endswith("Lambda*")
        assert "." not in lines[-1].split()[0]  # fully covered

    def test_render_redundant_map_shows_depth_two(self):
        cover, _ = self._map(k=5, redundancy=2)
        art = render_coverage_map(cover, width=50)
        footer = art.splitlines()[-1].split()[0]
        assert set(footer) == {"2"}

    def test_render_gap_shows_dots(self):
        design = synthesize_unidirectional(32, 320, 8, 9)
        cover = CoverageMap([0], design.reception)  # one beacon: gaps
        footer = render_coverage_map(cover).splitlines()[-1].split()[0]
        assert "." in footer and "NOT deterministic" in render_coverage_map(cover)

    def test_row_elision(self):
        cover, _ = self._map(k=12)
        art = render_coverage_map(cover, max_rows=4)
        assert "8 more rows elided" in art

    def test_render_schedule_markers(self):
        _, design = self._map()
        art = render_schedule(
            design.beacons, design.reception, span=int(design.reception.period)
        )
        body = art.splitlines()[1]
        assert "X" in body or "!" in body  # a beacon lands somewhere
        assert "=" in body

    def test_render_schedule_validation(self):
        with pytest.raises(ValueError):
            render_schedule(None, None)
        cover, _ = self._map()
        with pytest.raises(ValueError):
            render_coverage_map(cover, width=4)
