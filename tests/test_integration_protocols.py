"""Integration: protocol-zoo schedules simulated end to end.

Validates that the lowered (microsecond-level) schedules of the classic
slotted protocols actually deliver their published slot-level guarantees
in the simulator, and that the protocol ranking the paper reports
(Table 1 / Section 6) emerges from measurements, not just formulas.
"""

import pytest

from repro.protocols import (
    Diffcodes,
    Disco,
    OptimalSlotless,
    PeriodicInterval,
    Role,
    Searchlight,
    UConnect,
)
from repro.simulation import (
    ReceptionModel,
    simulate_pair,
    sweep_offsets,
)


def measured_worst_case(
    pair_protocol,
    horizon,
    n_offsets=512,
    model=ReceptionModel.POINT,
    exclude_aligned=0,
):
    """Uniform offset sweep of a zoo protocol (slot patterns make critical
    sets huge; a uniform grid over the hyperperiod is the robust choice).

    ``exclude_aligned`` drops offsets within that many microseconds of a
    slot boundary: identical half-duplex schedules deadlock when their
    beacons coincide on air (the Figure-5 / Appendix-A.5 phenomenon), a
    measure-``2 omega / I`` set real deployments escape via drift and
    randomization.
    """
    device_e = pair_protocol.device(Role.E)
    device_f = pair_protocol.device(Role.F)
    period = max(
        int(device_e.beacons.period) if device_e.beacons else 1,
        int(device_f.reception.period) if device_f.reception else 1,
    )
    step = max(1, period // n_offsets)
    offsets = range(0, period, step)
    if exclude_aligned:
        slot = pair_protocol.slot_length
        offsets = [
            off
            for off in offsets
            if exclude_aligned <= off % slot <= slot - exclude_aligned
        ]
    return sweep_offsets(device_e, device_f, offsets, horizon, model)


class TestSlottedProtocolGuarantees:
    @pytest.mark.parametrize(
        "protocol",
        [
            Disco(5, 7, slot_length=2_000),
            UConnect(7, slot_length=2_000),
            Searchlight(8, slot_length=2_000),
            Diffcodes(3, slot_length=2_000),
        ],
        ids=["disco", "uconnect", "searchlight", "diffcodes"],
    )
    def test_discovery_within_published_guarantee(self, protocol):
        """Every non-degenerate offset discovers within the protocol's own
        worst-case claim (plus one slot for the range-entry convention).

        Offsets within ~2 omega of exact slot alignment are excluded:
        there, identical half-duplex schedules transmit on top of each
        other and deadlock -- the slot-length effect of Figure 5 that the
        companion test below demonstrates explicitly.
        """
        guarantee = protocol.predicted_worst_case_latency()
        slot = protocol.slot_length
        report = measured_worst_case(
            protocol,
            horizon=int(guarantee * 3),
            exclude_aligned=2 * protocol.omega,
        )
        assert report.failures == 0
        assert report.worst_one_way <= guarantee + slot

    def test_figure5_slot_aligned_offsets_deadlock(self):
        """Figure 5 / Appendix A.5 made concrete: at exact slot alignment
        identical half-duplex devices jam each other forever."""
        protocol = Disco(5, 7, slot_length=2_000)
        device_e, device_f = protocol.device(Role.E), protocol.device(Role.F)
        report = sweep_offsets(
            device_e,
            device_f,
            [0],  # exact alignment
            horizon=int(protocol.predicted_worst_case_latency() * 3),
        )
        assert report.failures == 1

    def test_diffcodes_tighter_than_disco_at_comparable_budget(self):
        """The measured worst cases must reproduce the paper's ranking."""
        slot = 2_000
        disco = Disco(37, 43, slot_length=slot)  # eta ~ 5%
        diff = Diffcodes(9, slot_length=slot)  # eta ~ 11% but wc 91 slots
        r_disco = measured_worst_case(
            disco, horizon=disco.predicted_worst_case_latency() * 2,
            n_offsets=128, exclude_aligned=64,
        )
        r_diff = measured_worst_case(
            diff, horizon=diff.predicted_worst_case_latency() * 3,
            n_offsets=128, exclude_aligned=64,
        )
        assert r_diff.worst_one_way < r_disco.worst_one_way


class TestPiProtocolEndToEnd:
    def test_pi_simulated_latency_matches_exact_computation(self):
        """The coverage-map worst case of a PI config is reproduced by
        simulation at the worst offset."""
        pi = PeriodicInterval(
            adv_interval=11_000, scan_interval=10_000, scan_window=1_000
        )
        exact = pi.predicted_worst_case_latency()
        adv, scan = pi.device(Role.E), pi.device(Role.F)
        report = sweep_offsets(
            adv, scan, range(0, 110_000, 25), horizon=exact * 2
        )
        assert report.failures == 0
        # worst l* == exact - Ta (range-entry term).
        assert report.worst_one_way == exact - 11_000

    def test_jittered_ble_breaks_the_coupling_trap(self):
        """Ta == Ts is non-deterministic without jitter; BLE's advDelay
        randomization rescues discovery for a locked offset."""
        pi = PeriodicInterval(
            adv_interval=100_000, scan_interval=100_000, scan_window=10_000
        )
        adv, scan = pi.device(Role.E), pi.device(Role.F)
        locked = simulate_pair(adv, scan, offset=50_000, horizon=10_000_000)
        assert locked.e_discovered_by_f is None
        jittered = simulate_pair(
            adv,
            scan,
            offset=50_000,
            horizon=100_000_000,
            advertising_jitter=10_000,
            seed=5,
        )
        assert jittered.e_discovered_by_f is not None


class TestOptimalVsZoo:
    def test_optimal_slotless_beats_searchlight_at_equal_budget(self):
        """The punchline: at the same duty-cycle the optimal slotless
        schedule guarantees a lower worst case than Searchlight."""
        searchlight = Searchlight(40, slot_length=10_000, omega=32)
        eta = searchlight.duty_cycle()
        optimal = OptimalSlotless(eta=eta, omega=32)
        assert (
            optimal.predicted_worst_case_latency()
            < searchlight.predicted_worst_case_latency()
        )

    def test_optimal_slotless_simulates_to_its_claim(self):
        optimal = OptimalSlotless(eta=0.05, omega=32)
        claim = optimal.predicted_worst_case_latency()
        device = optimal.device(Role.E)
        design = optimal.design()
        adv_only = type(device)(
            beacons=design.beacons, reception=None, alpha=device.alpha
        )
        scan_only = type(device)(
            beacons=None, reception=design.reception, alpha=device.alpha
        )
        report = sweep_offsets(
            adv_only,
            scan_only,
            range(0, int(design.beacons.period * design.k), 13),
            horizon=int(claim * 2),
        )
        assert report.failures == 0
        assert report.worst_one_way + design.beacons.period == claim
