"""The declarative pair-family registry: schema canonicalization and
spec-layer integration (new kinds without touching repro.api.spec)."""

import pytest

from repro.api import RunSpec, SpecError
from repro.api.spec import build_pair
from repro.protocols import (
    build_registered_pair,
    canonical_pair,
    pair_kinds,
    pair_schema,
    PairSchema,
    register_pair_schema,
)
from repro.store import run_fingerprint


class TestRegistry:
    def test_builtin_kinds_registered(self):
        kinds = pair_kinds()
        assert kinds == sorted(kinds)
        for kind in ("symmetric", "symmetric-split", "asymmetric", "zoo",
                     "unidirectional"):
            assert kind in kinds
            assert pair_schema(kind) is not None

    def test_canonical_fills_defaults(self):
        sparse = {"kind": "symmetric", "eta": 0.05}
        assert canonical_pair(sparse) == {
            "kind": "symmetric", "eta": 0.05, "omega": 32, "alpha": 1.0,
        }
        # Input is never mutated.
        assert sparse == {"kind": "symmetric", "eta": 0.05}

    def test_canonical_passthrough_unknown_or_nonmapping(self):
        assert canonical_pair({"kind": "no-such-kind", "x": 1}) == {
            "kind": "no-such-kind", "x": 1,
        }
        assert canonical_pair(None) is None
        assert canonical_pair([1, 2]) == [1, 2]

    def test_zoo_canonicalization_uses_signature(self):
        sparse = {
            "kind": "zoo", "protocol": "Searchlight",
            "params": {"period_slots": 8, "slot_length": 96},
        }
        canonical = canonical_pair(sparse)
        params = canonical["params"]
        assert params["period_slots"] == 8
        assert params["slot_length"] == 96
        # Constructor defaults filled from inspect.signature:
        assert "omega" in params and "alpha" in params and "striped" in params

    def test_unidirectional_builds(self):
        adv, scan, base = build_registered_pair({
            "kind": "unidirectional", "window": 100, "k": 7, "stride": 8,
        })
        assert adv.beacons is not None and adv.reception is None
        assert scan.beacons is None and scan.reception is not None
        assert base > 0

    def test_build_pair_falls_through_to_registry(self):
        adv, scan, base = build_pair({
            "kind": "unidirectional", "window": 64, "k": 5, "stride": 7,
            "omega": 32,
        })
        assert adv.name == "advertiser" and scan.name == "scanner"
        assert base > 0

    def test_unknown_kind_lists_registered(self):
        with pytest.raises(SpecError, match="registered kinds"):
            build_pair({"kind": "definitely-not-a-kind"})

    def test_bad_params_become_spec_errors(self):
        with pytest.raises(SpecError, match="unidirectional"):
            build_pair({"kind": "unidirectional", "window": 64, "k": 5,
                        "stride": 7, "typo": 1})


class TestCustomKind:
    @pytest.fixture()
    def custom_kind(self):
        def build(params):
            from repro.core.optimal import synthesize_symmetric

            protocol, design = synthesize_symmetric(
                params.pop("omega", 32), params.pop("eta", 0.01), 1.0
            )
            if params:
                raise ValueError(f"unknown: {sorted(params)}")
            return protocol, protocol, design.worst_case_latency

        schema = PairSchema(
            kind="test-custom",
            build=build,
            defaults={"omega": 32, "eta": 0.01},
            description="test-only kind",
        )
        register_pair_schema(schema)
        yield schema
        from repro.protocols import registry

        registry._SCHEMAS.pop("test-custom", None)

    def test_registered_kind_resolves_via_spec_layer(self, custom_kind):
        assert "test-custom" in pair_kinds()
        e, f, base = build_pair({"kind": "test-custom", "eta": 0.02})
        assert e is f and base > 0

    def test_fingerprints_derive_from_schema_not_import_path(self, custom_kind):
        # Omitted defaults and explicit defaults hash identically --
        # identity is the canonical schema form.
        sparse = RunSpec(pair={"kind": "test-custom"})
        explicit = RunSpec(pair={"kind": "test-custom", "omega": 32,
                                 "eta": 0.01})
        assert run_fingerprint("sweep", sparse) == run_fingerprint(
            "sweep", explicit
        )
        other = RunSpec(pair={"kind": "test-custom", "eta": 0.02})
        assert run_fingerprint("sweep", sparse) != run_fingerprint(
            "sweep", other
        )
