"""Tests of the parallel sweep engine and the PR-1 fidelity bugfixes.

The load-bearing property: everything the parallel subsystem computes --
cached listening-set decisions, chunked sweeps, grid runs -- must be
*bit-identical* to the serial reference path, for arbitrary protocol
pairs, reception models and turnaround guards.
"""

import random

import pytest

from repro.core.optimal import synthesize_symmetric
from repro.core.sequences import (
    BeaconSchedule,
    NDProtocol,
    ReceptionSchedule,
)
from repro.parallel import (
    CachedPairEvaluator,
    derive_seed,
    ListeningCache,
    ParallelSweep,
)
from repro.parallel.executor import _chunk
from repro.simulation import (
    evaluate_offsets,
    mutual_discovery_times,
    NetworkResult,
    ReceptionModel,
    simulate_pair,
    simulate_pair_mutual_assistance,
    summarize_outcomes,
    sweep_network_grid,
    sweep_offsets,
    verified_worst_case,
)
from repro.simulation.analytic import _packet_heard
from repro.simulation.channel import Channel
from repro.simulation.engine import Simulator
from repro.simulation.node import Node
from repro.workloads import dense_network, scenario_grid


def random_protocol(rng: random.Random, role: str = "both") -> NDProtocol:
    """A random small-period protocol; ``role`` picks the sequences."""
    beacons = None
    reception = None
    if role in ("both", "tx"):
        n = rng.randint(1, 3)
        gap = rng.randint(40, 400)
        duration = rng.randint(2, min(12, gap - 1))
        beacons = BeaconSchedule.uniform(n, gap, duration)
    if role in ("both", "rx"):
        period = rng.randint(100, 600)
        duration = rng.randint(15, 80)
        start = rng.randint(0, period - duration)
        reception = ReceptionSchedule.single_window(duration, period, start)
    return NDProtocol(beacons=beacons, reception=reception)


def random_pair(rng: random.Random) -> tuple[NDProtocol, NDProtocol]:
    shape = rng.choice(["both/both", "both/both", "both/both", "tx/rx"])
    if shape == "tx/rx":
        return random_protocol(rng, "tx"), random_protocol(rng, "rx")
    return random_protocol(rng, "both"), random_protocol(rng, "both")


class TestListeningCache:
    def test_decisions_bit_identical_random_protocols(self):
        """Property test: cached decode decisions equal the direct
        computation for random receivers, times, models and guards --
        including below-threshold times where the boot cutoff breaks
        periodicity."""
        rng = random.Random(42)
        for _ in range(40):
            receiver = random_protocol(rng, "both")
            turnaround = rng.choice([0, 0, 1, 7])
            cache = ListeningCache(receiver, turnaround)
            for _ in range(60):
                start = rng.randint(0, 5_000)
                length = rng.randint(1, 20)
                phase = rng.randint(0, 2_000)
                model = rng.choice(list(ReceptionModel))
                expected = _packet_heard(
                    receiver, phase, start, start + length, model, turnaround
                )
                got = cache.packet_heard(phase, start, start + length, model)
                assert got == expected, (
                    receiver, phase, start, length, model, turnaround
                )

    def test_non_integer_schedule_falls_back(self):
        receiver = NDProtocol(
            beacons=None,
            reception=ReceptionSchedule.single_window(25.5, 100.0),
        )
        cache = ListeningCache(receiver)
        assert not cache.enabled
        for start in (0, 10, 30, 99, 130):
            assert cache.packet_heard(
                0, start, start + 1, ReceptionModel.POINT
            ) == _packet_heard(
                receiver, 0, start, start + 1, ReceptionModel.POINT, 0
            )

    def test_evaluator_matches_mutual_discovery_times(self):
        rng = random.Random(7)
        for _ in range(12):
            protocol_e, protocol_f = random_pair(rng)
            turnaround = rng.choice([0, 0, 5])
            model = rng.choice(list(ReceptionModel))
            horizon = 30_000
            evaluator = CachedPairEvaluator(
                protocol_e, protocol_f, horizon, model, turnaround
            )
            for _ in range(25):
                offset = rng.randint(0, 10_000)
                assert evaluator.evaluate(offset) == mutual_discovery_times(
                    protocol_e, protocol_f, offset, horizon, model, turnaround
                )


class TestBatchEntryPoints:
    def test_sweep_is_summarize_of_evaluate(self):
        rng = random.Random(3)
        protocol_e, protocol_f = random_pair(rng)
        offsets = [rng.randint(0, 10_000) for _ in range(50)]
        horizon = 25_000
        outcomes = evaluate_offsets(protocol_e, protocol_f, offsets, horizon)
        assert [o.offset for o in outcomes] == offsets
        assert summarize_outcomes(outcomes) == sweep_offsets(
            protocol_e, protocol_f, offsets, horizon
        )

    def test_summarize_ties_break_to_earliest(self):
        protocol, _ = synthesize_symmetric(32, 0.05)
        # Duplicate offsets give identical outcomes: the first occurrence
        # must win the worst-offset slots.
        report = sweep_offsets(protocol, protocol, [500, 500], 200_000)
        assert report.worst_offset_one_way == 500
        assert report.offsets_evaluated == 2


class TestParallelSweep:
    def test_chunking_partitions_in_order(self):
        items = list(range(17))
        chunks = _chunk(items, 5)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) == 5
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1
        assert _chunk(items, 100) == [[x] for x in items]

    def test_bit_identical_to_serial_random_pairs(self):
        """Property test: the chunked multiprocessing sweep reproduces
        the serial report exactly -- counts, worsts, float means and
        tie-broken worst offsets."""
        rng = random.Random(11)
        executor = ParallelSweep(jobs=2, chunks_per_job=3)
        for _ in range(3):
            protocol_e, protocol_f = random_pair(rng)
            offsets = [rng.randint(0, 20_000) for _ in range(120)]
            horizon = 25_000
            model = rng.choice(list(ReceptionModel))
            serial = sweep_offsets(
                protocol_e, protocol_f, offsets, horizon, model
            )
            parallel = executor.sweep_offsets(
                protocol_e, protocol_f, offsets, horizon, model
            )
            assert parallel == serial

    def test_float_period_protocols_bit_identical(self):
        """Regression: non-integer schedule periods must not drift.

        The worker-side beacon enumeration has to use the
        ``reduced + instance * period`` multiplication of
        ``iter_beacons_infinite`` -- a running ``+= period`` float sum
        accumulates error and lands beacons on the wrong side of window
        boundaries -- and float discovery times must flow through the
        one shared ``summarize_outcomes`` so the means do not
        re-associate."""
        adv = NDProtocol(
            beacons=BeaconSchedule.uniform(1, 100.1, 2),
            reception=ReceptionSchedule.single_window(25, 600),
        )
        scan = NDProtocol(
            beacons=BeaconSchedule.uniform(2, 150, 3),
            reception=ReceptionSchedule.single_window(40.5, 350.25),
        )
        offsets = list(range(0, 700))
        horizon = 5_000
        serial = sweep_offsets(adv, scan, offsets, horizon)
        parallel = ParallelSweep(jobs=2, chunks_per_job=3).sweep_offsets(
            adv, scan, offsets, horizon
        )
        assert parallel == serial
        evaluator = CachedPairEvaluator(adv, scan, horizon)
        for offset in offsets[::37]:
            assert evaluator.evaluate(offset) == mutual_discovery_times(
                adv, scan, offset, horizon
            )

    def test_jobs_one_is_serial_path(self):
        protocol, design = synthesize_symmetric(32, 0.05)
        offsets = list(range(0, 50_000, 1_111))
        horizon = design.worst_case_latency * 3
        assert ParallelSweep(jobs=1).sweep_offsets(
            protocol, protocol, offsets, horizon
        ) == sweep_offsets(protocol, protocol, offsets, horizon)

    def test_verified_worst_case_parallel_identical(self):
        protocol, design = synthesize_symmetric(32, 0.05)
        horizon = design.worst_case_latency * 3
        serial = verified_worst_case(protocol, protocol, horizon, omega=32)
        parallel = verified_worst_case(
            protocol, protocol, horizon, omega=32, jobs=2
        )
        assert parallel.analytic == serial.analytic
        assert parallel.offsets_checked == serial.offsets_checked
        assert parallel.des_agrees and serial.des_agrees

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ParallelSweep(jobs=-1)
        with pytest.raises(ValueError):
            ParallelSweep(jobs=2, chunks_per_job=0)


class TestNetworkGrid:
    def test_scenario_grid_row_major_expansion(self):
        grid = scenario_grid(
            dense_network, n_devices=[3, 4], eta=[0.02, 0.05]
        )
        assert [
            (len(s.protocols), round(s.protocols[0].eta, 2)) for s in grid
        ] == [(3, 0.02), (3, 0.05), (4, 0.02), (4, 0.05)]

    def test_scenario_grid_validates_axes(self):
        with pytest.raises(ValueError):
            scenario_grid(dense_network)
        with pytest.raises(ValueError):
            scenario_grid(dense_network, n_devices=[])
        with pytest.raises(TypeError):
            scenario_grid(dense_network, n_devices=3)

    def test_grid_results_identical_serial_vs_parallel(self):
        grid = scenario_grid(
            dense_network, n_devices=[3, 4], eta=[0.05], seed=[0, 1]
        )
        serial = sweep_network_grid(grid, jobs=1, base_seed=9)
        parallel = sweep_network_grid(grid, jobs=2, base_seed=9)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a == b

    def test_seeds_derive_from_global_index(self):
        assert derive_seed(1, 0) != derive_seed(1, 1)
        assert derive_seed(1, 5) == derive_seed(1, 5)
        assert derive_seed(2, 5) != derive_seed(1, 5)


class TestSpotCheckSelection:
    """Regression: the DES spot-check selection loop drew random
    indices until the set was full, so duplicate-heavy offset lists
    (fewer unique values than the target size) spun it forever, and
    collision retries made the draw count an accident of the input."""

    def select(self, offsets, required=(), count=16):
        from repro.simulation.runner import _select_spot_check_offsets

        return _select_spot_check_offsets(offsets, required, count)

    def test_duplicate_heavy_offsets_terminate(self):
        # 30 copies of one value plus one other: the old loop's target
        # of min(16, 31) = 16 unique offsets was unreachable.
        offsets = [7] * 30 + [9]
        assert self.select(offsets) == [7, 9]

    def test_selection_is_deterministic_and_duplicate_free(self):
        offsets = [offset % 40 for offset in range(0, 400, 7)]
        first = self.select(offsets, required=(11, 25), count=10)
        second = self.select(offsets, required=(11, 25), count=10)
        assert first == second
        assert len(first) == len(set(first)) == 10
        assert {11, 25}.issubset(first)
        assert all(offset in offsets for offset in first)

    def test_required_offsets_always_kept(self):
        offsets = list(range(100))
        chosen = self.select(offsets, required=(99, 0), count=4)
        assert {0, 99}.issubset(chosen)
        assert len(chosen) == 4

    def test_none_required_entries_skipped(self):
        chosen = self.select([1, 2, 3], required=(None, 2), count=2)
        assert 2 in chosen
        assert len(chosen) == 2

    def test_verified_worst_case_spot_checks_in_parallel(self):
        """End to end: the parallel spot-check path returns the same
        verdict and report as the serial one."""
        protocol, design = synthesize_symmetric(32, 0.05)
        horizon = design.worst_case_latency * 3
        serial = verified_worst_case(
            protocol, protocol, horizon, omega=32, des_spot_checks=6
        )
        parallel = verified_worst_case(
            protocol, protocol, horizon, omega=32, des_spot_checks=6, jobs=2
        )
        assert serial == parallel
        assert serial.des_agrees

    def test_spot_check_pool_bit_identical(self, monkeypatch):
        """The pooled replay path (normally gated behind the estimated
        work floor) matches the in-process path exactly."""
        from repro.parallel import executor as executor_module

        protocol, design = synthesize_symmetric(32, 0.05)
        horizon = design.worst_case_latency
        offsets = [0, 1_234, 56_789, 111_111]
        serial = ParallelSweep(jobs=1).spot_check_pairs(
            protocol, protocol, offsets, horizon
        )
        monkeypatch.setattr(executor_module, "_SPOT_POOL_MIN_EVENTS", 0)
        pooled = ParallelSweep(jobs=2).spot_check_pairs(
            protocol, protocol, offsets, horizon
        )
        assert pooled == serial
        assert [analytic.offset for analytic, _ in pooled] == offsets


class TestMutualAssistanceFidelity:
    """Regression: the assistance runner silently dropped the fidelity
    knobs its sibling ``simulate_pair`` supports."""

    def test_accepts_and_forwards_seeded_jitter(self):
        protocol, design = synthesize_symmetric(32, 0.02)
        horizon = design.worst_case_latency * 4
        a = simulate_pair_mutual_assistance(
            protocol, protocol, 7_777, horizon,
            advertising_jitter=500, seed=9,
        )
        b = simulate_pair_mutual_assistance(
            protocol, protocol, 7_777, horizon,
            advertising_jitter=500, seed=9,
        )
        c = simulate_pair_mutual_assistance(
            protocol, protocol, 7_777, horizon,
            advertising_jitter=500, seed=10,
        )
        assert a == b
        assert a != c  # different seed must move the jittered schedule

    def test_drift_changes_timing_but_still_discovers(self):
        protocol, design = synthesize_symmetric(32, 0.02)
        horizon = design.worst_case_latency * 4
        ideal = simulate_pair_mutual_assistance(
            protocol, protocol, 12_345, horizon
        )
        drifting = simulate_pair_mutual_assistance(
            protocol, protocol, 12_345, horizon, drift_ppm_f=5_000
        )
        # A severe crystal error must actually reach the simulation: the
        # rendezvous moves (before the fix the knob did not exist).  One
        # direction can miss entirely under 5000 ppm -- the plain pair
        # runner agrees -- but discovery must not vanish altogether.
        assert drifting != ideal
        assert drifting.one_way is not None
        plain = simulate_pair(
            protocol, protocol, 12_345, horizon, drift_ppm_f=5_000
        )
        assert drifting.f_discovered_by_e == plain.f_discovered_by_e

    def test_defaults_unchanged(self):
        """With all knobs at defaults the fixed runner is the old one."""
        protocol, design = synthesize_symmetric(32, 0.02)
        horizon = design.worst_case_latency * 4
        outcome = simulate_pair_mutual_assistance(
            protocol, protocol, 123_457, horizon
        )
        plain = simulate_pair(protocol, protocol, 123_457, horizon)
        assert outcome.one_way == plain.one_way
        assert outcome.two_way is not None
        assert outcome.two_way <= outcome.one_way + int(
            design.reception.period
        )


class TestScheduleResponseTx:
    """Regression: the assist hook used the private ``Node._begin_tx``."""

    def make_node(self):
        protocol, _ = synthesize_symmetric(32, 0.05)
        sim = Simulator()
        channel = Channel()
        node = Node("n", protocol, sim, channel)
        return sim, channel, node

    def test_schedules_a_real_transmission(self):
        sim, channel, node = self.make_node()
        node.schedule_response_tx(32, at=100)
        sim.run_until(200)
        assert channel.total_transmissions == 1

    def test_defaults_to_now(self):
        sim, channel, node = self.make_node()
        node.schedule_response_tx(32)
        sim.run_until(50)
        assert channel.total_transmissions == 1

    def test_past_time_rejected(self):
        sim, channel, node = self.make_node()
        sim.run_until(500)
        with pytest.raises(ValueError):
            node.schedule_response_tx(32, at=100)


class TestQuantileNearestRank:
    """Regression: ``int(q*n)`` truncation overshot at exact-rank
    boundaries (the median of an even-sized sample took the upper
    element)."""

    def make_result(self, latencies):
        result = NetworkResult(n_nodes=2, horizon=1_000)
        for i, latency in enumerate(latencies):
            result.discovery_times[(f"a{i}", f"b{i}")] = latency
        return result

    def test_even_sample_median_is_lower_of_the_two(self):
        result = self.make_result([1, 2, 3, 4])
        assert result.quantile(0.5) == 2

    def test_boundaries_and_interior(self):
        result = self.make_result([10, 20, 30, 40])
        assert result.quantile(0.0) == 10
        assert result.quantile(0.25) == 10
        assert result.quantile(0.26) == 20
        assert result.quantile(1.0) == 40

    def test_empty_returns_none(self):
        assert NetworkResult(n_nodes=2, horizon=1).quantile(0.5) is None

    def test_matches_stats_module_semantics(self):
        from repro.analysis.stats import _quantile

        rng = random.Random(5)
        latencies = sorted(rng.randint(1, 1000) for _ in range(17))
        result = self.make_result(latencies)
        for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
            assert result.quantile(q) == _quantile(latencies, q)
