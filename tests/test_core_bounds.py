"""Tests of the fundamental bounds (Section 5, Appendices A and C)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import bounds

OMEGA = 32e-6  # 32 us in seconds; bounds are unit-agnostic

etas = st.floats(min_value=1e-4, max_value=1.0)
alphas = st.floats(min_value=0.25, max_value=4.0)


class TestCoverageBound:
    def test_equation_6(self):
        # T_C = 1000, sum(d) = 100 -> M = 10; L = 10 * omega / beta.
        assert bounds.coverage_bound(1_000, 100, omega=32, beta=0.01) == 32_000

    def test_ceiling_behaviour(self):
        a = bounds.coverage_bound(1_000, 100, omega=32, beta=0.01)
        b = bounds.coverage_bound(1_001, 100, omega=32, beta=0.01)
        assert b == a * 11 / 10  # M jumps from 10 to 11

    def test_input_validation(self):
        with pytest.raises(ValueError):
            bounds.coverage_bound(0, 100, 32, 0.01)
        with pytest.raises(ValueError):
            bounds.coverage_bound(1_000, 100, 32, 0)


class TestUnidirectionalBound:
    def test_theorem_5_4(self):
        assert bounds.unidirectional_bound(OMEGA, 0.01, 0.01) == pytest.approx(
            OMEGA / 1e-4
        )

    def test_symmetry_in_arguments(self):
        assert bounds.unidirectional_bound(
            OMEGA, 0.02, 0.005
        ) == bounds.unidirectional_bound(OMEGA, 0.005, 0.02)

    @given(beta=etas, gamma=etas)
    def test_monotone_decreasing_in_duty_cycles(self, beta, gamma):
        base = bounds.unidirectional_bound(OMEGA, beta, gamma)
        more_tx = bounds.unidirectional_bound(OMEGA, min(1.0, beta * 2), gamma)
        assert more_tx <= base


class TestSymmetricBound:
    def test_theorem_5_5_value(self):
        # eta = 1%, alpha = 1: L = 4 * omega / 1e-4
        assert bounds.symmetric_bound(OMEGA, 0.01) == pytest.approx(
            4 * OMEGA * 1e4
        )

    def test_optimal_split_attains_bound(self):
        """The interior optimum: unidirectional bound at beta = eta/2a,
        gamma = eta/2 equals the symmetric bound."""
        for alpha in (0.5, 1.0, 2.0):
            for eta in (0.002, 0.01, 0.2):
                split = bounds.optimal_split(eta, alpha)
                uni = bounds.unidirectional_bound(OMEGA, split.beta, split.gamma)
                sym = bounds.symmetric_bound(OMEGA, eta, alpha)
                assert uni == pytest.approx(sym)

    @given(eta=etas, alpha=alphas)
    def test_optimal_split_is_a_minimum(self, eta, alpha):
        """Perturbing the split away from beta = eta/2a only hurts."""
        split = bounds.optimal_split(eta, alpha)
        best = bounds.unidirectional_bound(OMEGA, split.beta, split.gamma)
        for factor in (0.5, 0.9, 1.1, 1.5):
            beta = split.beta * factor
            gamma = eta - alpha * beta
            if 0 < beta <= 1 and 0 < gamma <= 1:
                assert (
                    bounds.unidirectional_bound(OMEGA, beta, gamma)
                    >= best * (1 - 1e-12)
                )

    @given(eta=etas)
    def test_quadratic_scaling(self, eta):
        """Halving the duty-cycle quadruples the bound."""
        if eta / 2 > 1e-5:
            assert bounds.symmetric_bound(OMEGA, eta / 2) == pytest.approx(
                4 * bounds.symmetric_bound(OMEGA, eta)
            )

    def test_split_consistency_check(self):
        with pytest.raises(ValueError):
            bounds.DutyCycleSplit(eta=0.01, beta=0.01, gamma=0.01, alpha=1.0)


class TestConstrainedBound:
    def test_theorem_5_6_unconstrained_branch(self):
        # beta_max above the optimum: cap not binding.
        eta = 0.01
        assert bounds.constrained_bound(
            OMEGA, eta, beta_max=eta
        ) == bounds.symmetric_bound(OMEGA, eta)

    def test_theorem_5_6_constrained_branch(self):
        eta, beta_max = 0.05, 0.001
        expected = OMEGA / (eta * beta_max - beta_max**2)
        assert bounds.constrained_bound(OMEGA, eta, beta_max) == pytest.approx(
            expected
        )

    def test_kink_continuity(self):
        """The two branches agree at eta = 2 alpha beta_max."""
        beta_max, alpha = 0.004, 1.3
        eta = 2 * alpha * beta_max
        below = bounds.constrained_bound(OMEGA, eta * 0.9999, beta_max, alpha)
        at = bounds.constrained_bound(OMEGA, eta, beta_max, alpha)
        above = bounds.constrained_bound(OMEGA, eta * 1.0001, beta_max, alpha)
        assert below == pytest.approx(at, rel=1e-3)
        assert above == pytest.approx(at, rel=1e-3)

    @given(eta=st.floats(0.001, 0.5), beta_max=st.floats(0.0005, 0.5))
    def test_cap_never_helps(self, eta, beta_max):
        if eta <= beta_max:  # keep the constrained branch feasible
            return
        constrained = bounds.constrained_bound(OMEGA, eta, beta_max)
        assert constrained >= bounds.symmetric_bound(OMEGA, eta) * (1 - 1e-12)

    def test_generous_cap_is_never_binding(self):
        """A cap above eta/2a falls in the unconstrained branch -- the
        binding branch's denominator is then always positive, so the
        formula has no feasibility gap for valid inputs."""
        assert bounds.constrained_bound(
            OMEGA, 0.01, beta_max=0.02
        ) == bounds.symmetric_bound(OMEGA, 0.01)
        assert bounds.constrained_bound(
            OMEGA, 0.0005, beta_max=0.01
        ) == bounds.symmetric_bound(OMEGA, 0.0005)


class TestAsymmetricBound:
    def test_theorem_5_7(self):
        assert bounds.asymmetric_bound(OMEGA, 0.02, 0.005) == pytest.approx(
            4 * OMEGA / (0.02 * 0.005)
        )

    def test_reduces_to_symmetric(self):
        assert bounds.asymmetric_bound(OMEGA, 0.01, 0.01) == pytest.approx(
            bounds.symmetric_bound(OMEGA, 0.01)
        )

    @given(eta_e=etas, eta_f=etas)
    def test_symmetry(self, eta_e, eta_f):
        assert bounds.asymmetric_bound(OMEGA, eta_e, eta_f) == pytest.approx(
            bounds.asymmetric_bound(OMEGA, eta_f, eta_e)
        )

    @given(s=st.floats(0.002, 0.4), ratio=st.floats(1.0, 20.0))
    def test_figure_6_geometry(self, s, ratio):
        """For a fixed duty-cycle *sum*, the symmetric split minimizes the
        bound (the honest reading of Figure 6; see EXPERIMENTS.md)."""
        eta_e = s * ratio / (1 + ratio)
        eta_f = s / (1 + ratio)
        sym = bounds.asymmetric_bound(OMEGA, s / 2, s / 2)
        asym = bounds.asymmetric_bound(OMEGA, eta_e, eta_f)
        assert asym >= sym * (1 - 1e-9)


class TestOneWayBound:
    def test_theorem_c1_halves_symmetric(self):
        assert bounds.one_way_bound(OMEGA, 0.01) == pytest.approx(
            bounds.symmetric_bound(OMEGA, 0.01) / 2
        )

    @given(eta=etas, alpha=alphas)
    def test_always_half(self, eta, alpha):
        assert bounds.one_way_bound(OMEGA, eta, alpha) == pytest.approx(
            bounds.symmetric_bound(OMEGA, eta, alpha) / 2
        )


class TestInverseForms:
    @given(eta=st.floats(0.02, 1.0))
    def test_eta_for_latency_roundtrip_symmetric(self, eta):
        latency = bounds.symmetric_bound(OMEGA, eta)
        assert bounds.eta_for_latency_symmetric(OMEGA, latency) == pytest.approx(
            eta
        )

    @given(eta=st.floats(0.02, 1.0))
    def test_eta_for_latency_roundtrip_one_way(self, eta):
        latency = bounds.one_way_bound(OMEGA, eta)
        assert bounds.eta_for_latency_one_way(OMEGA, latency) == pytest.approx(eta)

    def test_unreachable_latency_raises(self):
        with pytest.raises(ValueError, match="unreachable"):
            bounds.eta_for_latency_symmetric(OMEGA, latency=OMEGA / 1_000)

    def test_unidirectional_feasibility(self):
        split = bounds.duty_cycles_for_latency_unidirectional(
            OMEGA, latency=10.0, joint_eta=0.01
        )
        assert split.beta == pytest.approx(0.005)
        with pytest.raises(ValueError, match="below the fundamental bound"):
            bounds.duty_cycles_for_latency_unidirectional(
                OMEGA, latency=0.1, joint_eta=0.01
            )


class TestAppendixA:
    def test_nonideal_reduces_to_ideal(self):
        ideal = bounds.unidirectional_bound(OMEGA, 0.01, 0.01)
        assert bounds.nonideal_unidirectional_bound(
            OMEGA, 0.01, 0.01
        ) == pytest.approx(ideal)

    def test_equation_27_overheads_increase_bound(self):
        base = bounds.nonideal_unidirectional_bound(OMEGA, 0.01, 0.01)
        with_tx = bounds.nonideal_unidirectional_bound(
            OMEGA, 0.01, 0.01, overhead_tx=OMEGA
        )
        with_rx = bounds.nonideal_unidirectional_bound(
            OMEGA, 0.01, 0.01, overhead_rx=1e-4, window_duration=1e-3
        )
        assert with_tx == pytest.approx(base * 2)  # omega + d_oTx = 2 omega
        assert with_rx == pytest.approx(base * 1.1)  # 1 + 0.1

    def test_rx_overhead_requires_window(self):
        with pytest.raises(ValueError, match="window_duration"):
            bounds.nonideal_unidirectional_bound(
                OMEGA, 0.01, 0.01, overhead_rx=1e-4
            )

    def test_last_beacon_correction(self):
        assert bounds.last_beacon_corrected_bound(1.0, OMEGA) == 1.0 + OMEGA

    def test_equation_29_finite_window(self):
        # Small T_C: significant penalty; must exceed the ideal bound.
        ideal = bounds.unidirectional_bound(OMEGA, 0.01, 0.01)
        finite = bounds.finite_window_bound(
            reception_period=OMEGA * 1_000,
            window_duration=OMEGA * 10,
            omega=OMEGA,
            beta=0.01,
        )
        assert finite > ideal

    def test_equation_30_limit(self):
        """As T_C grows with gamma fixed, Eq. 29 converges to omega/(beta*gamma)."""
        beta, gamma = 0.01, 0.01
        previous = None
        for scale in (1e3, 1e5, 1e7):
            period = OMEGA * scale
            window = gamma * period
            value = bounds.finite_window_bound(period, window, OMEGA, beta)
            if previous is not None:
                assert value <= previous
            previous = value
        ideal = bounds.unidirectional_bound(OMEGA, beta, gamma)
        assert previous == pytest.approx(ideal, rel=1e-3)
