"""Tests of the protocol-measurement helper."""

import pytest

from repro.analysis import measure_pair_worst_case
from repro.protocols import Birthday, Diffcodes, Nihao, OptimalSlotless


class TestMeasurePairWorstCase:
    def test_optimal_slotless_meets_its_claim(self):
        m = measure_pair_worst_case(
            OptimalSlotless(eta=0.05, omega=32), n_offsets=200
        )
        assert m.failures <= m.offsets_evaluated * 0.05  # A.5 sliver only
        assert m.meets_claim
        assert m.measured_full_worst_case <= m.claimed_worst_case * 1.01

    def test_diffcodes_with_alignment_exclusion(self):
        m = measure_pair_worst_case(
            Diffcodes(3, slot_length=2_000, omega=32),
            n_offsets=128,
            exclude_aligned=64,
        )
        assert m.failures == 0
        assert m.meets_claim

    def test_nihao(self):
        m = measure_pair_worst_case(Nihao(n=20, slot_length=1_000), n_offsets=150)
        assert m.meets_claim
        assert m.measured_worst_packet <= 20_000

    def test_probabilistic_protocol_has_no_claim(self):
        m = measure_pair_worst_case(
            Birthday(p_tx=0.1, p_rx=0.1, slot_length=1_000, horizon_slots=128),
            n_offsets=32,
            horizon=2_000_000,
        )
        assert m.claimed_worst_case is None
        assert m.meets_claim is None

    def test_explicit_horizon_respected(self):
        m = measure_pair_worst_case(
            OptimalSlotless(eta=0.05, omega=32), n_offsets=50, horizon=1_000
        )
        # A 1 ms horizon cannot cover the ~50 ms guarantee: most offsets fail.
        assert m.failures > 0

    def test_fields_consistent(self):
        m = measure_pair_worst_case(
            OptimalSlotless(eta=0.05, omega=32), n_offsets=100
        )
        assert m.offsets_evaluated == m.report.offsets_evaluated
        assert m.measured_worst_packet == m.report.worst_one_way
        assert m.eta == pytest.approx(0.05, rel=0.1)
