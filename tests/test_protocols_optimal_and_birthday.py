"""Tests of the optimal-slotless wrappers and the Birthday baseline."""

import math

import pytest

from repro.protocols import Birthday, OptimalAsymmetric, OptimalSlotless, Role


class TestOptimalSlotless:
    def test_design_verified(self):
        p = OptimalSlotless(eta=0.01, omega=32)
        info = p.info()
        assert info.deterministic
        design = p.design()
        assert design.disjoint

    def test_latency_within_quantization_of_bound(self):
        p = OptimalSlotless(eta=0.01, omega=32)
        latency = p.predicted_worst_case_latency()
        bound = p.bound_at_achieved_duty_cycle()
        assert bound * (1 - 1e-9) <= latency <= bound * 1.1

    def test_both_roles_identical(self):
        p = OptimalSlotless(eta=0.02, omega=32)
        assert p.device(Role.E) == p.device(Role.F) or (
            p.device(Role.E).beacons == p.device(Role.F).beacons
            and p.device(Role.E).reception == p.device(Role.F).reception
        )

    def test_duty_cycle_accessor(self):
        p = OptimalSlotless(eta=0.02, omega=32)
        assert p.duty_cycle() == pytest.approx(0.02, rel=0.1)


class TestOptimalAsymmetric:
    def test_roles_have_distinct_budgets(self):
        p = OptimalAsymmetric(eta_e=0.04, eta_f=0.01, omega=32)
        assert p.device(Role.E).eta == pytest.approx(0.04, rel=0.1)
        assert p.device(Role.F).eta == pytest.approx(0.01, rel=0.1)

    def test_latency_matches_theorem_5_7(self):
        p = OptimalAsymmetric(eta_e=0.04, eta_f=0.01, omega=32)
        latency = p.predicted_worst_case_latency()
        bound = p.bound_at_achieved_duty_cycle()
        assert bound * (1 - 1e-9) <= latency <= bound * 1.2

    def test_designs_balanced(self):
        p = OptimalAsymmetric(eta_e=0.04, eta_f=0.01, omega=32)
        d_ef, d_fe = p.designs()
        assert d_ef.worst_case_latency == pytest.approx(
            d_fe.worst_case_latency, rel=0.2
        )

    def test_info_not_symmetric(self):
        assert not OptimalAsymmetric(0.04, 0.01).info().symmetric


class TestBirthday:
    def test_schedule_sampling_is_reproducible(self):
        b = Birthday(p_tx=0.1, p_rx=0.1, seed=42)
        d1 = b.device(Role.E)
        d2 = b.device(Role.E)
        assert d1.beacons == d2.beacons
        assert d1.reception == d2.reception

    def test_roles_draw_different_schedules(self):
        b = Birthday(p_tx=0.2, p_rx=0.2, seed=1, horizon_slots=256)
        assert b.device(Role.E).beacons != b.device(Role.F).beacons

    def test_duty_cycle_tracks_probabilities(self):
        b = Birthday(p_tx=0.1, p_rx=0.1, slot_length=1_000, horizon_slots=8192)
        dev = b.device(Role.E)
        # gamma ~ p_rx (listen whole slots), beta ~ p_tx * omega / slot.
        assert dev.gamma == pytest.approx(0.1, rel=0.15)
        assert dev.beta == pytest.approx(0.1 * 32 / 1_000, rel=0.15)

    def test_geometric_statistics(self):
        b = Birthday(p_tx=0.1, p_rx=0.1)
        assert b.per_slot_hit_probability() == pytest.approx(0.02)
        assert b.expected_discovery_slots() == pytest.approx(50)
        q99 = b.latency_quantile_slots(0.99)
        assert q99 == pytest.approx(math.log(0.01) / math.log(0.98))

    def test_no_deterministic_guarantee(self):
        b = Birthday()
        assert b.predicted_worst_case_latency() is None
        assert not b.info().deterministic

    def test_validation(self):
        with pytest.raises(ValueError):
            Birthday(p_tx=0.7, p_rx=0.5)
        with pytest.raises(ValueError):
            Birthday(p_tx=0.0, p_rx=0.0)
        with pytest.raises(ValueError):
            Birthday(p_tx=-0.1, p_rx=0.5)
