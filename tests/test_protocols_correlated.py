"""Tests of the Appendix-C correlated one-way construction."""

import pytest

from repro.core.bounds import one_way_bound, symmetric_bound
from repro.protocols import CorrelatedOneWay, one_way_discovery_time, Role


class TestConstruction:
    def test_for_duty_cycle_hits_budget(self):
        c = CorrelatedOneWay.for_duty_cycle(0.02, omega=32)
        dev = c.device(Role.E)
        assert dev.eta == pytest.approx(0.02, rel=0.05)
        # Optimal split: half the budget on each of beta and gamma.
        assert dev.beta == pytest.approx(dev.gamma, rel=0.05)

    def test_half_the_beacons_of_direct_discovery(self):
        """The Appendix-C selling point: k/2 beacons per period instead of
        the k a direct bidirectional schedule needs."""
        c = CorrelatedOneWay(k=10, window=160, omega=32)
        dev = c.device(Role.E)
        assert dev.beacons.n_beacons == 5

    def test_zeta_is_fixed_relation(self):
        c = CorrelatedOneWay(k=4, window=100, omega=32)
        assert c.zeta == 2 * 100 - 16

    def test_validation(self):
        with pytest.raises(ValueError, match="even"):
            CorrelatedOneWay(k=3, window=100, omega=32)
        with pytest.raises(ValueError, match="omega"):
            CorrelatedOneWay(k=4, window=100, omega=1)
        with pytest.raises(ValueError, match="window"):
            CorrelatedOneWay(k=4, window=16, omega=32)


class TestOneWayDeterminism:
    @pytest.mark.parametrize("k,window", [(4, 64), (6, 100), (10, 160)])
    def test_every_offset_discovers_within_guarantee(self, k, window):
        """Exhaustive offset sweep: either E discovers F or F discovers E
        for every integer phase offset, within the predicted latency."""
        c = CorrelatedOneWay(k=k, window=window, omega=32)
        guarantee = c.predicted_worst_case_latency()
        for offset in range(0, c.period):
            t = one_way_discovery_time(c, offset)
            assert t is not None, f"no discovery at offset {offset}"
            assert t <= guarantee

    def test_dense_sweep_larger_config(self):
        c = CorrelatedOneWay.for_duty_cycle(0.05, omega=32)
        guarantee = c.predicted_worst_case_latency()
        step = max(1, c.period // 2_000)
        for offset in range(0, c.period, step):
            t = one_way_discovery_time(c, offset)
            assert t is not None
            assert t <= guarantee


class TestOptimality:
    def test_beats_the_symmetric_bound(self):
        """Theorem C.1's point: one-way discovery can undercut the
        bidirectional bound 4aw/eta^2 -- the measured worst case sits
        between the C.1 bound and the symmetric bound."""
        c = CorrelatedOneWay.for_duty_cycle(0.05, omega=32)
        eta = c.device(Role.E).eta
        worst = 0
        step = max(1, c.period // 4_000)
        for offset in range(0, c.period, step):
            t = one_way_discovery_time(c, offset)
            worst = max(worst, t)
        assert worst < symmetric_bound(32, eta)  # undercuts two-way optimum
        assert worst >= one_way_bound(32, eta) * (1 - 1e-9)  # respects C.1

    def test_within_ten_percent_of_theorem_c1(self):
        c = CorrelatedOneWay.for_duty_cycle(0.05, omega=32)
        guarantee = c.predicted_worst_case_latency()
        bound = c.bound_at_achieved_duty_cycle()
        assert guarantee <= bound * 1.1

    def test_info(self):
        c = CorrelatedOneWay(k=4, window=64, omega=32)
        info = c.info()
        assert info.deterministic
        assert info.family == "optimal"
