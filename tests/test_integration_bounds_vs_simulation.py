"""Integration: the paper's bounds versus exhaustive simulation.

These tests are the reproduction's core claim-checks:

1. Synthesized optimal schedules *attain* their bounds in exact offset
   sweeps (the bounds are tight).
2. No synthesized or zoo schedule ever *beats* the bound at its achieved
   duty-cycles (the bounds are safe).
3. The three reception models order as theory predicts.
"""

import pytest

from repro.core import bounds
from repro.core.optimal import (
    synthesize_asymmetric,
    synthesize_symmetric,
    synthesize_unidirectional,
)
from repro.core.sequences import NDProtocol
from repro.simulation import (
    critical_offsets,
    ReceptionModel,
    sweep_offsets,
    verified_worst_case,
)


def one_way_roles(design):
    adv = NDProtocol(beacons=design.beacons, reception=None, name="adv")
    scan = NDProtocol(beacons=None, reception=design.reception, name="scan")
    return adv, scan


class TestUnidirectionalTightness:
    @pytest.mark.parametrize(
        "window,k,stride",
        [(320, 10, 11), (100, 7, 8), (64, 5, 7), (500, 4, 9), (64, 12, 25)],
    )
    def test_worst_sweep_hits_design_latency(self, window, k, stride):
        """Exact offset sweep: worst packet-to-first-success latency equals
        L - lambda (the remaining lambda is the pre-range-entry slack in
        Definition 3.4), and no offset fails."""
        design = synthesize_unidirectional(32, window, k, stride)
        adv, scan = one_way_roles(design)
        offsets = critical_offsets(adv, scan, omega=32)
        report = sweep_offsets(
            adv, scan, offsets, horizon=design.worst_case_latency * 2 + 1
        )
        assert report.failures == 0
        gap = design.beacons.period
        assert report.worst_one_way == design.worst_case_latency - gap

    @pytest.mark.parametrize("window,k,stride", [(320, 10, 11), (100, 7, 8)])
    def test_no_offset_beats_zero(self, window, k, stride):
        """Tightness also means some offset takes the full worst case --
        the sweep maximum may not be an artifact of a lucky offset grid."""
        design = synthesize_unidirectional(32, window, k, stride)
        adv, scan = one_way_roles(design)
        offsets = critical_offsets(adv, scan, omega=32)
        report = sweep_offsets(
            adv, scan, offsets, horizon=design.worst_case_latency * 2
        )
        assert report.worst_one_way > 0
        assert report.mean_one_way > 0


class TestBoundSafety:
    @pytest.mark.parametrize("eta", [0.01, 0.02, 0.05, 0.1])
    def test_symmetric_designs_never_beat_theorem_5_5(self, eta):
        protocol, design = synthesize_symmetric(32, eta)
        adv, scan = one_way_roles(design)
        offsets = critical_offsets(adv, scan, omega=32)
        report = sweep_offsets(
            adv, scan, offsets, horizon=design.worst_case_latency * 2
        )
        assert report.failures == 0
        # Worst discovery from range entry >= sweep worst (entry adds up
        # to one gap); the bound must not be beaten by the full latency.
        full_worst = report.worst_one_way + design.beacons.period
        achieved_bound = bounds.symmetric_bound(32, protocol.eta)
        assert full_worst >= achieved_bound * (1 - 1e-9)

    def test_asymmetric_designs_never_beat_theorem_5_7(self):
        pe, pf, d_ef, d_fe = synthesize_asymmetric(32, 0.04, 0.01)
        worst_two_way = 0
        for design, tx_proto, rx_proto in (
            (d_ef, pe, pf),
            (d_fe, pf, pe),
        ):
            adv = NDProtocol(beacons=design.beacons, reception=None)
            scan = NDProtocol(beacons=None, reception=design.reception)
            offsets = critical_offsets(adv, scan, omega=32)
            report = sweep_offsets(
                adv, scan, offsets, horizon=design.worst_case_latency * 2
            )
            assert report.failures == 0
            worst_two_way = max(
                worst_two_way, report.worst_one_way + design.beacons.period
            )
        achieved_bound = bounds.asymmetric_bound(32, pe.eta, pf.eta)
        assert worst_two_way >= achieved_bound * (1 - 1e-9)


class TestDesCrossValidation:
    @pytest.mark.parametrize("eta", [0.02, 0.05])
    def test_event_driven_simulator_agrees_with_sweeps(self, eta):
        _, design = synthesize_symmetric(32, eta)
        adv, scan = one_way_roles(design)
        result = verified_worst_case(
            adv, scan, horizon=design.worst_case_latency * 2, omega=32
        )
        assert result.des_agrees
        assert result.analytic.failures == 0


class TestReceptionModelBracketing:
    def test_models_order_worst_cases(self):
        """Theory (Section 3.2 / Appendix A.3): coverage per window is
        d + omega (any-overlap) >= d (point) >= d - omega (containment),
        so worst-case latencies order the opposite way.

        A *disjoint* tiling has no redundancy to absorb the containment
        loss, so the CONTAINMENT sweep legitimately fails on the last
        omega of every coverage image (Appendix A.3's correction); the
        ordering is asserted on the offsets all models discover.
        """
        design = synthesize_unidirectional(32, 320, 8, 9)
        adv, scan = one_way_roles(design)
        offsets = critical_offsets(adv, scan, omega=32)
        horizon = design.worst_case_latency * 3
        reports = {}
        for model in ReceptionModel:
            reports[model] = sweep_offsets(adv, scan, offsets, horizon, model)
        assert reports[ReceptionModel.ANY_OVERLAP].failures == 0
        assert reports[ReceptionModel.POINT].failures == 0
        assert reports[ReceptionModel.CONTAINMENT].failures > 0
        assert (
            reports[ReceptionModel.ANY_OVERLAP].worst_one_way
            <= reports[ReceptionModel.POINT].worst_one_way
        )
        # Per-offset ordering where containment succeeds at all.
        from repro.simulation import mutual_discovery_times

        for offset in offsets[:: max(1, len(offsets) // 40)]:
            times = {
                model: mutual_discovery_times(
                    adv, scan, offset, horizon, model
                ).one_way
                for model in ReceptionModel
            }
            if times[ReceptionModel.CONTAINMENT] is not None:
                assert (
                    times[ReceptionModel.ANY_OVERLAP]
                    <= times[ReceptionModel.POINT]
                    <= times[ReceptionModel.CONTAINMENT]
                )

    def test_containment_fails_when_window_too_tight(self):
        """With d close to omega, containment leaves real coverage holes:
        the Appendix-A.3 degradation made visible."""
        design = synthesize_unidirectional(32, 40, 5, 6)
        adv, scan = one_way_roles(design)
        offsets = critical_offsets(adv, scan, omega=32)
        report = sweep_offsets(
            adv,
            scan,
            offsets,
            horizon=design.worst_case_latency * 3,
            model=ReceptionModel.CONTAINMENT,
        )
        assert report.failures > 0
