"""Tests of the power model and Appendix-A.2 duty-cycle accounting."""

import pytest

from repro.core.power import effective_duty_cycles, PowerModel, TYPICAL_RADIOS
from repro.core.sequences import BeaconSchedule, NDProtocol, ReceptionSchedule


class TestPowerModel:
    def test_alpha(self):
        model = PowerModel(tx_power=20.0, rx_power=10.0)
        assert model.alpha == 2.0

    def test_is_ideal(self):
        assert PowerModel(1.0, 1.0).is_ideal
        assert not PowerModel(1.0, 1.0, switch_tx=10).is_ideal

    def test_average_power(self):
        model = PowerModel(tx_power=20.0, rx_power=10.0, sleep_power=0.1)
        # 1% tx, 2% rx, 97% sleep
        expected = 20 * 0.01 + 10 * 0.02 + 0.1 * 0.97
        assert model.average_power(0.01, 0.02) == pytest.approx(expected)

    def test_average_power_validates_fractions(self):
        model = PowerModel(1.0, 1.0)
        with pytest.raises(ValueError):
            model.average_power(0.8, 0.3)
        with pytest.raises(ValueError):
            model.average_power(-0.1, 0.2)

    def test_energy_per_discovery(self):
        model = PowerModel(tx_power=10.0, rx_power=10.0)
        energy = model.energy_per_discovery(0.01, 0.01, latency=1_000_000)
        assert energy == pytest.approx(10 * 0.02 * 1_000_000)

    def test_weighted_duty_cycle(self):
        model = PowerModel(tx_power=20.0, rx_power=10.0)
        assert model.weighted_duty_cycle(0.01, 0.03) == pytest.approx(
            2 * 0.01 + 0.03
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(tx_power=0, rx_power=1)
        with pytest.raises(ValueError):
            PowerModel(tx_power=1, rx_power=1, switch_tx=-1)


class TestEffectiveDutyCycles:
    def test_ideal_radio_matches_schedule_duty_cycles(self):
        model = PowerModel(1.0, 1.0)
        beacons = BeaconSchedule.uniform(1, 1_000, 32)
        reception = ReceptionSchedule.single_window(100, 10_000)
        beta, gamma = effective_duty_cycles(model, beacons, reception)
        assert beta == pytest.approx(beacons.duty_cycle)
        assert gamma == pytest.approx(reception.duty_cycle)

    def test_equation_24_tx_overhead(self):
        model = PowerModel(1.0, 1.0, switch_tx=32)
        beacons = BeaconSchedule.uniform(1, 1_000, 32)
        beta, _ = effective_duty_cycles(model, beacons, None)
        # Each beacon's effective airtime doubles: (32 + 32) / 1000.
        assert beta == pytest.approx(0.064)

    def test_equation_25_rx_overhead_scales_with_window_count(self):
        model = PowerModel(1.0, 1.0, switch_rx=50)
        one_window = ReceptionSchedule.single_window(200, 10_000)
        two_windows = ReceptionSchedule.from_pairs(
            [(0, 100), (5_000, 100)], 10_000
        )
        _, gamma_one = effective_duty_cycles(model, None, one_window)
        _, gamma_two = effective_duty_cycles(model, None, two_windows)
        # Same listening time, but two switching overheads instead of one:
        # the Appendix-A.2 argument for single-window periods.
        assert gamma_two > gamma_one

    def test_protocol_average_power_includes_overheads(self):
        ble = TYPICAL_RADIOS["ble-soc"]
        protocol = NDProtocol(
            beacons=BeaconSchedule.uniform(1, 100_000, 32),
            reception=ReceptionSchedule.single_window(1_000, 100_000),
        )
        with_overheads = ble.protocol_average_power(protocol)
        ideal_power = ble.average_power(protocol.beta, protocol.gamma)
        assert with_overheads > ideal_power


class TestTypicalRadios:
    def test_catalogue_entries_valid(self):
        for name, model in TYPICAL_RADIOS.items():
            assert model.name == name
            assert model.alpha > 0

    def test_ideal_entry_is_ideal(self):
        assert TYPICAL_RADIOS["ideal"].is_ideal
        assert not TYPICAL_RADIOS["ble-soc"].is_ideal
